//! Activation-memory planning: peak working-set analysis of sequential and
//! clustered schedules.
//!
//! The paper motivates Ramiel with "power and resource-constrained edge
//! devices"; the flip side of task parallelism there is memory — every
//! cross-cluster tensor exists twice (producer copy + consumer copy), and
//! concurrently-live branches hold their activations simultaneously. This
//! module quantifies that: it walks a schedule (topological order for the
//! sequential case, the simulator timeline for clustered schedules) with
//! reference-counted tensor lifetimes and reports the peak.

use crate::sim::{simulate_hyper, SimConfig};
use crate::Result;
use ramiel_cluster::cost::CostModel;
use ramiel_cluster::hyper::HyperClustering;
use ramiel_cluster::Clustering;
use ramiel_ir::topo::topo_sort;
use ramiel_ir::{DType, Graph};
use serde::Serialize;
use std::collections::HashMap;

/// Memory analysis of one schedule.
#[derive(Debug, Clone, Serialize)]
pub struct MemoryReport {
    /// Bytes held by weights/constants for the whole run (always resident).
    pub static_bytes: usize,
    /// Peak bytes of live activations (inputs + intermediate tensors).
    pub peak_activation_bytes: usize,
    /// Total activation bytes allocated over the run (turnover).
    pub total_allocated_bytes: usize,
}

impl MemoryReport {
    /// Peak including the always-resident weights.
    pub fn peak_total_bytes(&self) -> usize {
        self.static_bytes + self.peak_activation_bytes
    }
}

fn dtype_bytes(d: DType) -> usize {
    match d {
        DType::F32 => 4,
        DType::I64 => 8,
        DType::Bool => 1,
    }
}

/// Size in bytes of a (shape-inferred) tensor; 0 when unknown.
pub fn tensor_bytes(graph: &Graph, tensor: &str) -> usize {
    graph
        .tensor_info(tensor)
        .map(|i| i.numel() * dtype_bytes(i.dtype))
        .unwrap_or(0)
}

fn static_bytes(graph: &Graph) -> usize {
    graph
        .initializers
        .values()
        .map(|t| t.numel() * dtype_bytes(t.dtype()))
        .sum()
}

/// Shared walker: feed it node executions in schedule order; it refcounts
/// tensor instances and tracks the live-byte peak.
struct Walker<'g> {
    graph: &'g Graph,
    /// (tensor, batch) → remaining consumer count.
    refcount: HashMap<(String, usize), usize>,
    live: usize,
    peak: usize,
    total: usize,
}

impl<'g> Walker<'g> {
    fn new(graph: &'g Graph, batch: usize) -> Self {
        let adj = graph.adjacency();
        let mut refcount = HashMap::new();
        // graph outputs are pinned until the end (consumer count +1)
        for b in 0..batch {
            for n in &graph.nodes {
                for out in &n.outputs {
                    let consumers = adj.consumers_of.get(out).map(Vec::len).unwrap_or(0);
                    let pinned = graph.outputs.contains(out) as usize;
                    refcount.insert((out.clone(), b), consumers + pinned);
                }
            }
            for inp in &graph.inputs {
                let consumers = adj.consumers_of.get(&inp.name).map(Vec::len).unwrap_or(0);
                refcount.insert((inp.name.clone(), b), consumers);
            }
        }
        // model inputs are live from the start
        let mut w = Walker {
            graph,
            refcount,
            live: 0,
            peak: 0,
            total: 0,
        };
        for b in 0..batch {
            for inp in &graph.inputs.to_vec() {
                w.alloc(&inp.name, b);
            }
        }
        w
    }

    fn alloc(&mut self, tensor: &str, _batch: usize) {
        let bytes = tensor_bytes(self.graph, tensor);
        self.live += bytes;
        self.total += bytes;
        self.peak = self.peak.max(self.live);
    }

    fn release(&mut self, tensor: &str, batch: usize) {
        if let Some(rc) = self.refcount.get_mut(&(tensor.to_string(), batch)) {
            if *rc > 0 {
                *rc -= 1;
            }
            if *rc == 0 {
                self.live = self.live.saturating_sub(tensor_bytes(self.graph, tensor));
            }
        }
    }

    /// Execute one node for one batch element.
    fn exec(&mut self, node: usize, batch: usize) {
        let node = &self.graph.nodes[node];
        for out in &node.outputs {
            self.alloc(out, batch);
        }
        for inp in node.inputs.clone() {
            if !self.graph.is_initializer(&inp) {
                self.release(&inp, batch);
            }
        }
    }

    fn finish(self) -> MemoryReport {
        MemoryReport {
            static_bytes: static_bytes(self.graph),
            peak_activation_bytes: self.peak,
            total_allocated_bytes: self.total,
        }
    }
}

/// Peak memory of the sequential (topological-order) schedule.
pub fn sequential_peak_memory(graph: &Graph) -> MemoryReport {
    let order = topo_sort(graph).expect("acyclic graph required");
    let mut w = Walker::new(graph, 1);
    for n in order {
        w.exec(n, 0);
    }
    w.finish()
}

/// Peak memory of a clustered schedule, using the simulator's timeline as
/// the interleaving. Cross-cluster copies are charged by counting a remote
/// tensor once per consuming cluster (the message payload).
pub fn clustering_peak_memory(
    graph: &Graph,
    clustering: &Clustering,
    cost: &dyn CostModel,
    cfg: &SimConfig,
) -> Result<MemoryReport> {
    let hc = ramiel_cluster::hypercluster(clustering, 1);
    hyper_peak_memory(graph, &hc, cost, cfg)
}

/// Peak memory of a hyperclustered schedule: a time-sweep over the
/// simulator's timeline. Each tensor instance is live from its producer's
/// finish until its last consumer finishes; every *remote* consuming
/// cluster additionally holds a message copy for the same window (the
/// paper's `queue.put`/`get` payload sitting in the consumer process).
pub fn hyper_peak_memory(
    graph: &Graph,
    hc: &HyperClustering,
    cost: &dyn CostModel,
    cfg: &SimConfig,
) -> Result<MemoryReport> {
    let sim = simulate_hyper(graph, hc, cost, cfg)?;
    let adj = graph.adjacency();
    let assign: HashMap<(usize, usize), usize> = hc
        .hyperclusters
        .iter()
        .enumerate()
        .flat_map(|(wk, ops)| ops.iter().map(move |op| ((op.batch, op.node), wk)))
        .collect();
    // finish time per (batch, node)
    let mut finish: HashMap<(usize, usize), u64> = HashMap::new();
    for ev in &sim.timeline {
        finish.insert((ev.batch, ev.node), ev.end);
    }
    let horizon = sim.makespan + 1;

    // (time, delta-bytes); allocations sort before releases at equal time
    // (conservative peak).
    let mut deltas: Vec<(u64, bool, i64)> = Vec::new();
    let mut total: usize = 0;
    let mut add_window = |alloc_t: u64, release_t: u64, bytes: usize, total: &mut usize| {
        if bytes == 0 {
            return;
        }
        *total += bytes;
        deltas.push((alloc_t, false, bytes as i64));
        deltas.push((release_t.max(alloc_t), true, -(bytes as i64)));
    };

    for b in 0..hc.batch {
        // model inputs: live from t=0 until their last consumer
        for inp in &graph.inputs {
            let last = adj
                .consumers_of
                .get(&inp.name)
                .map(|cons| {
                    cons.iter()
                        .filter_map(|&c| finish.get(&(b, c)).copied())
                        .max()
                        .unwrap_or(horizon)
                })
                .unwrap_or(0);
            add_window(0, last, tensor_bytes(graph, &inp.name), &mut total);
        }
        for node in &graph.nodes {
            let Some(&produced) = finish.get(&(b, node.id)) else {
                continue;
            };
            let home = assign.get(&(b, node.id)).copied();
            for out in &node.outputs {
                let bytes = tensor_bytes(graph, out);
                let consumers = adj.consumers_of.get(out);
                // base copy in the producing cluster
                let mut base_release = consumers
                    .map(|cons| {
                        cons.iter()
                            .filter_map(|&c| finish.get(&(b, c)).copied())
                            .max()
                            .unwrap_or(produced)
                    })
                    .unwrap_or(produced);
                if graph.outputs.contains(out) {
                    base_release = horizon; // pinned until the run ends
                }
                add_window(produced, base_release, bytes, &mut total);
                // message copies, one per remote consuming cluster, released
                // when that cluster's last consumer of the tensor finishes
                let mut per_cluster: HashMap<usize, u64> = HashMap::new();
                if let Some(cons) = consumers {
                    for &c in cons {
                        if let (Some(&wk), Some(&f)) = (assign.get(&(b, c)), finish.get(&(b, c))) {
                            if Some(wk) != home {
                                let e = per_cluster.entry(wk).or_insert(0);
                                *e = (*e).max(f);
                            }
                        }
                    }
                }
                for (_, release) in per_cluster {
                    add_window(produced, release, bytes, &mut total);
                }
            }
        }
    }

    deltas.sort_by_key(|&(t, is_release, _)| (t, is_release));
    let mut live: i64 = 0;
    let mut peak: i64 = 0;
    for (_, _, d) in deltas {
        live += d;
        peak = peak.max(live);
    }
    Ok(MemoryReport {
        static_bytes: static_bytes(graph),
        peak_activation_bytes: peak.max(0) as usize,
        total_allocated_bytes: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_cluster::{cluster_graph, StaticCost};
    use ramiel_ir::{DType, GraphBuilder, OpKind};
    use ramiel_models::synthetic;

    #[test]
    fn chain_peak_is_two_tensors() {
        // x(64 f32) → relu → relu → relu: peak = input + one output
        let g = synthetic::chain(3);
        let rep = sequential_peak_memory(&g);
        assert_eq!(rep.peak_activation_bytes, 2 * 64 * 4);
        assert_eq!(rep.total_allocated_bytes, 4 * 64 * 4); // input + 3 outputs
        assert_eq!(rep.static_bytes, 0);
    }

    #[test]
    fn fork_holds_branches_simultaneously() {
        let g = synthetic::fork_join(4, 1, 1);
        let seq = sequential_peak_memory(&g);
        // root output + up to 4 branch outputs live together
        assert!(seq.peak_activation_bytes >= 3 * 64 * 4);
    }

    #[test]
    fn weights_count_as_static() {
        let mut b = GraphBuilder::new("w");
        let x = b.input("x", DType::F32, vec![1, 2, 4, 4]);
        let y = b.conv(&x, 2, 2, (1, 1), (1, 1), (0, 0), 1);
        b.output(&y);
        let g = b.finish().unwrap();
        let rep = sequential_peak_memory(&g);
        // weight 2·2·1·1 + bias 2 = 6 floats
        assert_eq!(rep.static_bytes, 6 * 4);
        assert!(rep.peak_total_bytes() > rep.peak_activation_bytes);
    }

    #[test]
    fn parallel_schedule_needs_at_least_sequential_peak() {
        for seed in 0..5u64 {
            let g = synthetic::layered_random(seed, 6, 4, 2);
            let clustering = cluster_graph(&g, &StaticCost);
            let seq = sequential_peak_memory(&g);
            let par = clustering_peak_memory(&g, &clustering, &StaticCost, &SimConfig::default())
                .unwrap();
            assert!(
                par.peak_activation_bytes + 64 * 4 >= seq.peak_activation_bytes,
                "seed {seed}: par {} vs seq {}",
                par.peak_activation_bytes,
                seq.peak_activation_bytes
            );
            assert_eq!(par.static_bytes, seq.static_bytes);
        }
    }

    #[test]
    fn graph_outputs_stay_live() {
        // output tensor is pinned, so the final live set is non-zero
        let mut b = GraphBuilder::new("p");
        let x = b.input("x", DType::F32, vec![16]);
        let y = b.op("r", OpKind::Relu, vec![x]);
        b.output(&y);
        let g = b.finish().unwrap();
        let rep = sequential_peak_memory(&g);
        // both input and output live at once at the execution instant
        assert_eq!(rep.peak_activation_bytes, 2 * 16 * 4);
    }

    #[test]
    fn batched_hyper_memory_scales_with_batch() {
        let g = synthetic::fork_join(2, 3, 2);
        let clustering = cluster_graph(&g, &StaticCost);
        let b1 = hyper_peak_memory(
            &g,
            &ramiel_cluster::hypercluster(&clustering, 1),
            &StaticCost,
            &SimConfig::default(),
        )
        .unwrap();
        let b4 = hyper_peak_memory(
            &g,
            &ramiel_cluster::hypercluster(&clustering, 4),
            &StaticCost,
            &SimConfig::default(),
        )
        .unwrap();
        assert!(b4.peak_activation_bytes > b1.peak_activation_bytes);
        assert!(b4.total_allocated_bytes >= 4 * b1.total_allocated_bytes);
    }
}
