//! Cost-model prediction accuracy: does the cost model's view of the
//! schedule match what actually ran?
//!
//! The LC/merge pipeline balances clusters by *predicted* work units; the
//! Profile DB records what each worker actually spent. This module joins the
//! two: per-cluster predicted share of total work vs measured share of total
//! busy time (plus measured slack), and the same comparison per op kind.
//! Large per-cluster errors mean the cost model is steering LC toward the
//! wrong split — exactly the situation `MeasuredCost` reclustering fixes.

use crate::profile::ProfileDb;
use ramiel_cluster::CostModel;
use ramiel_ir::Graph;
use serde::Serialize;
use std::collections::BTreeMap;

/// One cluster/worker row: predicted vs measured share of the run.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterPrediction {
    pub cluster: usize,
    /// Cost-model units for the ops this worker executed.
    pub predicted_units: u64,
    /// Share of all predicted units (0..1).
    pub predicted_share: f64,
    pub measured_busy_ns: u64,
    pub measured_slack_ns: u64,
    /// Share of all measured busy time (0..1).
    pub measured_share: f64,
    /// |predicted − measured| share, in percentage points.
    pub error_pp: f64,
}

/// Aggregate row per op kind.
#[derive(Debug, Clone, Serialize)]
pub struct KindPrediction {
    pub kind: String,
    /// Executed op instances of this kind (across batches).
    pub count: usize,
    pub predicted_units: u64,
    pub measured_ns: u64,
    pub predicted_share: f64,
    pub measured_share: f64,
    pub error_pp: f64,
}

/// Full prediction-accuracy report for one profiled run.
#[derive(Debug, Clone, Serialize)]
pub struct PredictionReport {
    pub clusters: Vec<ClusterPrediction>,
    pub kinds: Vec<KindPrediction>,
    /// Mean |predicted − measured| share over clusters, percentage points.
    pub mean_abs_error_pp: f64,
}

fn share(part: u64, total: u64) -> f64 {
    part as f64 / total.max(1) as f64
}

/// Join a cost model's per-node estimates against a [`ProfileDb`]. Worker
/// assignment is read from the profile itself, so the report works for any
/// executor that produced the DB.
pub fn predict_report(graph: &Graph, cost: &dyn CostModel, db: &ProfileDb) -> PredictionReport {
    let node_units: Vec<u64> = graph
        .nodes
        .iter()
        .map(|n| cost.node_cost(graph, n))
        .collect();

    let k = db.workers();
    let mut pred_w = vec![0u64; k];
    let mut busy_w = vec![0u64; k];
    let mut slack_w = vec![0u64; k];
    // kind → (count, predicted units, measured ns)
    let mut by_kind: BTreeMap<&str, (usize, u64, u64)> = BTreeMap::new();
    for r in db.records() {
        let busy = r.end_ns.saturating_sub(r.start_ns);
        let units = node_units.get(r.node).copied().unwrap_or(1);
        if r.worker < k {
            pred_w[r.worker] += units;
            busy_w[r.worker] += busy;
            slack_w[r.worker] += r.slack_after_ns;
        }
        if let Some(n) = graph.nodes.get(r.node) {
            let e = by_kind.entry(n.op.name()).or_default();
            e.0 += 1;
            e.1 += units;
            e.2 += busy;
        }
    }

    let total_pred: u64 = pred_w.iter().sum();
    let total_busy: u64 = busy_w.iter().sum();
    let clusters: Vec<ClusterPrediction> = (0..k)
        .map(|w| {
            let ps = share(pred_w[w], total_pred);
            let ms = share(busy_w[w], total_busy);
            ClusterPrediction {
                cluster: w,
                predicted_units: pred_w[w],
                predicted_share: ps,
                measured_busy_ns: busy_w[w],
                measured_slack_ns: slack_w[w],
                measured_share: ms,
                error_pp: (ps - ms).abs() * 100.0,
            }
        })
        .collect();
    let mean_abs_error_pp = if clusters.is_empty() {
        0.0
    } else {
        clusters.iter().map(|c| c.error_pp).sum::<f64>() / clusters.len() as f64
    };
    let kinds: Vec<KindPrediction> = by_kind
        .into_iter()
        .map(|(kind, (count, units, ns))| {
            let ps = share(units, total_pred);
            let ms = share(ns, total_busy);
            KindPrediction {
                kind: kind.to_string(),
                count,
                predicted_units: units,
                measured_ns: ns,
                predicted_share: ps,
                measured_share: ms,
                error_pp: (ps - ms).abs() * 100.0,
            }
        })
        .collect();

    PredictionReport {
        clusters,
        kinds,
        mean_abs_error_pp,
    }
}

impl PredictionReport {
    /// Render as an aligned plain-text table (the `ramiel profile` output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cost-model prediction accuracy (mean cluster error {:.1} pp)",
            self.mean_abs_error_pp
        );
        let _ = writeln!(
            out,
            "  {:<8} {:>10} {:>8} {:>12} {:>12} {:>8} {:>7}",
            "cluster", "pred.units", "pred.%", "busy.ms", "slack.ms", "meas.%", "err.pp"
        );
        for c in &self.clusters {
            let _ = writeln!(
                out,
                "  {:<8} {:>10} {:>7.1}% {:>12.3} {:>12.3} {:>7.1}% {:>7.1}",
                c.cluster,
                c.predicted_units,
                c.predicted_share * 100.0,
                c.measured_busy_ns as f64 / 1e6,
                c.measured_slack_ns as f64 / 1e6,
                c.measured_share * 100.0,
                c.error_pp
            );
        }
        let _ = writeln!(
            out,
            "  {:<18} {:>6} {:>10} {:>12} {:>8} {:>8} {:>7}",
            "op kind", "count", "pred.units", "meas.ms", "pred.%", "meas.%", "err.pp"
        );
        for kp in &self.kinds {
            let _ = writeln!(
                out,
                "  {:<18} {:>6} {:>10} {:>12.3} {:>7.1}% {:>7.1}% {:>7.1}",
                kp.kind,
                kp.count,
                kp.predicted_units,
                kp.measured_ns as f64 / 1e6,
                kp.predicted_share * 100.0,
                kp.measured_share * 100.0,
                kp.error_pp
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::OpRecord;
    use ramiel_cluster::StaticCost;
    use ramiel_ir::{DType, GraphBuilder, OpKind};

    fn two_node_graph() -> Graph {
        let mut b = GraphBuilder::new("p");
        let x = b.input("x", DType::F32, vec![2, 2]);
        let m = b.op("m", OpKind::MatMul, vec![x.clone(), x]);
        let r = b.op("r", OpKind::Relu, vec![m]);
        b.output(&r);
        b.finish().unwrap()
    }

    #[test]
    fn report_joins_costs_and_measurements() {
        let g = two_node_graph();
        let mut db = ProfileDb::new(2, 1);
        db.extend(vec![
            OpRecord {
                worker: 0,
                batch: 0,
                node: 0, // MatMul, StaticCost 40
                start_ns: 0,
                end_ns: 3_000,
                slack_after_ns: 100,
            },
            OpRecord {
                worker: 1,
                batch: 0,
                node: 1, // Relu, StaticCost 1
                start_ns: 0,
                end_ns: 1_000,
                slack_after_ns: 0,
            },
        ]);
        let rep = predict_report(&g, &StaticCost, &db);
        assert_eq!(rep.clusters.len(), 2);
        assert_eq!(rep.clusters[0].predicted_units, 40);
        assert_eq!(rep.clusters[0].measured_busy_ns, 3_000);
        assert_eq!(rep.clusters[0].measured_slack_ns, 100);
        // predicted share 40/41 ≈ 97.6%, measured share 3000/4000 = 75%
        assert!(rep.clusters[0].error_pp > 20.0);
        assert_eq!(rep.kinds.len(), 2);
        let rendered = rep.render();
        assert!(rendered.contains("MatMul"));
        assert!(rendered.contains("cluster"));
    }

    #[test]
    fn empty_db_yields_empty_but_valid_report() {
        let g = two_node_graph();
        let db = ProfileDb::new(1, 1);
        let rep = predict_report(&g, &StaticCost, &db);
        assert_eq!(rep.clusters.len(), 1);
        assert_eq!(rep.mean_abs_error_pp, 0.0);
        assert!(!rep.render().is_empty());
    }
}
