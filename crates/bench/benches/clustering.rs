//! Criterion bench: the clustering pipeline itself (Tables I–III).
//!
//! Measures the paper's *compile-side* passes — distance computation,
//! Linear Clustering (Alg. 1), merging (Algs. 2–3) and the parallelism
//! report — on every model, plus the pruning passes on the three models
//! that carry constant subgraphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ramiel_cluster::{
    cluster_graph, distance_to_end, linear_clustering, merge_clusters_fixpoint, parallelism_report,
    StaticCost,
};
use ramiel_models::{build, ModelConfig, ModelKind};
use std::hint::black_box;

fn bench_distance_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_pass");
    for kind in [ModelKind::Squeezenet, ModelKind::Bert, ModelKind::NasNet] {
        let g = build(kind, &ModelConfig::full());
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &g, |b, g| {
            b.iter(|| distance_to_end(black_box(g), &StaticCost));
        });
    }
    group.finish();
}

fn bench_linear_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("linear_clustering");
    for kind in ModelKind::all() {
        let g = build(kind, &ModelConfig::full());
        let dist = distance_to_end(&g, &StaticCost);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &(&g, &dist),
            |b, (g, dist)| {
                b.iter(|| linear_clustering(black_box(g), black_box(dist)));
            },
        );
    }
    group.finish();
}

fn bench_cluster_merging(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_merging");
    for kind in [ModelKind::Googlenet, ModelKind::NasNet] {
        let g = build(kind, &ModelConfig::full());
        let dist = distance_to_end(&g, &StaticCost);
        let lc = linear_clustering(&g, &dist);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &(&lc, &dist),
            |b, (lc, dist)| {
                b.iter(|| merge_clusters_fixpoint(black_box(lc), black_box(dist)));
            },
        );
    }
    group.finish();
}

fn bench_table1_report(c: &mut Criterion) {
    let g = build(ModelKind::InceptionV4, &ModelConfig::full());
    c.bench_function("parallelism_report/inception_v4", |b| {
        b.iter(|| parallelism_report(black_box(&g), &StaticCost));
    });
}

fn bench_full_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_graph_end_to_end");
    for kind in [ModelKind::Squeezenet, ModelKind::NasNet] {
        let g = build(kind, &ModelConfig::full());
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &g, |b, g| {
            b.iter(|| cluster_graph(black_box(g), &StaticCost));
        });
    }
    group.finish();
}

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("constprop_dce");
    group.sample_size(10);
    for kind in [ModelKind::YoloV5, ModelKind::Bert, ModelKind::NasNet] {
        let g = build(kind, &ModelConfig::full());
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &g, |b, g| {
            b.iter(|| {
                let mut g = g.clone();
                ramiel_passes::prune(&mut g).expect("prune succeeds");
                g
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_distance_pass,
    bench_linear_clustering,
    bench_cluster_merging,
    bench_table1_report,
    bench_full_clustering,
    bench_pruning
);
criterion_main!(benches);
