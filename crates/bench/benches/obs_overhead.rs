//! Criterion bench: cost of the observability plumbing when it is OFF.
//!
//! Every executor and the compile pipeline now carry a `ramiel_obs::Obs`
//! handle. The contract (ISSUE: disabled-instrumentation overhead guard) is
//! that the disabled handle — the default for every non-`profile` code path
//! — costs one branch per call site: `disabled` must be indistinguishable
//! from `baseline`, and `enabled` shows what full tracing costs. The last
//! two groups price the raw APIs per call on both handles: obs spans, and
//! the metrics registry's histogram/counter hot path that every serve
//! response touches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ramiel::obs::Obs;
use ramiel::{compile, compile_with_obs, PipelineOptions};
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_runtime::{
    run_parallel, run_parallel_opts, run_parallel_profiled_opts, synth_inputs, RunOptions,
};
use ramiel_tensor::ExecCtx;
use std::hint::black_box;

fn bench_parallel_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead_parallel");
    group.sample_size(20);
    let compiled = compile(
        build(ModelKind::Squeezenet, &ModelConfig::full()),
        &PipelineOptions::default(),
    )
    .expect("pipeline");
    let inputs = synth_inputs(&compiled.graph, 42);
    let ctx = ExecCtx::sequential();
    group.bench_function(BenchmarkId::from_parameter("baseline"), |b| {
        b.iter(|| {
            run_parallel(
                black_box(&compiled.graph),
                &compiled.clustering,
                &inputs,
                &ctx,
            )
            .expect("par")
        });
    });
    // disabled handle threaded through RunOptions: the production default
    let disabled = RunOptions::default().obs(Obs::disabled());
    group.bench_function(BenchmarkId::from_parameter("disabled"), |b| {
        b.iter(|| {
            run_parallel_opts(
                black_box(&compiled.graph),
                &compiled.clustering,
                &inputs,
                &ctx,
                &disabled,
            )
            .expect("par")
        });
    });
    group.bench_function(BenchmarkId::from_parameter("enabled_profiled"), |b| {
        b.iter(|| {
            let obs = Obs::enabled();
            let opts = RunOptions::default().obs(obs.clone());
            let (out, db) = run_parallel_profiled_opts(
                black_box(&compiled.graph),
                &compiled.clustering,
                &inputs,
                &ctx,
                &opts,
            )
            .expect("par");
            db.export_to_obs(&obs, &compiled.graph);
            assert!(!obs.is_empty());
            out
        });
    });
    group.finish();
}

fn bench_compile_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead_compile");
    group.sample_size(20);
    let g = build(ModelKind::Googlenet, &ModelConfig::full());
    let opts = PipelineOptions::all_optimizations();
    group.bench_function(BenchmarkId::from_parameter("baseline"), |b| {
        b.iter(|| compile(black_box(g.clone()), &opts).expect("compile"));
    });
    let disabled = Obs::disabled();
    group.bench_function(BenchmarkId::from_parameter("disabled"), |b| {
        b.iter(|| compile_with_obs(black_box(g.clone()), &opts, &disabled).expect("compile"));
    });
    group.bench_function(BenchmarkId::from_parameter("enabled"), |b| {
        b.iter(|| {
            let obs = Obs::enabled();
            compile_with_obs(black_box(g.clone()), &opts, &obs).expect("compile")
        });
    });
    group.finish();
}

fn bench_raw_api(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_api_per_call");
    let disabled = Obs::disabled();
    group.bench_function(BenchmarkId::from_parameter("span_disabled"), |b| {
        b.iter(|| {
            for _ in 0..1000 {
                let _span = black_box(&disabled).span(0, "x", "bench");
            }
        });
    });
    let enabled = Obs::enabled();
    group.bench_function(BenchmarkId::from_parameter("span_enabled"), |b| {
        b.iter(|| {
            for _ in 0..1000 {
                let _span = black_box(&enabled).span(0, "x", "bench");
            }
        });
    });
    group.finish();
}

fn bench_metrics_record(c: &mut Criterion) {
    use ramiel::obs::Metrics;
    let mut group = c.benchmark_group("metrics_record_per_call");
    // Value stream spread across octaves, like real nanosecond latencies.
    let gen = |i: u64| (i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) >> 34;
    group.bench_function(BenchmarkId::from_parameter("baseline"), |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                black_box(gen(i));
            }
        });
    });
    let off = Metrics::disabled().histogram("bench_off_ns", "bench", &[]);
    group.bench_function(BenchmarkId::from_parameter("record_disabled"), |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                off.record(black_box(gen(i)));
            }
        });
    });
    let reg = Metrics::enabled();
    let on = reg.histogram("bench_on_ns", "bench", &[]);
    group.bench_function(BenchmarkId::from_parameter("record_enabled"), |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                on.record(black_box(gen(i)));
            }
        });
    });
    let counter = reg.counter("bench_total", "bench", &[]);
    group.bench_function(BenchmarkId::from_parameter("counter_enabled"), |b| {
        b.iter(|| {
            for _ in 0..1000u64 {
                counter.inc();
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_obs_overhead,
    bench_compile_obs_overhead,
    bench_raw_api,
    bench_metrics_record
);
criterion_main!(benches);
