//! Criterion bench: cost of the fault-injection plumbing when it is idle.
//!
//! The supervised runtime threads a `FaultInjector` hook through every
//! executor. The contract (ISSUE: overhead guard) is that a run with *no*
//! injector — the production configuration — pays only an `Option` check
//! per node, and a run with an *empty* plan pays one failed `HashMap`
//! lookup per node. Both must be noise-level (<1%) next to real kernels.
//! Compare the `group` bars: `baseline` (no injector), `empty_plan`
//! (injector armed with zero faults), and `supervised` (full supervisor
//! wrapper, zero faults, retries never triggered).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ramiel::{compile, PipelineOptions};
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_runtime::{
    run_parallel, run_parallel_opts, run_sequential, run_sequential_opts, run_supervised,
    synth_inputs, FaultInjector, FaultPlan, RunOptions, SupervisorConfig,
};
use ramiel_tensor::ExecCtx;
use std::hint::black_box;

fn bench_sequential_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_overhead_sequential");
    group.sample_size(20);
    let compiled = compile(
        build(ModelKind::Squeezenet, &ModelConfig::full()),
        &PipelineOptions::default(),
    )
    .expect("pipeline");
    let inputs = synth_inputs(&compiled.graph, 42);
    let ctx = ExecCtx::sequential();
    group.bench_function(BenchmarkId::from_parameter("baseline"), |b| {
        b.iter(|| run_sequential(black_box(&compiled.graph), &inputs, &ctx).expect("seq"));
    });
    let empty = RunOptions::with_injector(FaultInjector::new(FaultPlan::none()));
    group.bench_function(BenchmarkId::from_parameter("empty_plan"), |b| {
        b.iter(|| {
            run_sequential_opts(black_box(&compiled.graph), &inputs, &ctx, &empty).expect("seq")
        });
    });
    group.finish();
}

fn bench_parallel_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_overhead_parallel");
    group.sample_size(20);
    let compiled = compile(
        build(ModelKind::Squeezenet, &ModelConfig::full()),
        &PipelineOptions::default(),
    )
    .expect("pipeline");
    let inputs = synth_inputs(&compiled.graph, 42);
    let ctx = ExecCtx::sequential();
    group.bench_function(BenchmarkId::from_parameter("baseline"), |b| {
        b.iter(|| {
            run_parallel(
                black_box(&compiled.graph),
                &compiled.clustering,
                &inputs,
                &ctx,
            )
            .expect("par")
        });
    });
    let empty = RunOptions::with_injector(FaultInjector::new(FaultPlan::none()));
    group.bench_function(BenchmarkId::from_parameter("empty_plan"), |b| {
        b.iter(|| {
            run_parallel_opts(
                black_box(&compiled.graph),
                &compiled.clustering,
                &inputs,
                &ctx,
                &empty,
            )
            .expect("par")
        });
    });
    let cfg = SupervisorConfig::default();
    group.bench_function(BenchmarkId::from_parameter("supervised"), |b| {
        b.iter(|| {
            let (res, report) = run_supervised(
                black_box(&compiled.graph),
                &compiled.clustering,
                &inputs,
                &ctx,
                None,
                &cfg,
            );
            assert_eq!(report.attempts, 1);
            res.expect("supervised")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sequential_overhead, bench_parallel_overhead);
criterion_main!(benches);
