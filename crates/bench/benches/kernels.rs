//! Criterion bench: the tensor kernels underlying every measured table —
//! the substrate analogue of PyTorch's operator microbenchmarks, plus the
//! intra-op scaling ablation (Table V's mechanism).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ramiel_tensor::kernels::conv::{conv2d, ConvSpec};
use ramiel_tensor::kernels::gemm::matmul;
use ramiel_tensor::kernels::norm::softmax;
use ramiel_tensor::{ExecCtx, Value};
use std::hint::black_box;

fn f32t(shape: Vec<usize>, seed: u64) -> ramiel_tensor::Tensor<f32> {
    Value::random_f32(shape, seed).f32().expect("f32").clone()
}

fn bench_conv(c: &mut Criterion) {
    let x = f32t(vec![1, 16, 32, 32], 1);
    let w = f32t(vec![16, 16, 3, 3], 2);
    let spec = ConvSpec {
        kernel: (3, 3),
        stride: (1, 1),
        pads: (1, 1),
        groups: 1,
    };
    let mut group = c.benchmark_group("conv2d_3x3_16ch_32px");
    group.sample_size(20);
    for threads in [1usize, 2, 4] {
        let ctx = ExecCtx::with_intra_op(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| conv2d(&ctx, black_box(&x), &w, None, &spec).expect("conv"));
        });
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let a = f32t(vec![128, 256], 3);
    let bm = f32t(vec![256, 128], 4);
    let mut group = c.benchmark_group("matmul_128x256x128");
    group.sample_size(20);
    for threads in [1usize, 2, 4] {
        let ctx = ExecCtx::with_intra_op(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| matmul(&ctx, black_box(&a), &bm).expect("matmul"));
        });
    }
    group.finish();
}

fn bench_batched_attention_matmul(c: &mut Criterion) {
    // BERT-shaped scores product: [1, 4, 32, 16] x [1, 4, 16, 32]
    let q = f32t(vec![1, 4, 32, 16], 5);
    let k = f32t(vec![1, 4, 16, 32], 6);
    let ctx = ExecCtx::sequential();
    c.bench_function("attention_qk_matmul", |b| {
        b.iter(|| matmul(&ctx, black_box(&q), &k).expect("matmul"));
    });
}

fn bench_softmax(c: &mut Criterion) {
    let x = f32t(vec![4, 32, 32], 7);
    c.bench_function("softmax_last_axis", |b| {
        b.iter(|| softmax(black_box(&x), -1).expect("softmax"));
    });
}

fn bench_eval_dispatch(c: &mut Criterion) {
    // per-op dispatch overhead (relevant to the cluster executor's floor)
    let ctx = ExecCtx::sequential();
    let x = Value::random_f32(vec![64], 8);
    c.bench_function("eval_op_relu_64", |b| {
        b.iter(|| {
            ramiel_tensor::eval_op(
                &ctx,
                &ramiel_ir::OpKind::Relu,
                black_box(std::slice::from_ref(&x)),
            )
            .expect("relu")
        });
    });
}

criterion_group!(
    benches,
    bench_conv,
    bench_matmul,
    bench_batched_attention_matmul,
    bench_softmax,
    bench_eval_dispatch
);
criterion_main!(benches);
