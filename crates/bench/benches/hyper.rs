//! Criterion bench: hyperclustering (Figs. 13–14).
//!
//! Measures batched execution through plain and switched hyperclusters
//! against the per-sample sequential baseline, plus the schedule-construction
//! cost itself (which must stay negligible — it runs inside Ramiel's compile
//! path when batch > 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ramiel::{compile, PipelineOptions};
use ramiel_cluster::{hypercluster, switched_hypercluster};
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_runtime::{run_hyper, run_sequential, synth_inputs, Env};
use ramiel_tensor::ExecCtx;
use std::hint::black_box;

fn squeezenet() -> ramiel::CompiledModel {
    compile(
        build(ModelKind::Squeezenet, &ModelConfig::full()),
        &PipelineOptions::default(),
    )
    .expect("pipeline")
}

fn bench_hyper_construction(c: &mut Criterion) {
    let compiled = squeezenet();
    let mut group = c.benchmark_group("hypercluster_construction");
    for batch in [2usize, 4, 8, 12] {
        group.bench_with_input(BenchmarkId::new("plain", batch), &batch, |b, &batch| {
            b.iter(|| hypercluster(black_box(&compiled.clustering), batch));
        });
        group.bench_with_input(BenchmarkId::new("switched", batch), &batch, |b, &batch| {
            b.iter(|| switched_hypercluster(black_box(&compiled.clustering), batch));
        });
    }
    group.finish();
}

fn bench_fig13_execution(c: &mut Criterion) {
    let compiled = squeezenet();
    let ctx = ExecCtx::sequential();
    let mut group = c.benchmark_group("fig13_hyper_execution");
    group.sample_size(10);
    for batch in [2usize, 4, 8] {
        let inputs: Vec<Env> = (0..batch)
            .map(|b| synth_inputs(&compiled.graph, b as u64))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("sequential_batch", batch),
            &inputs,
            |b, inputs| {
                b.iter(|| {
                    for inp in inputs {
                        run_sequential(&compiled.graph, inp, &ctx).expect("seq");
                    }
                });
            },
        );
        let hc = hypercluster(&compiled.clustering, batch);
        group.bench_with_input(
            BenchmarkId::new("hyperclustered", batch),
            &inputs,
            |b, inputs| {
                b.iter(|| run_hyper(&compiled.graph, &hc, inputs, &ctx).expect("hyper"));
            },
        );
    }
    group.finish();
}

fn bench_fig14_switched(c: &mut Criterion) {
    let compiled = squeezenet();
    let ctx = ExecCtx::sequential();
    let mut group = c.benchmark_group("fig14_switched_execution");
    group.sample_size(10);
    for batch in [2usize, 3, 4] {
        let inputs: Vec<Env> = (0..batch)
            .map(|b| synth_inputs(&compiled.graph, 100 + b as u64))
            .collect();
        let plain = hypercluster(&compiled.clustering, batch);
        let switched = switched_hypercluster(&compiled.clustering, batch);
        group.bench_with_input(BenchmarkId::new("plain", batch), &inputs, |b, inputs| {
            b.iter(|| run_hyper(&compiled.graph, &plain, inputs, &ctx).expect("hyper"));
        });
        group.bench_with_input(BenchmarkId::new("switched", batch), &inputs, |b, inputs| {
            b.iter(|| run_hyper(&compiled.graph, &switched, inputs, &ctx).expect("hyper"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hyper_construction,
    bench_fig13_execution,
    bench_fig14_switched
);
criterion_main!(benches);
