//! Criterion bench: compile time, Ramiel vs IOS (Table VIII).
//!
//! The paper's headline: Ramiel generates code in seconds where IOS's
//! dynamic program takes minutes to hours (10×–500×). Here both run over the
//! same graphs and cost model; the gap comes purely from algorithmic
//! complexity (two linear passes vs a subset DP).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ramiel::{compile, PipelineOptions};
use ramiel_cluster::StaticCost;
use ramiel_ios::{ios_schedule, IosConfig};
use ramiel_models::{build, ModelConfig, ModelKind};
use std::hint::black_box;

const MODELS: [ModelKind; 3] = [
    ModelKind::Squeezenet,
    ModelKind::InceptionV3,
    ModelKind::NasNet,
];

fn bench_ramiel_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("table8_ramiel_compile");
    group.sample_size(10);
    for kind in MODELS {
        let g = build(kind, &ModelConfig::full());
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &g, |b, g| {
            b.iter(|| {
                compile(black_box(g.clone()), &PipelineOptions::all_optimizations())
                    .expect("pipeline")
            });
        });
    }
    group.finish();
}

fn bench_ios_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("table8_ios_compile");
    group.sample_size(10);
    for kind in MODELS {
        let g = build(kind, &ModelConfig::full());
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &g, |b, g| {
            b.iter(|| ios_schedule(black_box(g), &StaticCost, &IosConfig::default()));
        });
    }
    group.finish();
}

fn bench_codegen_only(c: &mut Criterion) {
    // isolate the code-generation stage (the part unique to Ramiel among
    // auto-parallelizers: readable Python out)
    let mut group = c.benchmark_group("codegen");
    for kind in [ModelKind::Squeezenet, ModelKind::Bert] {
        let compiled = compile(
            build(kind, &ModelConfig::full()),
            &PipelineOptions::default(),
        )
        .expect("pipeline");
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &compiled,
            |b, c| {
                b.iter(|| {
                    ramiel_codegen::generate_parallel(
                        black_box(&c.graph),
                        &c.clustering,
                        &ramiel_codegen::CodegenOptions::default(),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ramiel_compile,
    bench_ios_compile,
    bench_codegen_only
);
criterion_main!(benches);
