//! Criterion bench: real execution, sequential vs clustered-parallel
//! (Tables IV–VI).
//!
//! Note the host caveat recorded in EXPERIMENTS.md: on a single-core
//! container the parallel executor pays thread/message overhead with no
//! parallel hardware underneath, so the *measured* ratios here are the
//! overhead story; the speedup shape lives in the simulator benches and the
//! `tables` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ramiel::{compile, PipelineOptions};
use ramiel_cluster::StaticCost;
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_runtime::{run_parallel, run_sequential, simulate_clustering, synth_inputs, SimConfig};
use ramiel_tensor::ExecCtx;
use std::hint::black_box;

/// Table IV models kept to the quicker half so the bench suite stays snappy;
/// the `tables` binary covers all eight.
const MODELS: [ModelKind; 4] = [
    ModelKind::Squeezenet,
    ModelKind::Googlenet,
    ModelKind::InceptionV3,
    ModelKind::YoloV5,
];

fn bench_sequential_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_sequential");
    group.sample_size(10);
    for kind in MODELS {
        let compiled = compile(
            build(kind, &ModelConfig::full()),
            &PipelineOptions::default(),
        )
        .expect("pipeline");
        let inputs = synth_inputs(&compiled.graph, 42);
        let ctx = ExecCtx::sequential();
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &compiled,
            |b, c| {
                b.iter(|| run_sequential(black_box(&c.graph), &inputs, &ctx).expect("seq"));
            },
        );
    }
    group.finish();
}

fn bench_parallel_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_parallel");
    group.sample_size(10);
    for kind in MODELS {
        let compiled = compile(
            build(kind, &ModelConfig::full()),
            &PipelineOptions::default(),
        )
        .expect("pipeline");
        let inputs = synth_inputs(&compiled.graph, 42);
        let ctx = ExecCtx::sequential();
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &compiled,
            |b, c| {
                b.iter(|| {
                    run_parallel(black_box(&c.graph), &c.clustering, &inputs, &ctx).expect("par")
                });
            },
        );
    }
    group.finish();
}

fn bench_intra_op(c: &mut Criterion) {
    // Table V: the intra-op knob (rayon pool size) on one conv-heavy model.
    let mut group = c.benchmark_group("table5_intra_op");
    group.sample_size(10);
    let compiled = compile(
        build(ModelKind::InceptionV3, &ModelConfig::full()),
        &PipelineOptions::default(),
    )
    .expect("pipeline");
    let inputs = synth_inputs(&compiled.graph, 42);
    for threads in [1usize, 2, 4] {
        let ctx = ExecCtx::with_intra_op(threads);
        group.bench_with_input(BenchmarkId::new("sequential", threads), &threads, |b, _| {
            b.iter(|| run_sequential(&compiled.graph, &inputs, &ctx).expect("seq"));
        });
    }
    group.finish();
}

fn bench_pruned_execution(c: &mut Criterion) {
    // Table VI: LC vs LC+DCE on the prunable models (real execution).
    let mut group = c.benchmark_group("table6_lc_dce");
    group.sample_size(10);
    for kind in [ModelKind::YoloV5, ModelKind::Bert] {
        for (label, prune) in [("lc", false), ("lc_dce", true)] {
            let compiled = compile(
                build(kind, &ModelConfig::full()),
                &PipelineOptions {
                    prune,
                    ..Default::default()
                },
            )
            .expect("pipeline");
            let inputs = synth_inputs(&compiled.graph, 42);
            let ctx = ExecCtx::sequential();
            group.bench_with_input(BenchmarkId::new(label, kind.name()), &compiled, |b, c| {
                b.iter(|| run_parallel(&c.graph, &c.clustering, &inputs, &ctx).expect("par"));
            });
        }
    }
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    // The simulator itself must stay cheap — it is run inside every table.
    let mut group = c.benchmark_group("simulator");
    for kind in [ModelKind::Squeezenet, ModelKind::NasNet] {
        let compiled = compile(
            build(kind, &ModelConfig::full()),
            &PipelineOptions::default(),
        )
        .expect("pipeline");
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &compiled,
            |b, c| {
                b.iter(|| {
                    simulate_clustering(
                        black_box(&c.graph),
                        &c.clustering,
                        &StaticCost,
                        &SimConfig::default(),
                    )
                    .expect("sim")
                });
            },
        );
    }
    group.finish();
}

fn bench_pool_vs_spawn(c: &mut Criterion) {
    // serving-shape ablation: standing ClusterPool (the paper's long-lived
    // processes) vs spawn-per-inference run_parallel
    let compiled = compile(
        build(ModelKind::Squeezenet, &ModelConfig::full()),
        &PipelineOptions::default(),
    )
    .expect("pipeline");
    let inputs = synth_inputs(&compiled.graph, 42);
    let ctx = ExecCtx::sequential();
    let mut group = c.benchmark_group("pool_vs_spawn");
    group.sample_size(20);
    group.bench_function("spawn_per_inference", |b| {
        b.iter(|| run_parallel(&compiled.graph, &compiled.clustering, &inputs, &ctx).expect("par"));
    });
    let mut pool = ramiel_runtime::ClusterPool::new(&compiled.graph, &compiled.clustering, &ctx)
        .expect("pool");
    group.bench_function("standing_pool", |b| {
        b.iter(|| pool.run(&inputs).expect("pool run"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sequential_execution,
    bench_parallel_execution,
    bench_intra_op,
    bench_pruned_execution,
    bench_simulator,
    bench_pool_vs_spawn
);
criterion_main!(benches);
