//! Criterion bench: ablations over the design choices DESIGN.md calls out.
//!
//! 1. **Clustering strategy** — LC+merge vs round-robin vs level/wavefront
//!    vs single-cluster: simulated makespans on the same graphs show what
//!    the critical-path structure buys.
//! 2. **Cost model** — StaticCost (the paper's) vs FlopCost (shape-aware):
//!    both the pass cost and the resulting schedule quality.
//! 3. **Merging** — LC with vs without the merging fixpoint.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ramiel_cluster::{
    cluster_graph, distance_to_end, dsc_clustering, level_clustering, linear_clustering,
    round_robin, single_cluster, Clustering, FlopCost, StaticCost,
};
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_runtime::{simulate_clustering, SimConfig};
use std::hint::black_box;

fn sim(g: &ramiel_ir::Graph, c: &Clustering) -> u64 {
    simulate_clustering(g, c, &StaticCost, &SimConfig::default())
        .expect("simulation")
        .makespan
}

/// Print-once comparison wrapped in a bench so it lands in the bench report.
fn bench_strategy_makespans(c: &mut Criterion) {
    let g = build(ModelKind::InceptionV3, &ModelConfig::full());
    let lc = cluster_graph(&g, &StaticCost);
    let k = lc.num_clusters();
    let strategies: Vec<(&str, Clustering)> = vec![
        ("lc_merged", lc),
        ("dsc", dsc_clustering(&g, &StaticCost)),
        ("round_robin", round_robin(&g, k)),
        ("level", level_clustering(&g, k)),
        ("single", single_cluster(&g)),
    ];
    for (name, clustering) in &strategies {
        println!(
            "ablation makespan inception_v3 {name}: {} ({} clusters, {} messages)",
            sim(&g, clustering),
            clustering.num_clusters(),
            clustering.cross_cluster_edges(&g)
        );
    }
    let mut group = c.benchmark_group("ablation_simulate_strategy");
    for (name, clustering) in strategies {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &clustering,
            |b, clustering| {
                b.iter(|| sim(black_box(&g), clustering));
            },
        );
    }
    group.finish();
}

fn bench_cost_models(c: &mut Criterion) {
    let g = build(ModelKind::Googlenet, &ModelConfig::full());
    let mut group = c.benchmark_group("ablation_cost_model");
    group.bench_function("static", |b| {
        b.iter(|| distance_to_end(black_box(&g), &StaticCost));
    });
    group.bench_function("flop", |b| {
        b.iter(|| distance_to_end(black_box(&g), &FlopCost::default()));
    });
    group.finish();
    // schedule quality under each cost model (evaluated with StaticCost so
    // the comparison is apples-to-apples)
    for (name, clustering) in [
        ("static", cluster_graph(&g, &StaticCost)),
        ("flop", cluster_graph(&g, &FlopCost::default())),
    ] {
        println!(
            "ablation cost-model googlenet {name}: makespan {} with {} clusters",
            sim(&g, &clustering),
            clustering.num_clusters()
        );
    }
}

fn bench_merging_ablation(c: &mut Criterion) {
    let g = build(ModelKind::NasNet, &ModelConfig::full());
    let dist = distance_to_end(&g, &StaticCost);
    let lc = linear_clustering(&g, &dist);
    let merged = ramiel_cluster::merge_clusters_fixpoint(&lc, &dist);
    println!(
        "ablation merging nasnet: unmerged {} clusters makespan {}, merged {} clusters makespan {}",
        lc.num_clusters(),
        sim(&g, &lc),
        merged.num_clusters(),
        sim(&g, &merged)
    );
    let mut group = c.benchmark_group("ablation_merge_fixpoint");
    group.sample_size(10);
    group.bench_function("nasnet", |b| {
        b.iter(|| ramiel_cluster::merge_clusters_fixpoint(black_box(&lc), &dist));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_strategy_makespans,
    bench_cost_models,
    bench_merging_ablation
);
criterion_main!(benches);
