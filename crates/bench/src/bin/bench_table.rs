//! `bench_table` — fold `BENCH_<date>.json` snapshots into one markdown
//! trajectory table.
//!
//! Each `scripts/bench.sh` run drops a dated summary at the repo root;
//! this tool collects every one of them (sorted by date), pulls out the
//! headline numbers, and renders a table so performance history is
//! reviewable in the repo instead of buried in JSON blobs. Older
//! snapshots may predate newer sections (e.g. `memory`); missing fields
//! render as `—` rather than failing.
//!
//! ```sh
//! cargo run --release -p ramiel-bench --bin bench_table -- \
//!     [--dir .] [--out BENCHMARKS.md]
//! ```

use serde_json::Value;
use std::fs;
use std::path::PathBuf;

struct Row {
    date: String,
    config: String,
    iters: String,
    par_speedup: Option<f64>,
    simd_speedup: Option<f64>,
    quant_speedup: Option<f64>,
    steal_speedup: Option<f64>,
    mem_cut: Option<f64>,
    zero_copy: Option<f64>,
    serve_speedup: Option<f64>,
}

fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

/// Mean of `field` over the objects in array `section`.
fn mean_of(summary: &Value, section: &str, field: &str) -> Option<f64> {
    let items = summary.get(section)?.as_array()?;
    let vals: Vec<f64> = items
        .iter()
        .filter_map(|m| m.get(field)?.as_f64())
        .collect();
    (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
}

fn row_for(date: &str, summary: &Value) -> Row {
    let speedups: Vec<f64> = summary
        .get("models")
        .and_then(Value::as_array)
        .map(|ms| {
            ms.iter()
                .filter_map(|m| m.get("speedup")?.as_f64())
                .collect()
        })
        .unwrap_or_default();
    let steal_speedups: Vec<f64> = summary
        .get("stealing")
        .and_then(Value::as_array)
        .map(|ms| {
            ms.iter()
                .filter_map(|m| m.get("speedup")?.as_f64())
                .collect()
        })
        .unwrap_or_default();
    Row {
        date: date.to_string(),
        config: summary
            .get("config")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string(),
        iters: summary
            .get("iters")
            .and_then(Value::as_u64)
            .map_or_else(|| "?".into(), |i| i.to_string()),
        par_speedup: geomean(&speedups),
        // geomean over the guarded kernel-shape rows (labels contain
        // " mm "); the whole-model row is informational and excluded.
        simd_speedup: summary
            .get("backends")
            .and_then(Value::as_array)
            .map(|bs| {
                bs.iter()
                    .filter(|b| {
                        b.get("model")
                            .and_then(Value::as_str)
                            .is_some_and(|m| m.contains(" mm "))
                    })
                    .filter_map(|b| b.get("simd_speedup").and_then(Value::as_f64))
                    .collect::<Vec<f64>>()
            })
            .and_then(|xs| geomean(&xs)),
        // Informational only — bench_json reports quant-i8 but guards
        // nothing on it: the i8 path pays per-call activation quantization
        // for narrower arithmetic, so < 1.0x here is expected, not a
        // regression. Starred in the table header for that reason.
        quant_speedup: summary
            .get("backends")
            .and_then(Value::as_array)
            .map(|bs| {
                bs.iter()
                    .filter(|b| {
                        b.get("model")
                            .and_then(Value::as_str)
                            .is_some_and(|m| m.contains(" mm "))
                    })
                    .filter_map(|b| b.get("quant_speedup").and_then(Value::as_f64))
                    .collect::<Vec<f64>>()
            })
            .and_then(|xs| geomean(&xs)),
        steal_speedup: geomean(&steal_speedups),
        mem_cut: mean_of(summary, "memory", "reduction"),
        zero_copy: summary
            .get("zero_copy")
            .and_then(|z| z.get("bytes_reduction"))
            .and_then(Value::as_f64),
        serve_speedup: summary
            .get("serve")
            .and_then(|s| s.get("speedup"))
            .and_then(Value::as_f64),
    }
}

fn fmt_x(v: Option<f64>) -> String {
    v.map_or_else(|| "—".into(), |x| format!("{x:.2}x"))
}

fn fmt_pct(v: Option<f64>) -> String {
    v.map_or_else(|| "—".into(), |x| format!("{:.0}%", x * 100.0))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let dir = get("--dir").unwrap_or_else(|| ".".into());
    let out = get("--out");

    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read dir {dir}: {e}"))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();

    let mut rows = Vec::new();
    for path in &files {
        let name = path.file_name().unwrap().to_str().unwrap();
        let date = name
            .trim_start_matches("BENCH_")
            .trim_end_matches(".json")
            .to_string();
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("skipping {name}: {e}");
                continue;
            }
        };
        match serde_json::from_str::<Value>(&text) {
            Ok(summary) => rows.push(row_for(&date, &summary)),
            Err(e) => eprintln!("skipping {name}: parse error: {e:?}"),
        }
    }

    let mut md = String::new();
    md.push_str("# Benchmark trajectory\n\n");
    md.push_str(
        "Folded from the `BENCH_<date>.json` snapshots at the repo root by\n\
         `scripts/bench_table.sh`; regenerate after each `scripts/bench.sh` run.\n\
         `par speedup` is the geometric mean of per-model parallel-over-sequential\n\
         speedups, `steal b1` the same geomean for the work-stealing executor at\n\
         batch 1 (guarded ≥ 1.0 per model by `bench_json`), `peak-mem cut` the\n\
         mean reduction in measured peak live bytes from in-place buffer reuse,\n\
         `zero-copy` the channel payload-bytes-to-copied-bytes ratio, and\n\
         `serve speedup` dynamic batching's throughput gain over per-request\n\
         execution. `simd` is the geomean SimdF32-over-ScalarF32 speedup on\n\
         BERT's dominant Gemm kernel shapes (each guarded \u{2265} 1.3x by\n\
         `bench_json`; whole-model ratios are reported in the JSON but not\n\
         folded here).\n\n\
         `quant-i8*` is **informational only** — reported by `bench_json`\n\
         but covered by no regression guard. The i8 backend pays per-call\n\
         activation quantization to buy narrower arithmetic, so on these\n\
         f32-rooted microbenches it sits below 1.0x by design; a value\n\
         around 0.45x is the expected cost of the accuracy experiment, not\n\
         an unguarded slowdown. Its correctness (tolerance to f32,\n\
         bit-identical across executors) is what CI pins, via the\n\
         `quant_conformance` suite.\n\n",
    );
    md.push_str(
        "| date | config | iters | par speedup | simd | quant-i8* | steal b1 | peak-mem cut | zero-copy | serve speedup |\n",
    );
    md.push_str(
        "|------|--------|-------|-------------|------|-----------|----------|--------------|-----------|---------------|\n",
    );
    for r in &rows {
        md.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            r.date,
            r.config,
            r.iters,
            fmt_x(r.par_speedup),
            fmt_x(r.simd_speedup),
            fmt_x(r.quant_speedup),
            fmt_x(r.steal_speedup),
            fmt_pct(r.mem_cut),
            fmt_x(r.zero_copy),
            fmt_x(r.serve_speedup),
        ));
    }

    match out {
        Some(p) => {
            fs::write(&p, &md).unwrap_or_else(|e| panic!("write {p}: {e}"));
            eprintln!("wrote {p} ({} snapshots)", rows.len());
        }
        None => print!("{md}"),
    }
}
