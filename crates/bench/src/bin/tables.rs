//! `tables` — print any (or all) of the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p ramiel-bench --bin tables            # everything
//! cargo run --release -p ramiel-bench --bin tables -- table4  # one table
//! ```

use ramiel_bench as b;
use std::process::ExitCode;

fn table1() {
    println!("== Table I — potential parallelism of ML dataflow graphs ==");
    println!(
        "{:<14} {:>7} {:>13} {:>8} {:>12}",
        "Model", "#Nodes", "Wt.NodeCost", "Wt.CP", "Parallelism"
    );
    for r in b::table1() {
        println!(
            "{:<14} {:>7} {:>13} {:>8} {:>11.2}x",
            r.model, r.nodes, r.node_cost, r.cp_cost, r.parallelism
        );
    }
}

fn table2() {
    println!("== Table II — clusters before/after merging ==");
    println!(
        "{:<14} {:>15} {:>14}",
        "Model", "Before Merging", "After Merging"
    );
    for r in b::table2() {
        println!("{:<14} {:>15} {:>14}", r.model, r.before, r.after);
    }
}

fn table3() {
    println!("== Table III — clusters after constant propagation + DCE ==");
    println!(
        "{:<14} {:>17} {:>16} {:>12} {:>12} {:>10} {:>10}",
        "Model",
        "Before ConstProp",
        "After ConstProp",
        "Nodes before",
        "Nodes after",
        "LC before",
        "LC after"
    );
    for r in b::table3() {
        println!(
            "{:<14} {:>17} {:>16} {:>12} {:>12} {:>10} {:>10}",
            r.model,
            r.before_cp,
            r.after_cp,
            r.nodes_before,
            r.nodes_after,
            r.lc_before_cp,
            r.lc_after_cp
        );
    }
}

fn table4(iters: usize) {
    println!("== Table IV — Linear Clustering: sequential vs parallel ==");
    println!(
        "{:<14} {:>11} {:>9} {:>10} {:>10} {:>8} {:>12}",
        "Model", "Parallelism", "Clusters", "Seq(ms)", "Par(ms)", "Speedup", "SimSpeedup"
    );
    for r in b::table4(iters) {
        println!(
            "{:<14} {:>10.2}x {:>9} {:>10.2} {:>10.2} {:>7.2}x {:>11.2}x",
            r.model, r.parallelism, r.clusters, r.seq_ms, r.par_ms, r.speedup, r.sim_speedup
        );
    }
}

fn table5(iters: usize) {
    println!("== Table V — LC + downstream intra-op parallelism ==");
    println!(
        "{:<14} {:>9} {:>9} {:>8} {:>9} {:>9} {:>8} {:>8}",
        "Model", "Par2(ms)", "Seq2(ms)", "Sp(2)", "Par4(ms)", "Seq4(ms)", "Sp(4)", "Best"
    );
    for r in b::table5(iters) {
        println!(
            "{:<14} {:>9.2} {:>9.2} {:>7.2}x {:>9.2} {:>9.2} {:>7.2}x {:>7.2}x",
            r.model,
            r.par2_ms,
            r.seq2_ms,
            r.speedup2,
            r.par4_ms,
            r.seq4_ms,
            r.speedup4,
            r.best_overall
        );
    }
}

fn table6(iters: usize) {
    println!("== Table VI — LC + constant propagation + DCE ==");
    println!(
        "{:<14} {:>8} {:>10} {:>12} {:>14}",
        "Model", "S_LC", "S_LC+DCE", "S_LC (real)", "S_LC+DCE (real)"
    );
    for r in b::table6(iters) {
        println!(
            "{:<14} {:>7.2}x {:>9.2}x {:>11.2}x {:>13.2}x",
            r.model, r.s_lc, r.s_lc_dce, r.s_lc_measured, r.s_lc_dce_measured
        );
    }
}

fn table7() {
    println!("== Table VII — overall (simulated, fixed baseline) ==");
    println!(
        "{:<14} {:>8} {:>10} {:>13} {:>10}",
        "Model", "S_LC", "S_LC+DCE", "S_LC+Cloning", "S_Overall"
    );
    let fmt = |v: Option<f64>| v.map_or("      -".to_string(), |x| format!("{x:>6.2}x"));
    for r in b::table7() {
        println!(
            "{:<14} {:>7.2}x {:>10} {:>13} {:>9.2}x",
            r.model,
            r.s_lc,
            fmt(r.s_lc_dce),
            fmt(r.s_lc_clone),
            r.s_overall
        );
    }
}

fn table8() {
    println!("== Table VIII — comparison with IOS ==");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "Model", "Ours", "CT(ours)", "IOS", "CT(IOS)", "DP states"
    );
    for r in b::table8() {
        println!(
            "{:<14} {:>11.2}x {:>12.2?} {:>11.2}x {:>12.2?} {:>10}",
            r.model, r.ours_speedup, r.ours_ct, r.ios_speedup, r.ios_ct, r.ios_dp_states
        );
    }
}

fn fig12() {
    println!("== Fig. 12 — cloning uplift (simulated, fixed baseline) ==");
    println!(
        "{:<14} {:>10} {:>10} {:>9}",
        "Model", "No clone", "Cloned", "Uplift"
    );
    for r in b::fig12() {
        println!(
            "{:<14} {:>9.2}x {:>9.2}x {:>8.1}%",
            r.model, r.plain_speedup, r.cloned_speedup, r.uplift_pct
        );
    }
}

fn print_hyper(rows: &[b::HyperRow]) {
    println!(
        "{:<14} {:>6} {:>9} {:>9} {:>10} {:>12}",
        "Model", "Batch", "Variant", "IntraOp", "Speedup", "SimSpeedup"
    );
    for r in rows {
        println!(
            "{:<14} {:>6} {:>9} {:>9} {:>9.2}x {:>11.2}x",
            r.model,
            r.batch,
            if r.switched { "switched" } else { "plain" },
            r.intra_op,
            r.measured_speedup,
            r.sim_speedup
        );
    }
}

fn fig13(iters: usize) {
    println!("== Fig. 13 — hyperclustering across batch sizes ==");
    print_hyper(&b::fig13(iters));
}

fn fig14(iters: usize) {
    println!("== Fig. 14 — switched hyperclustering (SqueezeNet) ==");
    print_hyper(&b::fig14(iters));
}

fn memory() {
    println!("== Memory — peak activations, sequential vs LC-parallel (extension) ==");
    println!(
        "{:<14} {:>12} {:>13} {:>13} {:>10}",
        "Model", "Weights KiB", "SeqPeak KiB", "ParPeak KiB", "Overhead"
    );
    for r in b::memory_table() {
        println!(
            "{:<14} {:>12.1} {:>13.1} {:>13.1} {:>9.1}%",
            r.model, r.static_kib, r.seq_peak_kib, r.par_peak_kib, r.overhead_pct
        );
    }
}

/// Figs. 5/8/9: dump SqueezeNet's clusters and hyperclusters — as DOT files
/// (colored by cluster) plus a textual structure summary.
fn shapes() {
    use ramiel::{compile, PipelineOptions};
    use ramiel_cluster::{hypercluster, switched_hypercluster};
    use ramiel_models::{build, ModelConfig, ModelKind};

    println!("== Figs. 5/8/9 — SqueezeNet cluster & hypercluster shapes ==");
    let c = compile(
        build(ModelKind::Squeezenet, &ModelConfig::full()),
        &PipelineOptions::default(),
    )
    .expect("pipeline");
    for (ci, cluster) in c.clustering.clusters.iter().enumerate() {
        let ops: Vec<&str> = cluster
            .nodes
            .iter()
            .take(8)
            .map(|&n| c.graph.nodes[n].op.name())
            .collect();
        println!(
            "C{ci}: {:3} ops  [{}{}]",
            cluster.len(),
            ops.join(" → "),
            if cluster.len() > 8 { " → …" } else { "" }
        );
    }
    for (label, hc) in [
        ("HYC (batch 2)", hypercluster(&c.clustering, 2)),
        ("SHYC (batch 2)", switched_hypercluster(&c.clustering, 2)),
    ] {
        let sizes: Vec<usize> = hc.hyperclusters.iter().map(Vec::len).collect();
        println!("{label}: hypercluster op counts {sizes:?}");
    }
    let dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(dir).expect("create target/figures");
    let dot = ramiel_ir::dot::to_dot(&c.graph, Some(&c.clustering.assignment()));
    let path = dir.join("squeezenet_clusters.dot");
    std::fs::write(&path, dot).expect("write dot");
    println!("wrote {} (render with `dot -Tsvg`)", path.display());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let iters = 3;
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);

    if want("table1") {
        table1();
        println!();
    }
    if want("table2") {
        table2();
        println!();
    }
    if want("table3") {
        table3();
        println!();
    }
    if want("table4") {
        table4(iters);
        println!();
    }
    if want("table5") {
        table5(iters);
        println!();
    }
    if want("table6") {
        table6(iters);
        println!();
    }
    if want("table7") {
        table7();
        println!();
    }
    if want("table8") {
        table8();
        println!();
    }
    if want("fig12") {
        fig12();
        println!();
    }
    if want("fig13") {
        fig13(iters);
        println!();
    }
    if want("fig14") {
        fig14(iters);
        println!();
    }
    if want("shapes") {
        shapes();
        println!();
    }
    if want("memory") {
        memory();
        println!();
    }
    ExitCode::SUCCESS
}
