//! `bench_json` — machine-readable benchmark summary.
//!
//! Runs a quick sequential-vs-parallel timing sweep, the disabled-obs
//! overhead guard, and one profile-guided reclustering comparison, then
//! writes the lot as JSON. `scripts/bench.sh` calls this and drops the
//! result at the repo root as `BENCH_<date>.json`.
//!
//! ```sh
//! cargo run --release -p ramiel-bench --bin bench_json -- out.json [--full] [--iters N]
//! ```

use ramiel::obs::Obs;
use ramiel::{compile, PipelineOptions};
use ramiel_cluster::{distance_to_end, linear_clustering, merge_clusters_fixpoint};
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_runtime::{
    run_parallel, run_parallel_opts, run_parallel_profiled, run_sequential, simulate_clustering,
    synth_inputs, RunOptions, SimConfig,
};
use ramiel_tensor::ExecCtx;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ModelRow {
    model: String,
    nodes: usize,
    clusters: usize,
    seq_ms: f64,
    par_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct ObsOverhead {
    model: String,
    baseline_ms: f64,
    disabled_obs_ms: f64,
    enabled_obs_ms: f64,
    /// disabled / baseline — the guard: must stay ≈ 1.0.
    disabled_over_baseline: f64,
}

#[derive(Serialize)]
struct ProfileFeedback {
    model: String,
    sampled_nodes: usize,
    ns_per_unit: u64,
    static_clusters: usize,
    measured_clusters: usize,
    /// Simulated makespans under the measured cost model (units).
    static_makespan: u64,
    measured_makespan: u64,
}

#[derive(Serialize)]
struct Summary {
    config: String,
    iters: usize,
    models: Vec<ModelRow>,
    obs_overhead: ObsOverhead,
    profile_feedback: ProfileFeedback,
}

fn time_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args.first().cloned();
    let full = args.iter().any(|a| a == "--full");
    let iters = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3usize)
        .max(1);
    let cfg = if full {
        ModelConfig::full()
    } else {
        ModelConfig::tiny()
    };
    let ctx = ExecCtx::sequential();

    let mut models = Vec::new();
    for kind in [ModelKind::Squeezenet, ModelKind::Googlenet, ModelKind::Bert] {
        let c = compile(build(kind, &cfg), &PipelineOptions::default()).expect("pipeline");
        let inputs = synth_inputs(&c.graph, 42);
        let seq_ms = time_ms(iters, || {
            run_sequential(&c.graph, &inputs, &ctx).expect("seq");
        });
        let par_ms = time_ms(iters, || {
            run_parallel(&c.graph, &c.clustering, &inputs, &ctx).expect("par");
        });
        models.push(ModelRow {
            model: kind.name().to_string(),
            nodes: c.graph.num_nodes(),
            clusters: c.clustering.num_clusters(),
            seq_ms,
            par_ms,
            speedup: seq_ms / par_ms.max(1e-9),
        });
    }

    // Overhead guard: a disabled Obs handle must cost nothing measurable.
    let c = compile(
        build(ModelKind::Squeezenet, &cfg),
        &PipelineOptions::default(),
    )
    .expect("pipeline");
    let inputs = synth_inputs(&c.graph, 42);
    let baseline_ms = time_ms(iters, || {
        run_parallel(&c.graph, &c.clustering, &inputs, &ctx).expect("par");
    });
    let disabled = RunOptions::default().obs(Obs::disabled());
    let disabled_obs_ms = time_ms(iters, || {
        run_parallel_opts(&c.graph, &c.clustering, &inputs, &ctx, &disabled).expect("par");
    });
    let enabled_obs_ms = time_ms(iters, || {
        let obs = Obs::enabled();
        let opts = RunOptions::default().obs(obs.clone());
        ramiel_runtime::run_parallel_profiled_opts(&c.graph, &c.clustering, &inputs, &ctx, &opts)
            .expect("par");
    });
    let obs_overhead = ObsOverhead {
        model: "Squeezenet".to_string(),
        baseline_ms,
        disabled_obs_ms,
        enabled_obs_ms,
        disabled_over_baseline: disabled_obs_ms / baseline_ms.max(1e-9),
    };

    // Fig. 10 feedback loop: measured profile → MeasuredCost → recluster.
    let (_, db) = run_parallel_profiled(&c.graph, &c.clustering, &inputs, &ctx).expect("profiled");
    let measured = db.measured_cost(&c.graph);
    let dist = distance_to_end(&c.graph, &measured);
    let tuned = merge_clusters_fixpoint(&linear_clustering(&c.graph, &dist), &dist);
    let sim_cfg = SimConfig {
        comm_latency: 8,
        dispatch_overhead: 0,
    };
    let base_sim = simulate_clustering(&c.graph, &c.clustering, &measured, &sim_cfg).expect("sim");
    let tuned_sim = simulate_clustering(&c.graph, &tuned, &measured, &sim_cfg).expect("sim");
    let profile_feedback = ProfileFeedback {
        model: "Squeezenet".to_string(),
        sampled_nodes: measured.sampled_nodes(),
        ns_per_unit: measured.ns_per_unit(),
        static_clusters: c.clustering.num_clusters(),
        measured_clusters: tuned.num_clusters(),
        static_makespan: base_sim.makespan,
        measured_makespan: tuned_sim.makespan,
    };

    let summary = Summary {
        config: if full { "full" } else { "tiny" }.to_string(),
        iters,
        models,
        obs_overhead,
        profile_feedback,
    };
    let json = serde_json::to_string_pretty(&summary).expect("serialize");
    match out_path {
        Some(p) => {
            std::fs::write(&p, &json).expect("write summary");
            eprintln!("wrote {p}");
        }
        None => println!("{json}"),
    }
}
