//! `bench_json` — machine-readable benchmark summary.
//!
//! Runs a quick sequential-vs-parallel timing sweep, the batch-1
//! work-stealing guard (stealing must beat sequential on every model),
//! the disabled-obs and disabled-metrics overhead guards, and one
//! profile-guided reclustering comparison, then writes the lot as JSON. `scripts/bench.sh` calls this
//! and drops the result at the repo root as `BENCH_<date>.json`.
//!
//! ```sh
//! cargo run --release -p ramiel-bench --bin bench_json -- out.json [--full] [--iters N]
//! ```

use ramiel::obs::Obs;
use ramiel::{compile, PipelineOptions};
use ramiel_cluster::{distance_to_end, linear_clustering, merge_clusters_fixpoint};
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_runtime::{
    run_parallel, run_parallel_opts, run_parallel_profiled, run_sequential, run_sequential_opts,
    simulate_clustering, synth_inputs, RunOptions, SimConfig,
};
use ramiel_tensor::{ExecCtx, MemGauge};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ModelRow {
    model: String,
    nodes: usize,
    clusters: usize,
    seq_ms: f64,
    par_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct StealingRow {
    model: String,
    nodes: usize,
    seq_ms: f64,
    steal_ms: f64,
    /// seq / steal at batch 1 — the guard: must stay ≥ 1.0 on every model.
    speedup: f64,
}

#[derive(Serialize)]
struct ObsOverhead {
    model: String,
    baseline_ms: f64,
    disabled_obs_ms: f64,
    enabled_obs_ms: f64,
    /// disabled / baseline — the guard: must stay ≈ 1.0.
    disabled_over_baseline: f64,
}

#[derive(Serialize)]
struct MetricsOverhead {
    /// ns per iteration of the bare value-generation loop (no metrics call).
    baseline_ns: f64,
    /// ns per `HistHandle::record` through a disabled registry's handle —
    /// one `Option` branch on a `None`.
    disabled_record_ns: f64,
    /// ns per `HistHandle::record` through an enabled registry's handle —
    /// bucket index + two relaxed atomics + a `fetch_max`.
    enabled_record_ns: f64,
    /// disabled_record_ns - baseline_ns — the guard: must stay under 5 ns,
    /// i.e. a disabled metrics handle on the serve hot path is free.
    disabled_minus_baseline_ns: f64,
}

#[derive(Serialize)]
struct BackendRow {
    model: String,
    /// Sequential-executor min-of-iters per kernel backend.
    scalar_ms: f64,
    simd_ms: f64,
    quant_i8_ms: f64,
    /// scalar / simd — the guard: must stay ≥ 1.3 on BERT. Whole-model, so
    /// Amdahl's law already discounts the non-Gemm ops; a regression here
    /// means the vectorized microkernels stopped paying for themselves.
    simd_speedup: f64,
    /// scalar / quant-i8 — reported, not guarded: the i8 path trades
    /// per-call activation quantization for narrower arithmetic, and which
    /// side wins is shape-dependent.
    quant_speedup: f64,
}

#[derive(Serialize)]
struct ProfileFeedback {
    model: String,
    sampled_nodes: usize,
    ns_per_unit: u64,
    static_clusters: usize,
    measured_clusters: usize,
    /// Simulated makespans under the measured cost model (units).
    static_makespan: u64,
    measured_makespan: u64,
}

#[derive(Serialize)]
struct ZeroCopy {
    model: String,
    /// Buffer size used by the clone microbench, in bytes.
    clone_buffer_bytes: usize,
    /// ns to clone a `Value` holding that buffer — a refcount bump on the
    /// Arc-shared storage plus a shape-vector copy.
    value_clone_ns: f64,
    /// ns to deep-copy the same buffer — what `clone()` cost before the
    /// storage was shared, and what a channel send used to pay.
    deep_copy_ns: f64,
    /// Logical payload bytes shipped over cluster channels during one
    /// parallel inference (what a serializing transport would move).
    channel_bytes: u64,
    /// Bytes the senders actually copied for those messages (value headers
    /// + shape vectors; element buffers are shared).
    channel_copied_bytes: u64,
    /// channel_bytes / channel_copied_bytes — the regression guard:
    /// `bench_json` exits nonzero if this drops below 2.
    bytes_reduction: f64,
}

#[derive(Serialize)]
struct MemoryRow {
    model: String,
    /// `ramiel-analyze`'s static upper bound over the sequential order.
    estimate_bytes: u64,
    /// Measured gauge high-water mark with in-place reuse + liveness
    /// eviction (the default execution mode).
    peak_reuse_bytes: u64,
    /// Measured gauge high-water mark with `reuse: false` (no in-place
    /// rewriting, no eviction — every intermediate stays resident).
    peak_no_reuse_bytes: u64,
    /// `1 - reuse/no_reuse` — the guard: ≥ 0.25 on Squeezenet and BERT,
    /// and `peak_reuse_bytes` must never exceed `estimate_bytes`.
    reduction: f64,
}

#[derive(Serialize)]
struct ServeBench {
    model: String,
    /// Closed-loop client threads.
    concurrency: usize,
    /// Total requests per mode (concurrency × per-client).
    requests: u64,
    /// Throughput of batch-1 per-request execution: every request runs the
    /// parallel executor directly (fresh worker threads per call — the
    /// `ramiel run` path), same concurrency, same model, same clustering.
    per_request_rps: f64,
    per_request_p50_ms: f64,
    per_request_p99_ms: f64,
    /// Throughput through the serving layer: requests coalesced by the
    /// dynamic micro-batcher into hypercluster executions on the standing
    /// worker pool.
    batched_rps: f64,
    batched_p50_ms: f64,
    batched_p99_ms: f64,
    /// Mean achieved batch size under load (server's own histogram).
    mean_batch: f64,
    /// batched_rps / per_request_rps — the guard: must stay ≥ 1.5.
    speedup: f64,
    /// Responses differing from the sequential baseline — must be 0.
    mismatches: u64,
}

#[derive(Serialize)]
struct Summary {
    config: String,
    iters: usize,
    models: Vec<ModelRow>,
    backends: Vec<BackendRow>,
    stealing: Vec<StealingRow>,
    memory: Vec<MemoryRow>,
    obs_overhead: ObsOverhead,
    metrics_overhead: MetricsOverhead,
    profile_feedback: ProfileFeedback,
    zero_copy: ZeroCopy,
    serve: ServeBench,
}

fn time_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

/// Min-of-iters timing: the right statistic for a guard comparing two
/// executors on the same host — the minimum is the least-noise sample,
/// so scheduler jitter can't manufacture a fake regression (or hide one).
fn time_min_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// One timed unit of backend kernel work: the f32 `mm` entry point for
/// ScalarF32/SimdF32 (which dispatches on the ctx backend), or the i8
/// quantize → integer-mm → dequantize pipeline for QuantI8.
fn run_backend_mm(
    ctx: &ramiel_tensor::ExecCtx,
    a: &ramiel_tensor::Tensor<f32>,
    b: &ramiel_tensor::Tensor<f32>,
    m: usize,
    k: usize,
    n: usize,
) {
    use ramiel_runtime::KernelBackend;
    if ctx.backend() == KernelBackend::QuantI8 {
        std::hint::black_box(
            ramiel_tensor::kernels::quant::matmul_q(ctx, a, b).expect("quant matmul"),
        );
    } else {
        std::hint::black_box(ramiel_tensor::kernels::gemm::mm(
            ctx,
            a.data(),
            b.data(),
            m,
            k,
            n,
        ));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args.first().cloned();
    let full = args.iter().any(|a| a == "--full");
    let iters = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3usize)
        .max(1);
    let cfg = if full {
        ModelConfig::full()
    } else {
        ModelConfig::tiny()
    };
    let ctx = ExecCtx::sequential();

    let mut models = Vec::new();
    for kind in [
        ModelKind::Squeezenet,
        ModelKind::Googlenet,
        ModelKind::InceptionV3,
        ModelKind::Bert,
    ] {
        let c = compile(build(kind, &cfg), &PipelineOptions::default()).expect("pipeline");
        let inputs = synth_inputs(&c.graph, 42);
        let seq_ms = time_ms(iters, || {
            run_sequential(&c.graph, &inputs, &ctx).expect("seq");
        });
        let par_ms = time_ms(iters, || {
            run_parallel(&c.graph, &c.clustering, &inputs, &ctx).expect("par");
        });
        models.push(ModelRow {
            model: kind.name().to_string(),
            nodes: c.graph.num_nodes(),
            clusters: c.clustering.num_clusters(),
            seq_ms,
            par_ms,
            speedup: seq_ms / par_ms.max(1e-9),
        });
    }

    // Per-backend kernel costs on BERT's Gemm work. Two granularities:
    // the dominant Gemm shapes measured straight through the kernel entry
    // point (the guard), and one whole-model run per backend (reported,
    // not guarded — on a shared core the scalar executor's timing swings
    // by 30%+ between runs, so an end-to-end ratio can't anchor a hard
    // gate). Shapes are BERT-base's QKV projection and FFN expansion at
    // seq 128; per-backend samples are interleaved round-robin and the
    // guard reads the *minimum* — the least-contaminated estimate of the
    // kernel's true cost — so a host frequency dip or a noisy neighbor
    // can only discard rounds, never manufacture a ratio. A shape that
    // still lands under the bar gets re-measured up to two more times
    // before the guard declares a regression: a real SIMD regression
    // fails every attempt, while a loaded-host dip has three independent
    // windows to clear.
    let backends = {
        use ramiel_runtime::KernelBackend;
        let minimum = |xs: &[f64]| xs.iter().copied().fold(f64::INFINITY, f64::min);
        let rounds = iters.max(5);
        let mut rows = Vec::new();
        for (label, m, k, n) in [
            ("BERT qkv mm 128x768x768", 128usize, 768usize, 768usize),
            ("BERT ffn mm 128x768x3072", 128, 768, 3072),
        ] {
            let a = ramiel_tensor::Value::random_f32(vec![m, k], 3);
            let b = ramiel_tensor::Value::random_f32(vec![k, n], 4);
            let (a, b) = (a.f32().expect("f32"), b.f32().expect("f32"));
            let ctxs = [
                ctx.clone(),
                ctx.with_backend(KernelBackend::SimdF32),
                ctx.with_backend(KernelBackend::QuantI8),
            ];
            let measure = || {
                let mut samples = [vec![], vec![], vec![]];
                for c in &ctxs {
                    // warm-up; QuantI8 has no mm entry point — time the f32
                    // kernels for scalar/simd and the i8 kernel via its own
                    // quantize-multiply-dequantize pipeline.
                    run_backend_mm(c, a, b, m, k, n);
                }
                for _ in 0..rounds {
                    for (i, c) in ctxs.iter().enumerate() {
                        let start = Instant::now();
                        run_backend_mm(c, a, b, m, k, n);
                        samples[i].push(start.elapsed().as_secs_f64() * 1e3);
                    }
                }
                let [sc, si, qu] = samples;
                (minimum(&sc), minimum(&si), minimum(&qu))
            };
            let (mut scalar_ms, mut simd_ms, mut quant_i8_ms) = measure();
            for attempt in 0..2 {
                if scalar_ms / simd_ms.max(1e-9) >= 1.3 {
                    break;
                }
                eprintln!(
                    "backends: {label} at {:.2}x on attempt {} — re-measuring",
                    scalar_ms / simd_ms.max(1e-9),
                    attempt + 1,
                );
                (scalar_ms, simd_ms, quant_i8_ms) = measure();
            }
            rows.push(BackendRow {
                model: label.to_string(),
                scalar_ms,
                simd_ms,
                quant_i8_ms,
                simd_speedup: scalar_ms / simd_ms.max(1e-9),
                quant_speedup: scalar_ms / quant_i8_ms.max(1e-9),
            });
        }
        // Whole-model backend comparison (informational).
        let bcfg = ModelConfig {
            hidden: 512,
            seq_len: 128,
            depth_pct: 9,
            ..ModelConfig::full()
        };
        let c =
            compile(build(ModelKind::Bert, &bcfg), &PipelineOptions::default()).expect("pipeline");
        let inputs = synth_inputs(&c.graph, 42);
        let opts: Vec<RunOptions> = KernelBackend::all()
            .iter()
            .map(|&b| RunOptions::default().backend(b))
            .collect();
        let mut samples = [vec![], vec![], vec![]];
        for o in &opts {
            run_sequential_opts(&c.graph, &inputs, &ctx, o).expect("seq"); // warm-up
        }
        for _ in 0..iters.max(5) {
            for (i, o) in opts.iter().enumerate() {
                let start = Instant::now();
                run_sequential_opts(&c.graph, &inputs, &ctx, o).expect("seq");
                samples[i].push(start.elapsed().as_secs_f64() * 1e3);
            }
        }
        let [sc, si, qu] = samples;
        let (scalar_ms, simd_ms, quant_i8_ms) = (minimum(&sc), minimum(&si), minimum(&qu));
        rows.push(BackendRow {
            model: "BERT (whole model, hidden 512)".to_string(),
            scalar_ms,
            simd_ms,
            quant_i8_ms,
            simd_speedup: scalar_ms / simd_ms.max(1e-9),
            quant_speedup: scalar_ms / quant_i8_ms.max(1e-9),
        });
        rows
    };
    for row in backends.iter().filter(|r| r.model.contains(" mm ")) {
        if row.simd_speedup < 1.3 {
            eprintln!(
                "backend guard FAILED: SimdF32 ran {} only {:.2}x faster than \
                 ScalarF32 ({:.3} vs {:.3} ms, need >= 1.3x) — the f32x8 \
                 microkernels regressed",
                row.model, row.simd_speedup, row.simd_ms, row.scalar_ms
            );
            std::process::exit(1);
        }
    }

    // Work-stealing at batch 1 on every built-in model: the standing
    // StealPool (plan prebuilt, workers persistent) against the sequential
    // executor, min-of-iters on both sides. The guard is the executor's
    // whole pitch — task parallelism cheap enough to pay off on a single
    // request, no batching required — so stealing losing to sequential on
    // ANY model is a regression that fails the run.
    let mut stealing = Vec::new();
    {
        use ramiel_runtime::{StealPlan, StealPool};
        use std::sync::Arc;
        let pool = StealPool::global();
        let steal_iters = iters.max(5);
        let opts = RunOptions::default();
        for kind in ModelKind::all() {
            let c = compile(build(kind, &cfg), &PipelineOptions::default()).expect("pipeline");
            let inputs = synth_inputs(&c.graph, 42);
            let plan = Arc::new(StealPlan::new(&c.graph, &c.clustering, 1).expect("steal plan"));
            let one = [inputs.clone()];
            let seq_ms = time_min_ms(steal_iters, || {
                run_sequential(&c.graph, &inputs, &ctx).expect("seq");
            });
            let steal_ms = time_min_ms(steal_iters, || {
                pool.run_plan(&plan, &one, &ctx, &opts).expect("steal");
            });
            stealing.push(StealingRow {
                model: kind.name().to_string(),
                nodes: c.graph.num_nodes(),
                seq_ms,
                steal_ms,
                speedup: seq_ms / steal_ms.max(1e-9),
            });
        }
        for row in &stealing {
            if row.steal_ms > row.seq_ms {
                eprintln!(
                    "stealing guard FAILED: {} batch-1 work-stealing took {:.4} ms vs \
                     {:.4} ms sequential ({:.2}x) — the stealing executor must beat \
                     sequential at batch 1 on every model",
                    row.model, row.steal_ms, row.seq_ms, row.speedup
                );
                std::process::exit(1);
            }
        }
    }

    // Peak live bytes: the in-place reuse + liveness eviction path against
    // a keep-everything run, with ramiel-analyze's static bound as the
    // soundness reference.
    let mut memory = Vec::new();
    for kind in [
        ModelKind::Squeezenet,
        ModelKind::Googlenet,
        ModelKind::InceptionV3,
        ModelKind::Bert,
    ] {
        let c = compile(build(kind, &cfg), &PipelineOptions::default()).expect("pipeline");
        let inputs = synth_inputs(&c.graph, 42);
        let order = ramiel_ir::topo::topo_sort(&c.graph).expect("topo");
        let view = ramiel::verify::ScheduleView::single_batch(
            vec![order],
            ramiel::verify::ExecPolicy::InOrder,
        );
        let (est, _) = ramiel::analyze::memory::estimate_memory(&c.graph, &view);
        let measure = |opts: &RunOptions| {
            let gauge = MemGauge::new();
            let gctx = ExecCtx::sequential().with_mem_gauge(gauge.clone());
            run_sequential_opts(&c.graph, &inputs, &gctx, opts).expect("seq");
            gauge.peak_bytes()
        };
        let peak_reuse_bytes = measure(&RunOptions::default());
        let peak_no_reuse_bytes = measure(&RunOptions::default().reuse(false));
        let row = MemoryRow {
            model: kind.name().to_string(),
            estimate_bytes: est.peak_bytes,
            peak_reuse_bytes,
            peak_no_reuse_bytes,
            reduction: 1.0 - peak_reuse_bytes as f64 / peak_no_reuse_bytes.max(1) as f64,
        };
        if row.peak_reuse_bytes > row.estimate_bytes {
            eprintln!(
                "memory guard FAILED: {} measured peak {} B exceeds the static \
                 estimate {} B — the analyzer's bound is no longer sound",
                row.model, row.peak_reuse_bytes, row.estimate_bytes
            );
            std::process::exit(1);
        }
        if matches!(kind, ModelKind::Squeezenet | ModelKind::Bert) && row.reduction < 0.25 {
            eprintln!(
                "memory guard FAILED: in-place reuse cut {}'s peak live bytes by \
                 only {:.0}% ({} vs {} B, need >= 25%) — eviction or in-place \
                 marking regressed",
                row.model,
                row.reduction * 100.0,
                row.peak_reuse_bytes,
                row.peak_no_reuse_bytes
            );
            std::process::exit(1);
        }
        memory.push(row);
    }

    // Overhead guard: a disabled Obs handle must cost nothing measurable.
    let c = compile(
        build(ModelKind::Squeezenet, &cfg),
        &PipelineOptions::default(),
    )
    .expect("pipeline");
    let inputs = synth_inputs(&c.graph, 42);
    let baseline_ms = time_ms(iters, || {
        run_parallel(&c.graph, &c.clustering, &inputs, &ctx).expect("par");
    });
    let disabled = RunOptions::default().obs(Obs::disabled());
    let disabled_obs_ms = time_ms(iters, || {
        run_parallel_opts(&c.graph, &c.clustering, &inputs, &ctx, &disabled).expect("par");
    });
    let enabled_obs_ms = time_ms(iters, || {
        let obs = Obs::enabled();
        let opts = RunOptions::default().obs(obs.clone());
        ramiel_runtime::run_parallel_profiled_opts(&c.graph, &c.clustering, &inputs, &ctx, &opts)
            .expect("par");
    });
    let obs_overhead = ObsOverhead {
        model: "Squeezenet".to_string(),
        baseline_ms,
        disabled_obs_ms,
        enabled_obs_ms,
        disabled_over_baseline: disabled_obs_ms / baseline_ms.max(1e-9),
    };

    // Metrics hot path: the per-request latency/phase histograms sit on
    // every serve response, so `HistHandle::record` must be branch-cheap
    // when the registry is disabled and a handful of relaxed atomics when
    // it is not. Min-of-reps per mode so scheduler noise can't trip the
    // absolute-nanosecond guard.
    let metrics_overhead = {
        use ramiel::obs::Metrics;
        const LOOP: u64 = 2_000_000;
        const REPS: usize = 5;
        let time_ns = |f: &mut dyn FnMut(u64)| -> f64 {
            for i in 0..50_000u64 {
                f(i); // warm-up
            }
            let mut best = f64::INFINITY;
            for _ in 0..REPS {
                let start = Instant::now();
                for i in 0..LOOP {
                    f(i);
                }
                best = best.min(start.elapsed().as_nanos() as f64 / LOOP as f64);
            }
            best
        };
        // Same synthetic value stream in all three modes: a cheap mix that
        // spreads samples across histogram octaves like real latencies do.
        let gen = |i: u64| (i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) >> 34;
        let baseline_ns = time_ns(&mut |i| {
            std::hint::black_box(gen(i));
        });
        let off = Metrics::disabled().histogram("bench_off_ns", "bench", &[]);
        let disabled_record_ns = time_ns(&mut |i| {
            off.record(std::hint::black_box(gen(i)));
        });
        let reg = Metrics::enabled();
        let on = reg.histogram("bench_on_ns", "bench", &[]);
        let enabled_record_ns = time_ns(&mut |i| {
            on.record(std::hint::black_box(gen(i)));
        });
        MetricsOverhead {
            baseline_ns,
            disabled_record_ns,
            enabled_record_ns,
            disabled_minus_baseline_ns: disabled_record_ns - baseline_ns,
        }
    };
    if metrics_overhead.disabled_minus_baseline_ns > 5.0 {
        eprintln!(
            "metrics guard FAILED: a disabled HistHandle::record costs {:.2} ns over \
             the bare loop ({:.2} vs {:.2} ns/op, need < 5 ns) — the disabled path \
             is no longer a single branch",
            metrics_overhead.disabled_minus_baseline_ns,
            metrics_overhead.disabled_record_ns,
            metrics_overhead.baseline_ns
        );
        std::process::exit(1);
    }

    // Fig. 10 feedback loop: measured profile → MeasuredCost → recluster.
    let (_, db) = run_parallel_profiled(&c.graph, &c.clustering, &inputs, &ctx).expect("profiled");
    let measured = db.measured_cost(&c.graph);
    let dist = distance_to_end(&c.graph, &measured);
    let tuned = merge_clusters_fixpoint(&linear_clustering(&c.graph, &dist), &dist);
    let sim_cfg = SimConfig {
        comm_latency: 8,
        dispatch_overhead: 0,
    };
    let base_sim = simulate_clustering(&c.graph, &c.clustering, &measured, &sim_cfg).expect("sim");
    let tuned_sim = simulate_clustering(&c.graph, &tuned, &measured, &sim_cfg).expect("sim");
    let profile_feedback = ProfileFeedback {
        model: "Squeezenet".to_string(),
        sampled_nodes: measured.sampled_nodes(),
        ns_per_unit: measured.ns_per_unit(),
        static_clusters: c.clustering.num_clusters(),
        measured_clusters: tuned.num_clusters(),
        static_makespan: base_sim.makespan,
        measured_makespan: tuned_sim.makespan,
    };

    // Zero-copy health: clone-vs-deep-copy microbench plus the
    // bytes-copied-per-inference guard on BERT's parallel executor.
    let zero_copy = {
        let clone_buffer_bytes = 4 << 20; // 4 MiB of f32s
        let v = ramiel_tensor::Value::random_f32(vec![clone_buffer_bytes / 4], 7);
        let micro_iters = 1000;
        let start = Instant::now();
        for _ in 0..micro_iters {
            std::hint::black_box(v.clone());
        }
        let value_clone_ns = start.elapsed().as_nanos() as f64 / micro_iters as f64;
        let data = v.f32().expect("f32 by construction").data();
        let deep_iters = 20;
        let start = Instant::now();
        for _ in 0..deep_iters {
            std::hint::black_box(data.to_vec());
        }
        let deep_copy_ns = start.elapsed().as_nanos() as f64 / deep_iters as f64;

        let c =
            compile(build(ModelKind::Bert, &cfg), &PipelineOptions::default()).expect("pipeline");
        let inputs = synth_inputs(&c.graph, 42);
        let (_, db) =
            run_parallel_profiled(&c.graph, &c.clustering, &inputs, &ctx).expect("profiled");
        let channel_bytes: u64 = db.channels().iter().map(|e| e.bytes).sum();
        let channel_copied_bytes: u64 = db.channels().iter().map(|e| e.copied_bytes).sum();
        ZeroCopy {
            model: "BERT".to_string(),
            clone_buffer_bytes,
            value_clone_ns,
            deep_copy_ns,
            channel_bytes,
            channel_copied_bytes,
            bytes_reduction: channel_bytes as f64 / channel_copied_bytes.max(1) as f64,
        }
    };
    if zero_copy.channel_bytes > 0 && zero_copy.bytes_reduction < 2.0 {
        eprintln!(
            "zero-copy guard FAILED: channel sends copied {} of {} payload bytes \
             ({}x reduction, need >= 2x) — sends are deep-copying again",
            zero_copy.channel_copied_bytes, zero_copy.channel_bytes, zero_copy.bytes_reduction
        );
        std::process::exit(1);
    }

    // Serving: closed-loop load through the serving layer (plan cache +
    // standing pool + dynamic micro-batching) vs batch-1 per-request
    // execution (each request runs the parallel executor directly, spawning
    // its workers per call, as `ramiel run` does). Same model, same
    // clustering, same client count — the delta is what the serving
    // subsystem buys over executing every request on its own.
    let serve = {
        use ramiel_bench::{baseline_outputs, closed_loop_load, per_request_load};
        use ramiel_serve::{PlanSpec, ServeConfig, Server};
        use std::sync::Arc;
        use std::time::Duration;

        let kind = ModelKind::Squeezenet;
        let prepared =
            ramiel::prepare(build(kind, &cfg), &PipelineOptions::default()).expect("pipeline");
        let graph = prepared.compiled.graph.clone();
        let clustering = prepared.compiled.clustering.clone();
        let concurrency = 8;
        let per_client = 24.max(iters * 8);
        let expected = Arc::new(baseline_outputs(&graph, concurrency, per_client));

        let per_request = per_request_load(&graph, &clustering, &expected, concurrency, per_client);

        let max_batch = concurrency;
        let server = Arc::new(Server::new(ServeConfig {
            max_batch,
            max_delay: Duration::from_millis(2),
            ..ServeConfig::default()
        }));
        let spec = PlanSpec {
            clustering: Some(clustering),
            batch_sizes: (1..=max_batch).collect(),
            init_values: Some(Arc::clone(&prepared.init_values)),
            ..PlanSpec::new(graph.clone())
        };
        server.load(kind.name(), spec).expect("load");
        let batched = closed_loop_load(
            &server,
            kind.name(),
            &graph,
            &expected,
            concurrency,
            per_client,
        );
        server.shutdown();

        ServeBench {
            model: kind.name().to_string(),
            concurrency,
            requests: (concurrency * per_client) as u64,
            per_request_rps: per_request.throughput_rps,
            per_request_p50_ms: per_request.p50_ms,
            per_request_p99_ms: per_request.p99_ms,
            batched_rps: batched.throughput_rps,
            batched_p50_ms: batched.p50_ms,
            batched_p99_ms: batched.p99_ms,
            mean_batch: batched.mean_batch,
            speedup: batched.throughput_rps / per_request.throughput_rps.max(1e-9),
            mismatches: per_request.mismatches
                + batched.mismatches
                + per_request.failed
                + batched.failed,
        }
    };
    if serve.mismatches > 0 {
        eprintln!(
            "serve guard FAILED: {} responses diverged from the sequential baseline (or failed)",
            serve.mismatches
        );
        std::process::exit(1);
    }
    if serve.speedup < 1.5 {
        eprintln!(
            "serve guard FAILED: dynamic batching gained only {:.2}x throughput over \
             batch-1 per-request execution ({:.1} vs {:.1} req/s, need >= 1.5x)",
            serve.speedup, serve.batched_rps, serve.per_request_rps
        );
        std::process::exit(1);
    }

    let summary = Summary {
        config: if full { "full" } else { "tiny" }.to_string(),
        iters,
        models,
        backends,
        stealing,
        memory,
        obs_overhead,
        metrics_overhead,
        profile_feedback,
        zero_copy,
        serve,
    };
    let json = serde_json::to_string_pretty(&summary).expect("serialize");
    match out_path {
        Some(p) => {
            std::fs::write(&p, &json).expect("write summary");
            eprintln!("wrote {p}");
        }
        None => println!("{json}"),
    }
}
