//! Shared harness that regenerates every table and figure in the paper's
//! evaluation section. The `tables` binary prints them; the Criterion
//! benches wrap the same entry points.
//!
//! Two kinds of numbers appear side by side:
//!
//! - **measured** — wall-clock on this host's real kernel execution (the
//!   analogue of the paper's Xeon runs; absolute values differ, shape
//!   should match);
//! - **simulated** — deterministic makespans from the discrete-event
//!   simulator under the paper's static cost model (bit-for-bit
//!   reproducible anywhere).

use ramiel::{compile, CompiledModel, PipelineOptions};
use ramiel_cluster::{hypercluster, switched_hypercluster, StaticCost};
use ramiel_ios::{ios_makespan, ios_schedule, IosConfig};
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_runtime::{
    clustering_peak_memory, run_hyper, run_parallel, run_sequential, sequential_peak_memory,
    simulate_clustering, simulate_hyper, simulate_sequential, synth_inputs, Env, SimConfig,
};
use ramiel_tensor::ExecCtx;
use std::time::{Duration, Instant};

/// Simulator configuration used across tables. A communication latency of 4
/// cost units reflects the paper's observation that Python-process queues
/// are expensive relative to small ops (it is what pushes SqueezeNet below
/// 1×, as in Table IV).
pub fn sim_config() -> SimConfig {
    SimConfig {
        comm_latency: 8,
        dispatch_overhead: 0,
    }
}

/// Vision/transformer models at paper-faithful topology.
pub fn model_config() -> ModelConfig {
    ModelConfig::full()
}

/// Per-model cloning restraint, mirroring the paper's "applied with care
/// and in a limited setting": transformers only tolerate cloning the very
/// top of the graph (cheap embedding-side nodes), vision models take the
/// default budget.
pub fn clone_config_for(kind: ModelKind) -> ramiel_passes::CloneConfig {
    match kind {
        ModelKind::Bert => ramiel_passes::CloneConfig {
            max_node_cost: 1,
            top_fraction: 0.1,
            rounds: 1,
            ..Default::default()
        },
        _ => ramiel_passes::CloneConfig::default(),
    }
}

/// Wall-clock one closure, with warm-up, returning ms per iteration.
pub fn time_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

/// Simulated speedup of a compiled model's clustering vs sequential.
pub fn simulated_speedup(c: &CompiledModel) -> f64 {
    let sim = simulate_clustering(&c.graph, &c.clustering, &StaticCost, &sim_config())
        .expect("simulation");
    simulate_sequential(&c.graph, &StaticCost, 1) as f64 / sim.makespan as f64
}

/// Simulated speedup against a *fixed* sequential baseline cost (used for
/// Table VI/VII where all variants compare to the unoptimized model).
pub fn simulated_speedup_vs(c: &CompiledModel, baseline_seq: u64) -> f64 {
    let sim = simulate_clustering(&c.graph, &c.clustering, &StaticCost, &sim_config())
        .expect("simulation");
    baseline_seq as f64 / sim.makespan as f64
}

/// Measured (real-execution) sequential and parallel times in ms.
pub fn measured_times(c: &CompiledModel, iters: usize, intra_op: usize) -> (f64, f64) {
    let inputs = synth_inputs(&c.graph, 42);
    let ctx = ExecCtx::with_intra_op(intra_op);
    let seq = time_ms(iters, || {
        run_sequential(&c.graph, &inputs, &ctx).expect("sequential run");
    });
    let par = time_ms(iters, || {
        run_parallel(&c.graph, &c.clustering, &inputs, &ctx).expect("parallel run");
    });
    (seq, par)
}

// --------------------------------------------------------------------------
// Table I — potential parallelism
// --------------------------------------------------------------------------

pub struct Table1Row {
    pub model: String,
    pub nodes: usize,
    pub node_cost: u64,
    pub cp_cost: u64,
    pub parallelism: f64,
}

pub fn table1() -> Vec<Table1Row> {
    ModelKind::all()
        .into_iter()
        .map(|k| {
            let g = build(k, &model_config());
            let r = ramiel_cluster::parallelism_report(&g, &StaticCost);
            Table1Row {
                model: k.name().into(),
                nodes: r.num_nodes,
                node_cost: r.total_node_cost,
                cp_cost: r.critical_path_cost,
                parallelism: r.parallelism,
            }
        })
        .collect()
}

// --------------------------------------------------------------------------
// Table II — clusters before/after merging
// --------------------------------------------------------------------------

pub struct Table2Row {
    pub model: String,
    pub before: usize,
    pub after: usize,
}

pub fn table2() -> Vec<Table2Row> {
    ModelKind::all()
        .into_iter()
        .map(|k| {
            let c =
                compile(build(k, &model_config()), &PipelineOptions::default()).expect("pipeline");
            Table2Row {
                model: k.name().into(),
                before: c.report.clusters_before_merge,
                after: c.report.clusters_after_merge,
            }
        })
        .collect()
}

// --------------------------------------------------------------------------
// Table III — clusters after constant propagation + DCE
// --------------------------------------------------------------------------

pub struct Table3Row {
    pub model: String,
    pub before_cp: usize,
    pub after_cp: usize,
    pub nodes_before: usize,
    pub nodes_after: usize,
    pub lc_before_cp: usize,
    pub lc_after_cp: usize,
}

pub fn table3() -> Vec<Table3Row> {
    [ModelKind::YoloV5, ModelKind::NasNet, ModelKind::Bert]
        .into_iter()
        .map(|k| {
            let plain =
                compile(build(k, &model_config()), &PipelineOptions::default()).expect("pipeline");
            let pruned = compile(
                build(k, &model_config()),
                &PipelineOptions {
                    prune: true,
                    ..Default::default()
                },
            )
            .expect("pipeline");
            Table3Row {
                model: k.name().into(),
                before_cp: plain.report.clusters_after_merge,
                after_cp: pruned.report.clusters_after_merge,
                nodes_before: plain.graph.num_nodes(),
                nodes_after: pruned.graph.num_nodes(),
                lc_before_cp: plain.report.clusters_before_merge,
                lc_after_cp: pruned.report.clusters_before_merge,
            }
        })
        .collect()
}

// --------------------------------------------------------------------------
// Table IV — LC: sequential vs parallel
// --------------------------------------------------------------------------

pub struct Table4Row {
    pub model: String,
    pub parallelism: f64,
    pub clusters: usize,
    pub seq_ms: f64,
    pub par_ms: f64,
    pub speedup: f64,
    pub sim_speedup: f64,
}

pub fn table4(iters: usize) -> Vec<Table4Row> {
    ModelKind::all()
        .into_iter()
        .map(|k| {
            let c =
                compile(build(k, &model_config()), &PipelineOptions::default()).expect("pipeline");
            let (seq_ms, par_ms) = measured_times(&c, iters, 1);
            Table4Row {
                model: k.name().into(),
                parallelism: c.report.parallelism.parallelism,
                clusters: c.report.clusters_after_merge,
                seq_ms,
                par_ms,
                speedup: seq_ms / par_ms,
                sim_speedup: simulated_speedup(&c),
            }
        })
        .collect()
}

// --------------------------------------------------------------------------
// Table V — LC + downstream intra-op parallelism
// --------------------------------------------------------------------------

pub struct Table5Row {
    pub model: String,
    pub par2_ms: f64,
    pub seq2_ms: f64,
    pub speedup2: f64,
    pub par4_ms: f64,
    pub seq4_ms: f64,
    pub speedup4: f64,
    pub best_overall: f64,
}

pub fn table5(iters: usize) -> Vec<Table5Row> {
    // the paper's Table V subset (vision models; BERT/YOLO omitted there)
    [
        ModelKind::Squeezenet,
        ModelKind::Googlenet,
        ModelKind::InceptionV3,
        ModelKind::InceptionV4,
        ModelKind::Retinanet,
        ModelKind::NasNet,
    ]
    .into_iter()
    .map(|k| {
        let c = compile(build(k, &model_config()), &PipelineOptions::default()).expect("pipeline");
        let (seq2, par2) = measured_times(&c, iters, 2);
        let (seq4, par4) = measured_times(&c, iters, 4);
        Table5Row {
            model: k.name().into(),
            par2_ms: par2,
            seq2_ms: seq2,
            speedup2: seq2 / par2,
            par4_ms: par4,
            seq4_ms: seq4,
            speedup4: seq4 / par4,
            best_overall: seq2.min(seq4) / par2.min(par4),
        }
    })
    .collect()
}

// --------------------------------------------------------------------------
// Table VI — S_LC vs S_LC+DCE (fixed baseline: the unpruned model)
// --------------------------------------------------------------------------

pub struct Table6Row {
    pub model: String,
    pub s_lc: f64,
    pub s_lc_dce: f64,
    pub s_lc_measured: f64,
    pub s_lc_dce_measured: f64,
}

pub fn table6(iters: usize) -> Vec<Table6Row> {
    [ModelKind::YoloV5, ModelKind::Bert, ModelKind::NasNet]
        .into_iter()
        .map(|k| {
            let plain =
                compile(build(k, &model_config()), &PipelineOptions::default()).expect("pipeline");
            let pruned = compile(
                build(k, &model_config()),
                &PipelineOptions {
                    prune: true,
                    ..Default::default()
                },
            )
            .expect("pipeline");
            let baseline = simulate_sequential(&plain.graph, &StaticCost, 1);
            // measured: both parallels against the unpruned sequential time
            let inputs = synth_inputs(&plain.graph, 42);
            let ctx = ExecCtx::sequential();
            let seq_ms = time_ms(iters, || {
                run_sequential(&plain.graph, &inputs, &ctx).expect("seq");
            });
            let par_ms = time_ms(iters, || {
                run_parallel(&plain.graph, &plain.clustering, &inputs, &ctx).expect("par");
            });
            let par_pruned_ms = time_ms(iters, || {
                run_parallel(&pruned.graph, &pruned.clustering, &inputs, &ctx).expect("par");
            });
            Table6Row {
                model: k.name().into(),
                s_lc: simulated_speedup_vs(&plain, baseline),
                s_lc_dce: simulated_speedup_vs(&pruned, baseline),
                s_lc_measured: seq_ms / par_ms,
                s_lc_dce_measured: seq_ms / par_pruned_ms,
            }
        })
        .collect()
}

// --------------------------------------------------------------------------
// Table VII — overall: LC, +DCE, +cloning, best
// --------------------------------------------------------------------------

pub struct Table7Row {
    pub model: String,
    pub s_lc: f64,
    pub s_lc_dce: Option<f64>,
    pub s_lc_clone: Option<f64>,
    pub s_overall: f64,
}

pub fn table7() -> Vec<Table7Row> {
    let prunable = [ModelKind::YoloV5, ModelKind::Bert, ModelKind::NasNet];
    let clonable = [
        ModelKind::Squeezenet,
        ModelKind::Googlenet,
        ModelKind::InceptionV3,
        ModelKind::InceptionV4,
        ModelKind::Bert,
        ModelKind::Retinanet,
    ];
    ModelKind::all()
        .into_iter()
        .map(|k| {
            let plain =
                compile(build(k, &model_config()), &PipelineOptions::default()).expect("pipeline");
            let baseline = simulate_sequential(&plain.graph, &StaticCost, 1);
            let s_lc = simulated_speedup_vs(&plain, baseline);
            let s_dce = prunable.contains(&k).then(|| {
                let c = compile(
                    build(k, &model_config()),
                    &PipelineOptions {
                        prune: true,
                        ..Default::default()
                    },
                )
                .expect("pipeline");
                simulated_speedup_vs(&c, baseline)
            });
            let s_clone = clonable.contains(&k).then(|| {
                let c = compile(
                    build(k, &model_config()),
                    &PipelineOptions {
                        cloning: Some(clone_config_for(k)),
                        ..Default::default()
                    },
                )
                .expect("pipeline");
                simulated_speedup_vs(&c, baseline)
            });
            let s_overall = [Some(s_lc), s_dce, s_clone]
                .into_iter()
                .flatten()
                .fold(f64::MIN, f64::max);
            Table7Row {
                model: k.name().into(),
                s_lc,
                s_lc_dce: s_dce,
                s_lc_clone: s_clone,
                s_overall,
            }
        })
        .collect()
}

// --------------------------------------------------------------------------
// Table VIII — comparison with IOS
// --------------------------------------------------------------------------

pub struct Table8Row {
    pub model: String,
    pub ours_speedup: f64,
    pub ours_ct: Duration,
    pub ios_speedup: f64,
    pub ios_ct: Duration,
    pub ios_dp_states: usize,
}

pub fn table8() -> Vec<Table8Row> {
    [
        ModelKind::Squeezenet,
        ModelKind::InceptionV3,
        ModelKind::NasNet,
    ]
    .into_iter()
    .map(|k| {
        let g = build(k, &model_config());
        let baseline = simulate_sequential(&g, &StaticCost, 1);
        let t = Instant::now();
        let c = compile(g.clone(), &PipelineOptions::all_optimizations()).expect("pipeline");
        let ours_ct = t.elapsed();
        let ios_cfg = IosConfig::default();
        let (sched, stats) = ios_schedule(&g, &StaticCost, &ios_cfg);
        let ios_mk = ios_makespan(&g, &sched, &StaticCost, &ios_cfg);
        Table8Row {
            model: k.name().into(),
            ours_speedup: simulated_speedup_vs(&c, baseline),
            ours_ct,
            ios_speedup: baseline as f64 / ios_mk as f64,
            ios_ct: stats.compile_time,
            ios_dp_states: stats.dp_states,
        }
    })
    .collect()
}

// --------------------------------------------------------------------------
// Fig. 12 — cloning uplift
// --------------------------------------------------------------------------

pub struct Fig12Row {
    pub model: String,
    pub plain_speedup: f64,
    pub cloned_speedup: f64,
    pub uplift_pct: f64,
}

pub fn fig12() -> Vec<Fig12Row> {
    // the paper clones the smaller graphs and skips NASNet
    [
        ModelKind::Squeezenet,
        ModelKind::Googlenet,
        ModelKind::InceptionV3,
        ModelKind::InceptionV4,
        ModelKind::Bert,
        ModelKind::Retinanet,
    ]
    .into_iter()
    .map(|k| {
        let plain =
            compile(build(k, &model_config()), &PipelineOptions::default()).expect("pipeline");
        let baseline = simulate_sequential(&plain.graph, &StaticCost, 1);
        let cloned = compile(
            build(k, &model_config()),
            &PipelineOptions {
                cloning: Some(clone_config_for(k)),
                ..Default::default()
            },
        )
        .expect("pipeline");
        let p = simulated_speedup_vs(&plain, baseline);
        let c = simulated_speedup_vs(&cloned, baseline);
        Fig12Row {
            model: k.name().into(),
            plain_speedup: p,
            cloned_speedup: c,
            uplift_pct: 100.0 * (c / p - 1.0),
        }
    })
    .collect()
}

// --------------------------------------------------------------------------
// Figs. 13 & 14 — hyperclustering
// --------------------------------------------------------------------------

pub struct HyperRow {
    pub model: String,
    pub batch: usize,
    pub switched: bool,
    pub intra_op: usize,
    pub measured_speedup: f64,
    pub sim_speedup: f64,
}

/// One hyperclustering measurement: per-batch speedup vs running the batch
/// through the sequential code sample by sample.
pub fn hyper_row(
    kind: ModelKind,
    batch: usize,
    switched: bool,
    intra_op: usize,
    iters: usize,
) -> HyperRow {
    let c = compile(build(kind, &model_config()), &PipelineOptions::default()).expect("pipeline");
    let hc = if switched {
        switched_hypercluster(&c.clustering, batch)
    } else {
        hypercluster(&c.clustering, batch)
    };
    let inputs: Vec<Env> = (0..batch)
        .map(|b| synth_inputs(&c.graph, b as u64))
        .collect();
    let ctx = ExecCtx::with_intra_op(intra_op);
    let seq_ms = time_ms(iters, || {
        for inp in &inputs {
            run_sequential(&c.graph, inp, &ctx).expect("seq");
        }
    });
    let par_ms = time_ms(iters, || {
        run_hyper(&c.graph, &hc, &inputs, &ctx).expect("hyper");
    });
    let sim = simulate_hyper(&c.graph, &hc, &StaticCost, &sim_config()).expect("sim");
    let seq_sim = simulate_sequential(&c.graph, &StaticCost, batch);
    HyperRow {
        model: kind.name().into(),
        batch,
        switched,
        intra_op,
        measured_speedup: seq_ms / par_ms,
        sim_speedup: seq_sim as f64 / sim.makespan as f64,
    }
}

/// Fig. 13: plain hyperclustering across batch sizes, with/without intra-op.
pub fn fig13(iters: usize) -> Vec<HyperRow> {
    let mut rows = Vec::new();
    for kind in [
        ModelKind::Squeezenet,
        ModelKind::Googlenet,
        ModelKind::InceptionV3,
    ] {
        for batch in [2usize, 4, 8, 12] {
            for intra in [1usize, 2] {
                rows.push(hyper_row(kind, batch, false, intra, iters));
            }
        }
    }
    rows
}

/// Fig. 14: switched hyperclustering on SqueezeNet, batches 2/3/4.
pub fn fig14(iters: usize) -> Vec<HyperRow> {
    let mut rows = Vec::new();
    for batch in [2usize, 3, 4] {
        for intra in [1usize, 2] {
            rows.push(hyper_row(ModelKind::Squeezenet, batch, false, intra, iters));
            rows.push(hyper_row(ModelKind::Squeezenet, batch, true, intra, iters));
        }
    }
    rows
}

// --------------------------------------------------------------------------
// Memory footprint (extension: the edge-device angle of the paper's intro)
// --------------------------------------------------------------------------

pub struct MemoryRow {
    pub model: String,
    pub static_kib: f64,
    pub seq_peak_kib: f64,
    pub par_peak_kib: f64,
    pub overhead_pct: f64,
}

/// Peak activation memory: sequential vs LC-parallel schedule, per model.
pub fn memory_table() -> Vec<MemoryRow> {
    ModelKind::all()
        .into_iter()
        .map(|k| {
            let c =
                compile(build(k, &model_config()), &PipelineOptions::default()).expect("pipeline");
            let seq = sequential_peak_memory(&c.graph);
            let par = clustering_peak_memory(&c.graph, &c.clustering, &StaticCost, &sim_config())
                .expect("memory sim");
            MemoryRow {
                model: k.name().into(),
                static_kib: seq.static_bytes as f64 / 1024.0,
                seq_peak_kib: seq.peak_activation_bytes as f64 / 1024.0,
                par_peak_kib: par.peak_activation_bytes as f64 / 1024.0,
                overhead_pct: 100.0
                    * (par.peak_activation_bytes as f64 / seq.peak_activation_bytes.max(1) as f64
                        - 1.0),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Closed-loop serving load generator
// ---------------------------------------------------------------------------

/// Latency/throughput report from one [`closed_loop_load`] run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests answered with outputs.
    pub completed: u64,
    /// Requests answered with an error (shed, failed, …).
    pub failed: u64,
    /// Responses that did not match the precomputed sequential baseline.
    pub mismatches: u64,
    pub elapsed_s: f64,
    pub throughput_rps: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    /// Mean achieved batch size, from the server's own counters.
    pub mean_batch: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Closed-loop load: `concurrency` client threads each issue `per_client`
/// inferences back-to-back (next request only after the previous answer —
/// the classic closed loop, so offered load tracks service rate instead of
/// overrunning the queue). Thread `t`'s request `i` uses input seed
/// `t * 100_000 + i`; when `expected` holds a baseline for that seed the
/// response is compared bit-for-bit and divergence is counted, never
/// ignored.
pub fn closed_loop_load(
    server: &std::sync::Arc<ramiel_serve::Server>,
    model: &str,
    graph: &ramiel_ir::Graph,
    expected: &std::sync::Arc<std::collections::HashMap<u64, Env>>,
    concurrency: usize,
    per_client: usize,
) -> LoadReport {
    use std::sync::Arc;
    let graph = Arc::new(graph.clone());
    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..concurrency as u64 {
        let server = Arc::clone(server);
        let graph = Arc::clone(&graph);
        let expected = Arc::clone(expected);
        let model = model.to_string();
        handles.push(std::thread::spawn(move || {
            let mut latencies_ms = Vec::with_capacity(per_client);
            let (mut completed, mut failed, mut mismatches) = (0u64, 0u64, 0u64);
            for i in 0..per_client as u64 {
                let seed = t * 100_000 + i;
                let inputs = synth_inputs(&graph, seed);
                let start = Instant::now();
                match server.infer(&model, inputs) {
                    Ok(out) => {
                        latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
                        completed += 1;
                        if let Some(want) = expected.get(&seed) {
                            if *want != out {
                                mismatches += 1;
                            }
                        }
                    }
                    Err(_) => failed += 1,
                }
            }
            (latencies_ms, completed, failed, mismatches)
        }));
    }
    let mut latencies_ms = Vec::new();
    let (mut completed, mut failed, mut mismatches) = (0u64, 0u64, 0u64);
    for h in handles {
        let (lat, c, f, m) = h.join().expect("load client");
        latencies_ms.extend(lat);
        completed += c;
        failed += f;
        mismatches += m;
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    LoadReport {
        completed,
        failed,
        mismatches,
        elapsed_s,
        throughput_rps: completed as f64 / elapsed_s.max(1e-9),
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        mean_batch: server.stats().mean_batch,
    }
}

/// Closed-loop load against **batch-1 per-request execution**: the same
/// client threads and seeds as [`closed_loop_load`], but each request runs
/// the parallel executor directly — fresh worker threads per call, exactly
/// what `ramiel run` (and a naive server looping over it) does per
/// inference. This is the baseline the serving layer's standing pool and
/// dynamic batching are measured against.
pub fn per_request_load(
    graph: &ramiel_ir::Graph,
    clustering: &ramiel_cluster::Clustering,
    expected: &std::sync::Arc<std::collections::HashMap<u64, Env>>,
    concurrency: usize,
    per_client: usize,
) -> LoadReport {
    use std::sync::Arc;
    let graph = Arc::new(graph.clone());
    let clustering = Arc::new(clustering.clone());
    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..concurrency as u64 {
        let graph = Arc::clone(&graph);
        let clustering = Arc::clone(&clustering);
        let expected = Arc::clone(expected);
        handles.push(std::thread::spawn(move || {
            let ctx = ExecCtx::sequential();
            let mut latencies_ms = Vec::with_capacity(per_client);
            let (mut completed, mut failed, mut mismatches) = (0u64, 0u64, 0u64);
            for i in 0..per_client as u64 {
                let seed = t * 100_000 + i;
                let inputs = synth_inputs(&graph, seed);
                let start = Instant::now();
                match run_parallel(&graph, &clustering, &inputs, &ctx) {
                    Ok(out) => {
                        latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
                        completed += 1;
                        if let Some(want) = expected.get(&seed) {
                            if *want != out {
                                mismatches += 1;
                            }
                        }
                    }
                    Err(_) => failed += 1,
                }
            }
            (latencies_ms, completed, failed, mismatches)
        }));
    }
    let mut latencies_ms = Vec::new();
    let (mut completed, mut failed, mut mismatches) = (0u64, 0u64, 0u64);
    for h in handles {
        let (lat, c, f, m) = h.join().expect("baseline client");
        latencies_ms.extend(lat);
        completed += c;
        failed += f;
        mismatches += m;
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    LoadReport {
        completed,
        failed,
        mismatches,
        elapsed_s,
        throughput_rps: completed as f64 / elapsed_s.max(1e-9),
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        mean_batch: 1.0,
    }
}

/// Sequential-executor baseline outputs for every seed [`closed_loop_load`]
/// will hit — the bit-identity reference.
pub fn baseline_outputs(
    graph: &ramiel_ir::Graph,
    concurrency: usize,
    per_client: usize,
) -> std::collections::HashMap<u64, Env> {
    let ctx = ExecCtx::sequential();
    let mut map = std::collections::HashMap::new();
    for t in 0..concurrency as u64 {
        for i in 0..per_client as u64 {
            let seed = t * 100_000 + i;
            let out = run_sequential(graph, &synth_inputs(graph, seed), &ctx).expect("baseline");
            map.insert(seed, out);
        }
    }
    map
}
