//! Dead-code elimination: remove nodes whose outputs cannot reach any graph
//! output.

use crate::PassReport;
use ramiel_ir::{Graph, Result};
use std::collections::HashSet;

/// Drop unreachable nodes (backwards reachability from the graph outputs).
/// Unreferenced initializers and `value_info` entries are pruned too.
pub fn dead_code_elimination(graph: &mut Graph) -> Result<PassReport> {
    let adj = graph.adjacency();
    let mut live: HashSet<usize> = HashSet::new();
    let mut stack: Vec<usize> = graph
        .outputs
        .iter()
        .filter_map(|t| adj.producer_of.get(t).copied())
        .collect();
    while let Some(id) = stack.pop() {
        if live.insert(id) {
            stack.extend(adj.preds[id].iter().copied());
        }
    }
    let before = graph.num_nodes();
    if live.len() == before {
        return Ok(PassReport::default());
    }
    graph.retain_nodes(|n| live.contains(&n.id));
    ramiel_ir::shape::infer_shapes(graph)?;
    Ok(PassReport {
        nodes_removed: before - graph.num_nodes(),
        nodes_added: 0,
        changed: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_ir::{DType, GraphBuilder, OpKind};

    #[test]
    fn removes_disconnected_branch() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![4]);
        let live = b.op("live", OpKind::Relu, vec![x.clone()]);
        let dead1 = b.op("dead1", OpKind::Sigmoid, vec![x]);
        let _dead2 = b.op("dead2", OpKind::Tanh, vec![dead1]);
        b.output(&live);
        let mut g = b.finish().unwrap();
        let rep = dead_code_elimination(&mut g).unwrap();
        assert!(rep.changed);
        assert_eq!(rep.nodes_removed, 2);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.nodes[0].name, "live_0");
        ramiel_ir::validate::validate(&g).unwrap();
    }

    #[test]
    fn keeps_everything_reachable() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![4]);
        let a = b.op("a", OpKind::Relu, vec![x]);
        let c = b.op("b", OpKind::Sigmoid, vec![a]);
        b.output(&c);
        let mut g = b.finish().unwrap();
        let rep = dead_code_elimination(&mut g).unwrap();
        assert!(!rep.changed);
        assert_eq!(g.num_nodes(), 2);
    }

    #[test]
    fn prunes_dead_initializers() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![4]);
        let w = b.weight("w", vec![4], ramiel_ir::builder::Init::Const(1.0));
        let dead = b.op("dead", OpKind::Mul, vec![x.clone(), w]);
        let _ = dead;
        let y = b.op("live", OpKind::Relu, vec![x]);
        b.output(&y);
        let mut g = b.finish().unwrap();
        assert_eq!(g.initializers.len(), 1);
        dead_code_elimination(&mut g).unwrap();
        assert!(g.initializers.is_empty());
    }

    #[test]
    fn multi_output_node_with_one_live_output_survives() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![1, 4]);
        let parts = b.op_multi(
            "split",
            OpKind::Split {
                axis: 1,
                parts: vec![2, 2],
            },
            vec![x],
        );
        let y = b.op("relu", OpKind::Relu, vec![parts[0].clone()]);
        b.output(&y);
        let mut g = b.finish().unwrap();
        let rep = dead_code_elimination(&mut g).unwrap();
        assert!(!rep.changed, "split feeds a live output; must stay");
        assert_eq!(g.num_nodes(), 2);
    }
}
