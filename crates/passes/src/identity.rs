//! Identity elimination: `Identity` and inference-mode `Dropout` nodes are
//! pass-throughs; rewire their consumers to the original tensor and drop
//! them.

use crate::PassReport;
use ramiel_ir::{Graph, OpKind, Result};
use std::collections::HashMap;

/// Remove identity-like nodes by tensor rewiring. Nodes whose output is a
/// graph output are kept only if their input is another graph output
/// (renaming would change the observable interface; instead the output list
/// is rewritten to the producer tensor).
pub fn eliminate_identities(graph: &mut Graph) -> Result<PassReport> {
    // output name → replacement name, following chains.
    let mut replace: HashMap<String, String> = HashMap::new();
    let mut victims = Vec::new();
    for node in &graph.nodes {
        if matches!(node.op, OpKind::Identity | OpKind::Dropout) {
            let src = node.inputs[0].clone();
            let root = replace.get(&src).cloned().unwrap_or(src);
            replace.insert(node.outputs[0].clone(), root);
            victims.push(node.id);
        }
    }
    if victims.is_empty() {
        return Ok(PassReport::default());
    }
    let resolve = |name: &String| replace.get(name).cloned();
    for node in &mut graph.nodes {
        for inp in &mut node.inputs {
            if let Some(r) = resolve(inp) {
                *inp = r;
            }
        }
    }
    for out in &mut graph.outputs {
        if let Some(r) = resolve(out) {
            *out = r;
        }
    }
    let removed = victims.len();
    let victim_set: std::collections::HashSet<usize> = victims.into_iter().collect();
    graph.retain_nodes(|n| !victim_set.contains(&n.id));
    ramiel_ir::shape::infer_shapes(graph)?;
    Ok(PassReport {
        nodes_removed: removed,
        nodes_added: 0,
        changed: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_ir::{DType, GraphBuilder};
    use ramiel_runtime::{run_sequential, synth_inputs};
    use ramiel_tensor::ExecCtx;

    #[test]
    fn removes_identity_chain_and_rewires() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![4]);
        let a = b.op("relu", OpKind::Relu, vec![x]);
        let i1 = b.op("id1", OpKind::Identity, vec![a]);
        let i2 = b.op("drop", OpKind::Dropout, vec![i1]);
        let y = b.op("sig", OpKind::Sigmoid, vec![i2]);
        b.output(&y);
        let g0 = b.finish().unwrap();
        let mut g1 = g0.clone();
        let rep = eliminate_identities(&mut g1).unwrap();
        assert_eq!(rep.nodes_removed, 2);
        assert_eq!(g1.num_nodes(), 2);
        ramiel_ir::validate::validate(&g1).unwrap();

        let inputs = synth_inputs(&g0, 1);
        let ctx = ExecCtx::sequential();
        let o0 = run_sequential(&g0, &inputs, &ctx).unwrap();
        let o1 = run_sequential(&g1, &inputs, &ctx).unwrap();
        // same value under (possibly) same name — identity output was not a
        // graph output here, so names unchanged
        assert_eq!(o0.values().next().unwrap(), o1.values().next().unwrap());
    }

    #[test]
    fn identity_feeding_graph_output_rewrites_output_name() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![4]);
        let a = b.op("relu", OpKind::Relu, vec![x]);
        let i = b.op("id", OpKind::Identity, vec![a.clone()]);
        b.output(&i);
        let mut g = b.finish().unwrap();
        eliminate_identities(&mut g).unwrap();
        assert_eq!(g.outputs, vec![a]);
        ramiel_ir::validate::validate(&g).unwrap();
    }

    #[test]
    fn noop_without_identities() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![4]);
        let y = b.op("relu", OpKind::Relu, vec![x]);
        b.output(&y);
        let mut g = b.finish().unwrap();
        assert!(!eliminate_identities(&mut g).unwrap().changed);
    }

    use ramiel_ir::OpKind;
}
