//! Batch-norm folding: `BatchNorm(Conv(x, W, b))` → `Conv(x, W′, b′)`.
//!
//! The classic inference-time graph reduction (the paper's conclusion calls
//! for "more powerful optimizations for graph reductions"; this is the
//! first one every production stack applies). With
//! `a_c = γ_c / √(σ²_c + ε)` per output channel `c`:
//!
//! ```text
//! W′[c, ..] = a_c · W[c, ..]
//! b′[c]     = a_c · (b[c] − μ_c) + β_c
//! ```
//!
//! Folding fires only when the convolution's result feeds *only* the
//! batch-norm (otherwise other consumers would observe changed values) and
//! all five BN parameters plus the conv weights are initializers.

use crate::PassReport;
use ramiel_ir::{Graph, OpKind, Result, TensorData};
use std::collections::HashMap;

/// Fold eligible Conv→BatchNorm pairs. Returns how many pairs folded.
pub fn fold_batch_norms(graph: &mut Graph) -> Result<PassReport> {
    let adj = graph.adjacency();
    let mut victims: Vec<usize> = Vec::new(); // BN node ids
    let mut rewires: HashMap<String, String> = HashMap::new(); // bn out → conv out
    let mut weight_updates: Vec<(String, TensorData)> = Vec::new();

    for bn in &graph.nodes {
        let OpKind::BatchNorm { epsilon } = bn.op else {
            continue;
        };
        // producer of the BN input must be a conv feeding only this BN
        let Some(&conv_id) = adj.producer_of.get(&bn.inputs[0]) else {
            continue;
        };
        let conv = &graph.nodes[conv_id];
        if !matches!(conv.op, OpKind::Conv { .. }) {
            continue;
        }
        if adj.consumers_of.get(&bn.inputs[0]).map(Vec::len) != Some(1)
            || graph.outputs.contains(&bn.inputs[0])
        {
            continue;
        }
        // all parameters must be constants
        let get = |name: &String| graph.initializers.get(name);
        let (Some(w), scale, bias, mean, var) = (
            conv.inputs.get(1).and_then(get),
            bn.inputs.get(1).and_then(get),
            bn.inputs.get(2).and_then(get),
            bn.inputs.get(3).and_then(get),
            bn.inputs.get(4).and_then(get),
        ) else {
            continue;
        };
        let (Some(scale), Some(bias), Some(mean), Some(var)) = (scale, bias, mean, var) else {
            continue;
        };
        let conv_bias = conv.inputs.get(2).and_then(get);
        let (Some(wf), Some(sf), Some(bf), Some(mf), Some(vf)) = (
            w.as_f32(),
            scale.as_f32(),
            bias.as_f32(),
            mean.as_f32(),
            var.as_f32(),
        ) else {
            continue;
        };
        let out_ch = w.shape[0];
        if sf.len() != out_ch {
            continue;
        }
        let per_ch: usize = w.shape[1..].iter().product();

        let a: Vec<f32> = (0..out_ch)
            .map(|c| sf[c] / (vf[c] + epsilon).sqrt())
            .collect();
        let mut new_w = wf.to_vec();
        for c in 0..out_ch {
            for v in &mut new_w[c * per_ch..(c + 1) * per_ch] {
                *v *= a[c];
            }
        }
        let old_b: Vec<f32> = match conv_bias.and_then(|b| b.as_f32()) {
            Some(b) => b.to_vec(),
            None => vec![0.0; out_ch],
        };
        let new_b: Vec<f32> = (0..out_ch)
            .map(|c| a[c] * (old_b[c] - mf[c]) + bf[c])
            .collect();

        weight_updates.push((
            conv.inputs[1].clone(),
            TensorData::f32(w.shape.clone(), new_w),
        ));
        // conv may have been bias-less; synthesize a bias initializer name
        let bias_name = conv
            .inputs
            .get(2)
            .cloned()
            .unwrap_or_else(|| format!("{}__folded_bias", conv.name));
        weight_updates.push((bias_name.clone(), TensorData::f32(vec![out_ch], new_b)));
        if conv.inputs.len() < 3 {
            // record the extra input via the rewire map sentinel handled below
            rewires.insert(format!("__addbias__{}", conv_id), bias_name.clone());
        }
        rewires.insert(bn.outputs[0].clone(), conv.outputs[0].clone());
        victims.push(bn.id);
    }

    if victims.is_empty() {
        return Ok(PassReport::default());
    }

    for (name, td) in weight_updates {
        graph.initializers.insert(name, td);
    }
    // attach synthesized biases
    let add_bias: Vec<(usize, String)> = rewires
        .iter()
        .filter_map(|(k, v)| {
            k.strip_prefix("__addbias__")
                .and_then(|id| id.parse::<usize>().ok())
                .map(|id| (id, v.clone()))
        })
        .collect();
    for (conv_id, bias_name) in add_bias {
        graph.nodes[conv_id].inputs.push(bias_name);
    }
    rewires.retain(|k, _| !k.starts_with("__addbias__"));
    // rewire BN consumers (and graph outputs) to the conv output
    for node in &mut graph.nodes {
        for inp in &mut node.inputs {
            if let Some(r) = rewires.get(inp) {
                *inp = r.clone();
            }
        }
    }
    for out in &mut graph.outputs {
        if let Some(r) = rewires.get(out) {
            *out = r.clone();
        }
    }
    let removed = victims.len();
    let victim_set: std::collections::HashSet<usize> = victims.into_iter().collect();
    graph.retain_nodes(|n| !victim_set.contains(&n.id));
    ramiel_ir::shape::infer_shapes(graph)?;
    Ok(PassReport {
        nodes_removed: removed,
        nodes_added: 0,
        changed: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_ir::{DType, GraphBuilder};
    use ramiel_runtime::{run_sequential, synth_inputs};
    use ramiel_tensor::{ExecCtx, Value};

    fn conv_bn_graph(with_bias: bool) -> Graph {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![1, 3, 8, 8]);
        let w = b.weight(
            "w",
            vec![4, 3, 3, 3],
            ramiel_ir::builder::Init::Uniform(0.1),
        );
        let mut inputs = vec![x, w];
        if with_bias {
            inputs.push(b.weight("b", vec![4], ramiel_ir::builder::Init::Uniform(0.1)));
        }
        let conv = b.op(
            "conv",
            OpKind::Conv {
                kernel: (3, 3),
                stride: (1, 1),
                pads: (1, 1),
                groups: 1,
            },
            inputs,
        );
        let bn = b.batch_norm(&conv, 4);
        let out = b.op("relu", OpKind::Relu, vec![bn]);
        b.output(&out);
        b.finish().unwrap()
    }

    fn outputs_match(g0: &Graph, g1: &Graph) {
        let inputs = synth_inputs(g0, 5);
        let ctx = ExecCtx::sequential();
        let a = run_sequential(g0, &inputs, &ctx).unwrap();
        let b = run_sequential(g1, &inputs, &ctx).unwrap();
        for (k, va) in &a {
            let (Value::F32(x), Value::F32(y)) = (va, &b[k]) else {
                panic!("dtype change")
            };
            for (p, q) in x.data().iter().zip(y.data()) {
                assert!((p - q).abs() < 1e-4, "{k}: {p} vs {q}");
            }
        }
    }

    #[test]
    fn folds_conv_bn_with_bias() {
        let g0 = conv_bn_graph(true);
        let mut g1 = g0.clone();
        let rep = fold_batch_norms(&mut g1).unwrap();
        assert_eq!(rep.nodes_removed, 1);
        assert!(!g1
            .nodes
            .iter()
            .any(|n| matches!(n.op, OpKind::BatchNorm { .. })));
        ramiel_ir::validate::validate(&g1).unwrap();
        outputs_match(&g0, &g1);
    }

    #[test]
    fn folds_biasless_conv_by_synthesizing_bias() {
        let g0 = conv_bn_graph(false);
        let mut g1 = g0.clone();
        fold_batch_norms(&mut g1).unwrap();
        let conv = g1
            .nodes
            .iter()
            .find(|n| matches!(n.op, OpKind::Conv { .. }))
            .unwrap();
        assert_eq!(conv.inputs.len(), 3, "bias synthesized");
        ramiel_ir::validate::validate(&g1).unwrap();
        outputs_match(&g0, &g1);
    }

    #[test]
    fn shared_conv_output_blocks_folding() {
        // conv output also consumed directly → folding would corrupt it
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![1, 2, 4, 4]);
        let conv = b.conv(&x, 2, 2, (1, 1), (1, 1), (0, 0), 1);
        let bn = b.batch_norm(&conv, 2);
        let direct = b.op("direct", OpKind::Relu, vec![conv]);
        let j = b.op("j", OpKind::Add, vec![bn, direct]);
        b.output(&j);
        let mut g = b.finish().unwrap();
        let rep = fold_batch_norms(&mut g).unwrap();
        assert!(!rep.changed);
    }

    #[test]
    fn bn_without_conv_producer_untouched() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![1, 2, 4, 4]);
        let r = b.op("relu", OpKind::Relu, vec![x]);
        let bn = b.batch_norm(&r, 2);
        b.output(&bn);
        let mut g = b.finish().unwrap();
        assert!(!fold_batch_norms(&mut g).unwrap().changed);
    }

    #[test]
    fn folds_whole_model_and_preserves_semantics() {
        use ramiel_models::{build, ModelConfig, ModelKind};
        let g0 = build(ModelKind::Retinanet, &ModelConfig::tiny());
        let mut g1 = g0.clone();
        let rep = fold_batch_norms(&mut g1).unwrap();
        assert!(rep.changed);
        assert!(rep.nodes_removed > 10, "ResNet is full of Conv→BN pairs");
        outputs_match(&g0, &g1);
    }
}
