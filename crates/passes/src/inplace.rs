//! In-place buffer-reuse marking (fed by `ramiel-analyze`'s lifetime pass).
//!
//! A node may overwrite one of its input buffers with its output when three
//! static facts hold: the op is an elementwise kernel whose output has the
//! same extent as that operand, the operand is produced inside the graph
//! (not a model input or initializer), and this node is its *only* consumer
//! — so the buffer is dead the moment the op has read it. The executors
//! treat a mark as a hint, not a proof: at run time the reuse only happens
//! if `Arc::get_mut` shows the buffer is uniquely owned, which is what makes
//! the rewrite safe against dynamic aliasing (reshape views, channel
//! messages in flight, caller-held handles) that no static analysis of the
//! graph can see.

use ramiel_ir::{Graph, NodeId, OpKind};
use std::collections::{HashMap, HashSet};

/// Which input slots of an op the kernel layer can overwrite in place.
/// Mirrors the fast paths in `ramiel_tensor::eval_op_inplace`.
pub fn inplace_slots(op: &OpKind) -> &'static [usize] {
    match op {
        OpKind::Relu
        | OpKind::LeakyRelu { .. }
        | OpKind::Sigmoid
        | OpKind::Tanh
        | OpKind::Gelu
        | OpKind::Erf
        | OpKind::Sqrt
        | OpKind::Exp
        | OpKind::Neg
        | OpKind::Clip { .. } => &[0],
        OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div | OpKind::Pow => &[0, 1],
        _ => &[],
    }
}

/// The result of the marking pass: node id → input slot whose buffer the
/// node may consume in place.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InPlaceMarks {
    slots: HashMap<NodeId, usize>,
}

impl InPlaceMarks {
    /// No marks — what executors use when reuse is disabled.
    pub fn empty() -> Self {
        InPlaceMarks::default()
    }

    /// The marked input slot for `node`, if any.
    pub fn slot(&self, node: NodeId) -> Option<usize> {
        self.slots.get(&node).copied()
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// All `(node, slot)` marks, for reporting.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, usize)> + '_ {
        self.slots.iter().map(|(&n, &s)| (n, s))
    }
}

/// Mark every op whose input buffer is provably dead after the op reads it
/// and whose kernel can write the result over that operand.
pub fn inplace_marks(graph: &Graph) -> InPlaceMarks {
    let adj = graph.adjacency();
    let outputs: HashSet<&str> = graph.outputs.iter().map(String::as_str).collect();
    let mut slots = HashMap::new();
    for node in &graph.nodes {
        for &s in inplace_slots(&node.op) {
            let Some(name) = node.inputs.get(s) else {
                continue;
            };
            // Model inputs and initializers are owned by the caller / the
            // shared weight table; overwriting them is never sound.
            if !adj.producer_of.contains_key(name) {
                continue;
            }
            // Sole consumer, consumed exactly once (Add(x, x) lists x twice
            // in consumers_of, so duplicate operands are excluded here).
            match adj.consumers_of.get(name) {
                Some(cons) if cons.len() == 1 && cons[0] == node.id => {}
                _ => continue,
            }
            // Graph outputs stay live past their last consumer.
            if outputs.contains(name.as_str()) {
                continue;
            }
            // When shape metadata is present, only mark operands whose
            // extent matches the output (broadcasts allocate anyway, so a
            // mark on the broadcast operand would be dead weight).
            if let (Some(a), Some(b)) = (
                graph.tensor_info(name),
                node.outputs.first().and_then(|o| graph.tensor_info(o)),
            ) {
                if a.shape != b.shape || a.dtype != b.dtype {
                    continue;
                }
            }
            slots.insert(node.id, s);
            break;
        }
    }
    InPlaceMarks { slots }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_ir::{DType, GraphBuilder};

    /// x → relu a → relu b → add(b, b2-like fanout) …
    fn chain() -> Graph {
        let mut b = GraphBuilder::new("chain");
        let x = b.input("x", DType::F32, vec![4]);
        let a = b.op("a", OpKind::Relu, vec![x]);
        let c = b.op("c", OpKind::Sigmoid, vec![a]);
        b.output(&c);
        b.finish().unwrap()
    }

    #[test]
    fn chain_marks_interior_edges_only() {
        let g = chain();
        let m = inplace_marks(&g);
        // node 0 (relu) reads the graph input: not markable.
        assert_eq!(m.slot(0), None);
        // node 1 (sigmoid) reads relu's dead output: markable, slot 0.
        assert_eq!(m.slot(1), Some(0));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn fanout_blocks_marking() {
        let mut b = GraphBuilder::new("fanout");
        let x = b.input("x", DType::F32, vec![4]);
        let a = b.op("a", OpKind::Relu, vec![x]);
        let p = b.op("p", OpKind::Sigmoid, vec![a.clone()]);
        let q = b.op("q", OpKind::Tanh, vec![a]);
        let j = b.op("j", OpKind::Add, vec![p, q]);
        b.output(&j);
        let g = b.finish().unwrap();
        let m = inplace_marks(&g);
        // `a` has two consumers → neither may consume it in place.
        assert_eq!(m.slot(1), None);
        assert_eq!(m.slot(2), None);
        // `j` may take either operand; first eligible slot wins.
        assert_eq!(m.slot(3), Some(0));
    }

    #[test]
    fn duplicate_operand_not_marked() {
        let mut b = GraphBuilder::new("dup");
        let x = b.input("x", DType::F32, vec![4]);
        let a = b.op("a", OpKind::Relu, vec![x]);
        let d = b.op("d", OpKind::Add, vec![a.clone(), a]);
        b.output(&d);
        let g = b.finish().unwrap();
        assert_eq!(inplace_marks(&g).slot(1), None);
    }

    #[test]
    fn graph_output_never_marked() {
        let mut b = GraphBuilder::new("out");
        let x = b.input("x", DType::F32, vec![4]);
        let a = b.op("a", OpKind::Relu, vec![x]);
        let c = b.op("c", OpKind::Sigmoid, vec![a.clone()]);
        b.output(&a); // relu's output is also a model output
        b.output(&c);
        let g = b.finish().unwrap();
        assert_eq!(inplace_marks(&g).slot(1), None);
    }

    #[test]
    fn non_elementwise_ops_not_marked() {
        let mut b = GraphBuilder::new("mv");
        let x = b.input("x", DType::F32, vec![2, 2]);
        let a = b.op("a", OpKind::Relu, vec![x]);
        let t = b.op("t", OpKind::Transpose { perm: vec![1, 0] }, vec![a]);
        b.output(&t);
        let g = b.finish().unwrap();
        assert_eq!(inplace_marks(&g).slot(1), None);
    }
}
