//! Task cloning (Section III-D, Fig. 7).
//!
//! A node whose output feeds several consumers serializes those consumers
//! behind one producer and — once the graph is clustered — turns into
//! cross-cluster messages. Cloning replicates *cheap* producers so each
//! consumer owns a private copy, trading redundant compute for independence,
//! "usually employed in distributed message-passing scenarios to overcome
//! communication bottlenecks".
//!
//! Matching the paper's restraint ("applied with care and in a limited
//! setting … mostly at the top half of the dataflow graphs"), cloning is
//! bounded three ways: per-node cost ceiling, total graph-growth budget, and
//! an ASAP-level cutoff keeping it in the top fraction of the graph.

use crate::PassReport;
use ramiel_cluster::cost::CostModel;
use ramiel_ir::topo::levels;
use ramiel_ir::{Graph, Result};

/// Limits for the cloning pass.
#[derive(Debug, Clone, Copy)]
pub struct CloneConfig {
    /// Only nodes with static cost ≤ this are cloned.
    pub max_node_cost: u64,
    /// Stop when the graph has grown by this factor.
    pub max_growth: f64,
    /// Only clone nodes in the top `top_fraction` of ASAP levels.
    pub top_fraction: f64,
    /// Sweeps to run: later sweeps clone the *producers* of earlier clones,
    /// replicating whole cheap chains into the consuming side (Fig. 7's
    /// pattern) instead of just shifting the cross edge one hop up.
    pub rounds: usize,
}

impl Default for CloneConfig {
    fn default() -> Self {
        CloneConfig {
            max_node_cost: 8,
            max_growth: 1.5,
            top_fraction: 0.5,
            rounds: 3,
        }
    }
}

/// Clone fan-out nodes within the configured budget (running up to
/// `cfg.rounds` sweeps). Each extra consumer of a cloned node gets a private
/// duplicate (same op, same inputs, fresh output names).
pub fn clone_nodes(
    graph: &mut Graph,
    cost: &dyn CostModel,
    cfg: &CloneConfig,
) -> Result<PassReport> {
    crate::debug_verify(graph, "before clone_nodes");
    let budget = ((graph.num_nodes() as f64) * (cfg.max_growth - 1.0)).floor() as usize;
    let mut total = PassReport::default();
    for _ in 0..cfg.rounds.max(1) {
        let remaining = budget.saturating_sub(total.nodes_added);
        if remaining == 0 {
            break;
        }
        let round = clone_sweep(graph, cost, cfg, remaining)?;
        let done = !round.changed;
        total = total.merge(round);
        if done {
            break;
        }
    }
    if total.changed {
        ramiel_ir::shape::infer_shapes(graph)?;
    }
    crate::debug_verify(graph, "after clone_nodes");
    Ok(total)
}

/// One cloning sweep over the current graph.
fn clone_sweep(
    graph: &mut Graph,
    cost: &dyn CostModel,
    cfg: &CloneConfig,
    budget: usize,
) -> Result<PassReport> {
    let original_nodes = graph.num_nodes();
    let lvl = levels(graph)?;
    let max_level = lvl.iter().copied().max().unwrap_or(0);
    let level_cutoff = ((max_level as f64) * cfg.top_fraction) as usize;

    let adj = graph.adjacency();
    // Candidates: cheap, pure, single-output, top-of-graph, fan-out > 1.
    let mut candidates: Vec<usize> = (0..original_nodes)
        .filter(|&id| {
            let node = &graph.nodes[id];
            node.op.is_pure()
                && node.outputs.len() == 1
                && adj.succs[id].len() > 1
                && cost.node_cost(graph, node) <= cfg.max_node_cost
                && lvl[id] <= level_cutoff
        })
        .collect();
    // Clone shallow (cheap-to-recompute) nodes first.
    candidates.sort_by_key(|&id| (lvl[id], id));

    let mut added = 0usize;
    // Seeded from the node count so names stay unique across sweeps.
    let mut clone_idx = graph.num_nodes();
    for id in candidates {
        let node = graph.nodes[id].clone();
        let out = node.outputs[0].clone();
        // Unique consumer node ids beyond the first keep the original.
        let consumers = adj.succs[id].clone();
        for &cons in consumers.iter().skip(1) {
            if added >= budget {
                break;
            }
            let new_name = format!("{}_clone{}", node.name, clone_idx);
            let new_out = format!("{out}.clone{clone_idx}");
            clone_idx += 1;
            let new_id = graph.push_node(
                new_name,
                node.op.clone(),
                node.inputs.clone(),
                vec![new_out.clone()],
            );
            debug_assert!(new_id >= original_nodes);
            for inp in &mut graph.nodes[cons].inputs {
                if *inp == out {
                    *inp = new_out.clone();
                }
            }
            added += 1;
        }
        if added >= budget {
            break;
        }
    }
    if added == 0 {
        return Ok(PassReport::default());
    }
    Ok(PassReport {
        nodes_removed: 0,
        nodes_added: added,
        changed: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_cluster::StaticCost;
    use ramiel_ir::{DType, GraphBuilder, OpKind};
    use ramiel_runtime::{run_sequential, synth_inputs};
    use ramiel_tensor::ExecCtx;

    fn fanout_graph() -> Graph {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![8]);
        let shared = b.op("shared", OpKind::Relu, vec![x]);
        let a = b.op("a", OpKind::Sigmoid, vec![shared.clone()]);
        let c = b.op("b", OpKind::Tanh, vec![shared.clone()]);
        let d = b.op("c", OpKind::Exp, vec![shared]);
        let j1 = b.op("j1", OpKind::Add, vec![a, c]);
        let j2 = b.op("j2", OpKind::Add, vec![j1, d]);
        b.output(&j2);
        b.finish().unwrap()
    }

    #[test]
    fn clones_fanout_node_per_extra_consumer() {
        let mut g = fanout_graph();
        let before = g.num_nodes();
        let cfg = CloneConfig {
            max_growth: 2.0, // roomy budget so both clones fit
            ..CloneConfig::default()
        };
        let rep = clone_nodes(&mut g, &StaticCost, &cfg).unwrap();
        assert!(rep.changed);
        assert_eq!(rep.nodes_added, 2); // 3 consumers → 2 clones
        assert_eq!(g.num_nodes(), before + 2);
        ramiel_ir::validate::validate(&g).unwrap();
        // fan-out of the original is now 1
        let adj = g.adjacency();
        let shared = g.nodes.iter().find(|n| n.name == "shared_0").unwrap();
        assert_eq!(adj.succs[shared.id].len(), 1);
    }

    #[test]
    fn cloning_preserves_outputs() {
        let g0 = fanout_graph();
        let mut g1 = g0.clone();
        clone_nodes(&mut g1, &StaticCost, &CloneConfig::default()).unwrap();
        let inputs = synth_inputs(&g0, 2);
        let ctx = ExecCtx::sequential();
        assert_eq!(
            run_sequential(&g0, &inputs, &ctx).unwrap(),
            run_sequential(&g1, &inputs, &ctx).unwrap()
        );
    }

    #[test]
    fn expensive_nodes_are_not_cloned() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![1, 4, 8, 8]);
        let conv = b.conv(&x, 4, 4, (7, 7), (1, 1), (3, 3), 1); // cost 24
        let a = b.op("a", OpKind::Relu, vec![conv.clone()]);
        let c = b.op("b", OpKind::Sigmoid, vec![conv]);
        let j = b.op("j", OpKind::Add, vec![a, c]);
        b.output(&j);
        let mut g = b.finish().unwrap();
        let rep = clone_nodes(&mut g, &StaticCost, &CloneConfig::default()).unwrap();
        assert!(!rep.changed, "7x7 conv exceeds max_node_cost");
    }

    #[test]
    fn growth_budget_is_respected() {
        let mut g = fanout_graph();
        let cfg = CloneConfig {
            max_growth: 1.1, // budget = floor(6 · 0.1) = 0 clones
            ..CloneConfig::default()
        };
        let rep = clone_nodes(&mut g, &StaticCost, &cfg).unwrap();
        assert!(!rep.changed);
    }

    #[test]
    fn bottom_of_graph_left_alone() {
        let mut g = fanout_graph();
        let cfg = CloneConfig {
            top_fraction: 0.0, // only level-0 nodes; `shared` is level 0
            ..CloneConfig::default()
        };
        // level cutoff 0: `shared` is at level 0, so it still clones.
        let rep = clone_nodes(&mut g, &StaticCost, &cfg).unwrap();
        assert!(rep.changed);
    }
}
