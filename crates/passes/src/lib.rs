//! # ramiel-passes
//!
//! Graph transformation passes from the paper:
//!
//! - [`constfold`] — constant propagation & folding (the paper delegates
//!   this to onnxruntime; we implement it directly so the whole pipeline is
//!   self-contained). Folds `Shape`-of-static-tensor nodes and anything
//!   whose operands are all compile-time constants — the "horizontal branch
//!   reduction" of Section III-C.
//! - [`dce`] — dead-code elimination: drops nodes that cannot reach a graph
//!   output (mostly the husks const-folding leaves behind).
//! - [`identity`] — removes `Identity`/`Dropout` pass-throughs by rewiring.
//! - [`clone`] — task cloning (Section III-D): duplicates cheap fan-out
//!   nodes so consumers stop sharing a producer, cutting cross-cluster
//!   messages at the price of redundant compute.
//! - [`inplace`] — in-place buffer-reuse marking: flags ops whose input
//!   buffer is dead after use and uniquely consumed, so executors can
//!   overwrite it instead of allocating (honored via `Arc::get_mut`).
//!
//! All passes preserve observable behaviour; the test-suite checks
//! input/output equivalence by executing before/after graphs on random
//! inputs.

pub mod bn_fold;
pub mod clone;
pub mod constfold;
pub mod dce;
pub mod identity;
pub mod inplace;

pub use bn_fold::fold_batch_norms;
pub use clone::{clone_nodes, CloneConfig};
pub use constfold::constant_fold;
pub use dce::dead_code_elimination;
pub use identity::eliminate_identities;
pub use inplace::{inplace_marks, InPlaceMarks};

use ramiel_ir::Graph;

/// What a pass did to the graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassReport {
    pub nodes_removed: usize,
    pub nodes_added: usize,
    pub changed: bool,
}

impl PassReport {
    pub fn merge(self, other: PassReport) -> PassReport {
        PassReport {
            nodes_removed: self.nodes_removed + other.nodes_removed,
            nodes_added: self.nodes_added + other.nodes_added,
            changed: self.changed || other.changed,
        }
    }
}

/// Debug-build harness: re-verify graph invariants (`ir::validate`, shape
/// metadata honesty) at a pipeline point; release builds compile it away.
#[inline]
pub(crate) fn debug_verify(graph: &Graph, stage: &str) {
    #[cfg(debug_assertions)]
    ramiel_verify::assert_graph_invariants(graph, stage);
    #[cfg(not(debug_assertions))]
    {
        let _ = (graph, stage);
    }
}

/// The paper's pruning pipeline: constant propagation followed by DCE and
/// identity elimination, iterated to a fixed point (each fold can expose
/// more folds, exactly like onnxruntime's graph-optimization loop).
///
/// Debug builds re-verify graph invariants before the loop and after every
/// sub-pass, so a pass that corrupts the graph panics at the stage that
/// broke it instead of failing far downstream.
pub fn prune(graph: &mut Graph) -> ramiel_ir::Result<PassReport> {
    debug_verify(graph, "before prune");
    let mut total = PassReport::default();
    loop {
        let mut round = PassReport::default();
        round = round.merge(constant_fold(graph)?);
        debug_verify(graph, "after constant_fold");
        round = round.merge(dead_code_elimination(graph)?);
        debug_verify(graph, "after dead_code_elimination");
        round = round.merge(eliminate_identities(graph)?);
        debug_verify(graph, "after eliminate_identities");
        total = total.merge(round);
        if !round.changed {
            return Ok(total);
        }
    }
}
