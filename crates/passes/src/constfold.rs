//! Constant propagation & folding.
//!
//! A node folds when its value is fully determined at compile time:
//!
//! 1. `Constant` nodes (payload already sits in the initializer table);
//! 2. `Shape` nodes whose input has a statically known shape — the linchpin
//!    of pruning exporter shape chains, and exactly what onnxruntime does;
//! 3. any pure node all of whose inputs are initializers (including ones
//!    promoted by earlier folds in the same sweep).
//!
//! Folded nodes are evaluated with the *same* kernel dispatch the executors
//! use ([`ramiel_tensor::eval_op`]), so folding can never change semantics.
//! Results larger than [`FOLD_SIZE_LIMIT`] elements are left in place to
//! avoid ballooning the model file with materialized weights.

use crate::PassReport;
use ramiel_ir::shape::infer_shapes;
use ramiel_ir::{Graph, IrError, OpKind, Result};
use ramiel_tensor::{eval_op, ExecCtx, Value};

/// Never materialize folded tensors bigger than this many elements.
pub const FOLD_SIZE_LIMIT: usize = 1 << 20;

/// Run one folding sweep over the graph (in topological order, so folds
/// cascade within a single call). Returns what changed.
pub fn constant_fold(graph: &mut Graph) -> Result<PassReport> {
    let order = ramiel_ir::topo::topo_sort(graph)?;
    let ctx = ExecCtx::sequential();
    let mut folded: Vec<usize> = Vec::new();

    for &id in &order {
        let node = graph.nodes[id].clone();
        if !node.op.is_pure() {
            continue;
        }
        let new_outputs: Option<Vec<Value>> = match &node.op {
            OpKind::Constant => {
                // Payload is already an initializer under the output name;
                // the node itself is pure ceremony.
                if graph.initializers.contains_key(&node.outputs[0]) {
                    folded.push(id);
                }
                None
            }
            OpKind::Shape => {
                let known = node
                    .inputs
                    .first()
                    .and_then(|t| graph.tensor_info(t))
                    .map(|i| i.shape);
                known.map(|shape| {
                    let dims: Vec<i64> = shape.iter().map(|&d| d as i64).collect();
                    let n = dims.len();
                    vec![Value::I64(
                        ramiel_tensor::Tensor::new(vec![n], dims)
                            .expect("shape vector construction cannot fail"),
                    )]
                })
            }
            _ => {
                if !node.inputs.is_empty() && node.inputs.iter().all(|t| graph.is_initializer(t)) {
                    let inputs: Vec<Value> = node
                        .inputs
                        .iter()
                        .map(|t| Value::from_tensor_data(&graph.initializers[t]))
                        .collect::<std::result::Result<_, _>>()
                        .map_err(|e| IrError::Invalid(e.to_string()))?;
                    match eval_op(&ctx, &node.op, &inputs) {
                        Ok(outs) if outs.iter().all(|v| v.numel() <= FOLD_SIZE_LIMIT) => Some(outs),
                        _ => None,
                    }
                } else {
                    None
                }
            }
        };
        if let Some(outs) = new_outputs {
            for (name, v) in node.outputs.iter().zip(&outs) {
                graph.initializers.insert(name.clone(), v.to_tensor_data());
            }
            folded.push(id);
        }
    }

    if folded.is_empty() {
        return Ok(PassReport::default());
    }
    let removed = folded.len();
    let fold_set: std::collections::HashSet<usize> = folded.into_iter().collect();
    graph.retain_nodes(|n| !fold_set.contains(&n.id));
    infer_shapes(graph)?;
    Ok(PassReport {
        nodes_removed: removed,
        nodes_added: 0,
        changed: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_ir::{DType, GraphBuilder, TensorData};
    use ramiel_runtime::{run_sequential, synth_inputs};
    use ramiel_tensor::ExecCtx;

    #[test]
    fn folds_constant_arithmetic() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![4]);
        let c1 = b.init("c1", TensorData::f32(vec![4], vec![1.0; 4]));
        let c2 = b.init("c2", TensorData::f32(vec![4], vec![2.0; 4]));
        let sum = b.op("add_c", ramiel_ir::OpKind::Add, vec![c1, c2]);
        let y = b.op("add_x", ramiel_ir::OpKind::Add, vec![x, sum]);
        b.output(&y);
        let mut g = b.finish().unwrap();
        let before = g.num_nodes();
        let rep = constant_fold(&mut g).unwrap();
        assert!(rep.changed);
        assert_eq!(g.num_nodes(), before - 1);
        // the folded tensor became an initializer feeding add_x
        assert!(g
            .nodes
            .iter()
            .any(|n| n.name == "add_x_3" || n.name.starts_with("add_x")));
        ramiel_ir::validate::validate(&g).unwrap();
    }

    #[test]
    fn folds_exporter_shape_chain_completely() {
        // Shape → Gather → Concat → (Reshape stays, its operand is now const)
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![2, 3, 4]);
        let s = b.op("sh", ramiel_ir::OpKind::Shape, vec![x.clone()]);
        let i0 = b.const_i64("i0", vec![0]);
        let g0 = b.op("g0", ramiel_ir::OpKind::Gather { axis: 0 }, vec![s, i0]);
        let m1 = b.const_i64("m1", vec![-1]);
        let spec = b.op("cc", ramiel_ir::OpKind::Concat { axis: 0 }, vec![g0, m1]);
        let y = b.op("rs", ramiel_ir::OpKind::Reshape, vec![x, spec]);
        b.output(&y);
        let mut g = b.finish().unwrap();
        assert_eq!(g.num_nodes(), 4);
        let rep = crate::prune(&mut g).unwrap();
        assert!(rep.changed);
        // Only the Reshape remains.
        assert_eq!(g.num_nodes(), 1);
        assert!(matches!(g.nodes[0].op, ramiel_ir::OpKind::Reshape));
        ramiel_ir::validate::validate(&g).unwrap();
    }

    #[test]
    fn preserves_observable_outputs() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![8]);
        let two = b.const_scalar("two", 2.0);
        let three = b.const_scalar("three", 3.0);
        let six = b.op("mul_c", ramiel_ir::OpKind::Mul, vec![two, three]);
        let y = b.op("mul_x", ramiel_ir::OpKind::Mul, vec![x, six]);
        b.output(&y);
        let g0 = b.finish().unwrap();
        let mut g1 = g0.clone();
        constant_fold(&mut g1).unwrap();

        let inputs = synth_inputs(&g0, 9);
        let ctx = ExecCtx::sequential();
        let o0 = run_sequential(&g0, &inputs, &ctx).unwrap();
        let o1 = run_sequential(&g1, &inputs, &ctx).unwrap();
        assert_eq!(o0, o1);
    }

    #[test]
    fn does_not_fold_runtime_dependent_nodes() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![4]);
        let y = b.op("relu", ramiel_ir::OpKind::Relu, vec![x]);
        b.output(&y);
        let mut g = b.finish().unwrap();
        let rep = constant_fold(&mut g).unwrap();
        assert!(!rep.changed);
        assert_eq!(g.num_nodes(), 1);
    }

    #[test]
    fn graph_output_that_folds_stays_defined() {
        let mut b = GraphBuilder::new("t");
        let c = b.const_scalar("c", 5.0);
        let y = b.op("neg", ramiel_ir::OpKind::Neg, vec![c]);
        b.output(&y);
        let mut g = b.finish().unwrap();
        constant_fold(&mut g).unwrap();
        assert_eq!(g.num_nodes(), 0);
        // output is now an initializer
        assert!(g.is_initializer(&g.outputs[0].clone()));
        ramiel_ir::validate::validate(&g).unwrap();
        let out = run_sequential(&g, &Default::default(), &ExecCtx::sequential()).unwrap();
        assert_eq!(out[&g.outputs[0]].f32().unwrap().data(), &[-5.0]);
    }
}
