//! Golden corruption tests: seeded schedule defects on a real model must
//! trip exactly the intended `RA-*` codes, and the pristine schedules of
//! every built-in model must analyze clean of errors.

use ramiel_analyze::{analyze, codes};
use ramiel_cluster::{cluster_graph, clustering_view, stealing_view, StaticCost};
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_verify::Severity;

fn codes_of(report: &ramiel_verify::Report) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.code).collect()
}

#[test]
fn pristine_schedules_have_no_errors_on_any_model() {
    let cfg = ModelConfig::tiny();
    for kind in ModelKind::all() {
        let g = build(kind, &cfg);
        let view = clustering_view(&cluster_graph(&g, &StaticCost));
        let a = analyze(&g, &view);
        assert!(
            !a.report.has_errors(),
            "{}: pristine schedule reported errors: {}",
            kind.name(),
            a.report.render()
        );
    }
}

/// The work-stealing executor's analyze story: it has no static per-edge
/// channels, so its view must analyze as *estimate-only* — a sound (inexact)
/// first-ready memory bound and **zero** channel-shaped diagnostics
/// (RA03xx happens-before lints, RA0401 capacity). Emitting those against a
/// schedule that has no channels would be vacuous noise; this test pins
/// their absence on every model, at batch 1 and batch 4.
#[test]
fn stealing_views_are_estimate_only_with_no_channel_lints() {
    let cfg = ModelConfig::tiny();
    let channel_codes = [
        codes::RECV_NO_SEND,
        codes::WRITE_WRITE,
        codes::HB_CYCLE,
        codes::CAPACITY_EXCEEDED,
    ];
    for kind in ModelKind::all() {
        for batch in [1usize, 4] {
            let g = build(kind, &cfg);
            let a = analyze(&g, &stealing_view(&g, batch));
            assert!(
                !a.memory.exact,
                "{} b{batch}: stealing memory bound must be estimate-only",
                kind.name()
            );
            assert!(
                a.memory.peak_bytes > 0,
                "{} b{batch}: estimate-only bound must still be a real bound",
                kind.name()
            );
            for d in &a.report.diagnostics {
                assert!(
                    !channel_codes.contains(&d.code),
                    "{} b{batch}: vacuous channel lint {} on the stealing view: {}",
                    kind.name(),
                    d.code,
                    d.message
                );
            }
            assert!(
                !a.report.has_errors(),
                "{} b{batch}: stealing view reported errors: {}",
                kind.name(),
                a.report.render()
            );
        }
    }
}

#[test]
fn dropping_a_producer_trips_recv_no_send() {
    let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
    let mut view = clustering_view(&cluster_graph(&g, &StaticCost));
    // Corrupt: delete the first scheduled op from the first non-empty
    // worker; its output is still consumed downstream but never produced.
    let w = view.workers.iter().position(|w| !w.is_empty()).unwrap();
    view.workers[w].remove(0);
    let a = analyze(&g, &view);
    assert!(
        codes_of(&a.report).contains(&codes::RECV_NO_SEND),
        "expected {} after dropping a producer, got {:?}",
        codes::RECV_NO_SEND,
        codes_of(&a.report)
    );
    assert!(a.report.has_errors());
}

#[test]
fn duplicating_an_instance_trips_write_write() {
    let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
    let mut view = clustering_view(&cluster_graph(&g, &StaticCost));
    // Corrupt: schedule the first op of worker 0 a second time on the
    // last worker — two writers race on the same tensor instance.
    let w = view.workers.iter().position(|w| !w.is_empty()).unwrap();
    let dup = view.workers[w][0];
    view.workers.push(vec![dup]);
    let a = analyze(&g, &view);
    assert!(
        codes_of(&a.report).contains(&codes::WRITE_WRITE),
        "expected {} after duplicating an instance, got {:?}",
        codes::WRITE_WRITE,
        codes_of(&a.report)
    );
    assert!(a.report.has_errors());
}

#[test]
fn reversing_a_worker_trips_hb_cycle_under_in_order_replay() {
    let g = build(ModelKind::Googlenet, &ModelConfig::tiny());
    let mut view = clustering_view(&cluster_graph(&g, &StaticCost));
    // Corrupt: reverse the longest worker's program order. Under strict
    // in-order replay a dependence now points against program order,
    // closing a wait-for cycle.
    let w = (0..view.workers.len())
        .max_by_key(|&w| view.workers[w].len())
        .unwrap();
    assert!(view.workers[w].len() >= 2, "need a multi-op worker");
    view.workers[w].reverse();
    let a = analyze(&g, &view);
    assert!(
        codes_of(&a.report).contains(&codes::HB_CYCLE),
        "expected {} after reversing a worker, got {:?}",
        codes::HB_CYCLE,
        codes_of(&a.report)
    );
}

#[test]
fn error_codes_carry_error_severity() {
    let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
    let mut view = clustering_view(&cluster_graph(&g, &StaticCost));
    let w = view.workers.iter().position(|w| !w.is_empty()).unwrap();
    view.workers[w].remove(0);
    let a = analyze(&g, &view);
    for d in &a.report.diagnostics {
        if d.code == codes::RECV_NO_SEND {
            assert_eq!(d.severity, Severity::Error);
        }
    }
}
