//! # ramiel-analyze
//!
//! Dataflow analyses over compiled plans and cluster schedules. Where
//! `ramiel-verify` answers *"is this schedule sound?"*, this crate answers
//! *"what will it cost, and which channel shapes are fragile?"* — three
//! passes over a [`ScheduleView`]:
//!
//! - [`lifetime`] — per-buffer def/last-use intervals against each worker's
//!   schedule order, alias-aware through the `Arc`-sharing reshape paths
//!   (`Reshape`/`Flatten`/`Squeeze`/`Unsqueeze`/`Identity`/`Dropout`).
//! - [`memory`] — static peak-memory estimation: bytes live at each
//!   schedule step (including channel-resident tensors), per worker and
//!   whole-schedule. The accounting model matches the executors' liveness
//!   gauge exactly, so the estimate is a provable upper bound on the
//!   measured peak (see `DESIGN.md` §14).
//! - [`hb`] — happens-before channel analysis: the cross-worker send/recv
//!   order graph, linted for race and lost-wakeup shapes.
//!
//! Findings reuse `ramiel-verify`'s diagnostic framework under the `RA-*`
//! code range so `ramiel check` and `ramiel analyze` render identically.
//!
//! | range  | area                                              |
//! |--------|---------------------------------------------------|
//! | RA01xx | lifetime / aliasing lints                         |
//! | RA02xx | memory estimation lints                           |
//! | RA03xx | happens-before ordering (races, lost wakeups)     |
//! | RA04xx | channel capacity / backpressure                   |

pub mod hb;
pub mod lifetime;
pub mod memory;

pub use lifetime::{Interval, LifetimeReport};
pub use memory::{MemoryEstimate, WorkerMemory};

use ramiel_ir::Graph;
use ramiel_verify::{Report, ScheduleView};

/// Stable diagnostic codes. Tests match on these; never renumber.
pub mod codes {
    /// A produced tensor no scheduled op (and no graph output) ever reads.
    pub const DEAD_VALUE: &str = "RA0101";
    /// An alias op (reshape family) is scheduled on a different worker than
    /// its input's producer: the "zero-copy" view crosses a channel.
    pub const ALIAS_CROSS_WORKER: &str = "RA0102";
    /// One worker's peak resident set dominates the schedule (memory
    /// imbalance hotspot).
    pub const MEM_HOTSPOT: &str = "RA0201";
    /// A scheduled op consumes a tensor instance no scheduled op produces
    /// and no input/initializer provides: the recv has no dominating send.
    pub const RECV_NO_SEND: &str = "RA0301";
    /// Two scheduled op instances write the same tensor instance from
    /// different workers: the consumer's env insert order is a race.
    pub const WRITE_WRITE: &str = "RA0302";
    /// The happens-before graph (program order ∪ dependence) has a cycle:
    /// the in-order replay deadlocks on a cross-worker wait loop.
    pub const HB_CYCLE: &str = "RA0303";
    /// Worst-case in-flight messages into one worker can reach the bounded
    /// channel capacity (`ramiel_runtime::limits::DATA_CHANNEL_CAPACITY`);
    /// escalated to an error when that worker also sits on a cyclic
    /// worker-to-worker dependence loop, which is the backpressure-deadlock
    /// shape.
    pub const CAPACITY_EXCEEDED: &str = "RA0401";
}

/// The combined result of all three analysis passes.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-buffer def/last-use intervals and alias classes.
    pub lifetimes: LifetimeReport,
    /// Static per-worker and whole-schedule peak-memory estimate.
    pub memory: MemoryEstimate,
    /// All findings, errors first (shared rendering with `ramiel check`).
    pub report: Report,
}

/// Run every analysis pass over one schedule.
pub fn analyze(graph: &Graph, view: &ScheduleView) -> Analysis {
    let mut diags = Vec::new();
    let (lifetimes, mut d) = lifetime::lifetimes(graph, view);
    diags.append(&mut d);
    let (memory, mut d) = memory::estimate_memory(graph, view);
    diags.append(&mut d);
    diags.append(&mut hb::happens_before(graph, view));
    Analysis {
        lifetimes,
        memory,
        report: Report::new(diags),
    }
}
