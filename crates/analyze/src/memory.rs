//! Static peak-memory estimation.
//!
//! Replays each worker's schedule against the same accounting model the
//! executors' liveness gauge uses at runtime:
//!
//! - op outputs are charged when produced — zero bytes for alias ops
//!   (reshape family shares the input `Arc`), full payload otherwise;
//! - values received over a channel are charged with their full payload,
//!   and conservatively from step 0 (a message may arrive before the
//!   worker has executed anything);
//! - graph inputs and initializers are never charged (caller-owned);
//! - a value is discharged after its last local read; graph outputs are
//!   pinned for the whole schedule;
//! - the producing step's peak is sampled *after* charging outputs and
//!   *before* discharging inputs, so inputs and outputs coexist — which
//!   also upper-bounds the in-place path, where they share one buffer.
//!
//! For in-order workers this replay is exact with respect to that model.
//! First-ready workers execute in a data-dependent order, so the bound
//! falls back to the sum of all charges (no interleaving can exceed a
//! world where nothing is ever discharged). The whole-schedule peak is
//! the sum of per-worker peaks: the runtime gauge is shared across
//! workers, and the per-worker maxima cannot all be exceeded at once.

use crate::codes;
use crate::lifetime::instance_workers;
use ramiel_ir::Graph;
use ramiel_runtime::memory::tensor_bytes;
use ramiel_runtime::reuse::is_alias_op;
use ramiel_verify::{Diagnostic, ExecPolicy, ScheduleView, Span};
use serde::Serialize;
use std::collections::{HashMap, HashSet};

/// Peak-memory estimate for one worker.
#[derive(Debug, Clone, Serialize)]
pub struct WorkerMemory {
    pub worker: usize,
    /// Estimated high-water mark of the worker's liveness gauge.
    pub peak_bytes: u64,
    /// Sum of every charge the worker ever makes (the no-eviction bound).
    pub resident_bytes: u64,
    /// True when `peak_bytes` came from an exact in-order replay rather
    /// than the first-ready sum bound.
    pub exact: bool,
    /// Scheduled ops on this worker.
    pub ops: usize,
}

/// Whole-schedule estimate: per-worker breakdown plus the summed bound.
#[derive(Debug, Clone, Serialize)]
pub struct MemoryEstimate {
    pub per_worker: Vec<WorkerMemory>,
    /// Upper bound on the shared gauge's high-water mark (Σ worker peaks).
    pub peak_bytes: u64,
    pub exact: bool,
}

impl Default for MemoryEstimate {
    fn default() -> Self {
        MemoryEstimate {
            per_worker: Vec::new(),
            peak_bytes: 0,
            exact: true,
        }
    }
}

/// Estimate peak memory for every worker plus the memory lints.
pub fn estimate_memory(graph: &Graph, view: &ScheduleView) -> (MemoryEstimate, Vec<Diagnostic>) {
    let adj = graph.adjacency();
    let owner = instance_workers(view);
    let graph_outputs: HashSet<&str> = graph.outputs.iter().map(String::as_str).collect();
    let externals: HashSet<&str> = graph
        .inputs
        .iter()
        .map(|i| i.name.as_str())
        .chain(graph.initializers.keys().map(String::as_str))
        .collect();
    let exact_order = view.policy == ExecPolicy::InOrder;

    let mut per_worker = Vec::with_capacity(view.workers.len());
    for (w, ops) in view.workers.iter().enumerate() {
        // Local read counts per instance; graph outputs get a pin that
        // never drains, exactly like the executors' `uses + 1`.
        let mut uses: HashMap<(&str, usize), usize> = HashMap::new();
        let mut received: HashSet<(&str, usize)> = HashSet::new();
        for op in ops {
            let Some(node) = graph.nodes.get(op.node) else {
                continue;
            };
            for t in &node.inputs {
                if externals.contains(t.as_str()) {
                    continue;
                }
                *uses.entry((t.as_str(), op.batch)).or_insert(0) += 1;
                let local = adj
                    .producer_of
                    .get(t)
                    .is_some_and(|p| owner.get(&(op.batch, *p)) == Some(&w));
                if !local {
                    received.insert((t.as_str(), op.batch));
                }
            }
            for t in &node.outputs {
                if graph_outputs.contains(t.as_str()) {
                    *uses.entry((t.as_str(), op.batch)).or_insert(0) += 1;
                }
            }
        }

        // charge size per charged instance, for discharging later
        let mut charge: HashMap<(&str, usize), u64> = HashMap::new();
        let mut cur: u64 = 0;
        let mut resident: u64 = 0;
        let mut peak: u64 = 0;
        for &(t, b) in &received {
            let bytes = tensor_bytes(graph, t) as u64;
            charge.insert((t, b), bytes);
            cur += bytes;
            resident += bytes;
        }
        peak = peak.max(cur);

        for op in ops {
            let Some(node) = graph.nodes.get(op.node) else {
                continue;
            };
            for t in &node.outputs {
                let key = (t.as_str(), op.batch);
                if charge.contains_key(&key) {
                    continue; // double-write; hb reports RA0302
                }
                let bytes = if is_alias_op(&node.op) {
                    0
                } else {
                    tensor_bytes(graph, t) as u64
                };
                charge.insert(key, bytes);
                cur += bytes;
                resident += bytes;
            }
            peak = peak.max(cur);
            for t in &node.inputs {
                let key = (t.as_str(), op.batch);
                let Some(n) = uses.get_mut(&key) else {
                    continue; // external (or unscheduled; hb reports RA0301)
                };
                *n -= 1;
                if *n == 0 {
                    cur -= charge.get(&key).copied().unwrap_or(0);
                }
            }
            for t in &node.outputs {
                // produced-but-never-read-locally values (sent remotely or
                // dead) are evicted right after production
                let key = (t.as_str(), op.batch);
                if uses.get(&key).copied().unwrap_or(0) == 0 {
                    cur -= charge.get(&key).copied().unwrap_or(0);
                }
            }
        }

        per_worker.push(WorkerMemory {
            worker: w,
            peak_bytes: if exact_order { peak } else { resident },
            resident_bytes: resident,
            exact: exact_order,
            ops: ops.len(),
        });
    }

    let estimate = MemoryEstimate {
        peak_bytes: per_worker.iter().map(|m| m.peak_bytes).sum(),
        exact: exact_order,
        per_worker,
    };

    let mut diags = Vec::new();
    // RA0201: one worker's peak dominates the schedule.
    let n = estimate.per_worker.len();
    if n > 1 {
        let total: u64 = estimate.per_worker.iter().map(|m| m.peak_bytes).sum();
        let avg = total / n as u64;
        if let Some(hot) = estimate
            .per_worker
            .iter()
            .max_by_key(|m| m.peak_bytes)
            .filter(|m| avg > 0 && m.peak_bytes > 2 * avg)
        {
            diags.push(
                Diagnostic::advice(
                    codes::MEM_HOTSPOT,
                    Span::Worker { worker: hot.worker },
                    format!(
                        "worker {} peaks at {} bytes, more than 2x the {} byte \
                         per-worker average",
                        hot.worker, hot.peak_bytes, avg
                    ),
                )
                .with_suggestion("rebalance the clustering or lower the worker count"),
            );
        }
    }
    (estimate, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_ir::{DType, GraphBuilder, OpKind};
    use ramiel_verify::{ExecPolicy, ScheduleView};

    /// x(24B) → Relu → Neg → Sqrt → output; every intermediate is 24 bytes.
    fn chain() -> Graph {
        let mut b = GraphBuilder::new("m");
        let x = b.input("x", DType::F32, vec![2, 3]);
        let r = b.op("r", OpKind::Relu, vec![x]);
        let n = b.op("n", OpKind::Neg, vec![r]);
        let a = b.op("a", OpKind::Sqrt, vec![n]);
        b.output(&a);
        b.finish().unwrap()
    }

    #[test]
    fn in_order_chain_peaks_at_two_live_values() {
        let g = chain();
        let view = ScheduleView::single_batch(vec![vec![0, 1, 2]], ExecPolicy::InOrder);
        let (est, diags) = estimate_memory(&g, &view);
        assert!(diags.is_empty(), "{diags:?}");
        // at each step the producing op's input and output coexist: 48 bytes
        assert_eq!(est.peak_bytes, 48);
        assert!(est.exact);
        assert_eq!(est.per_worker[0].resident_bytes, 72);
    }

    #[test]
    fn first_ready_falls_back_to_sum_bound() {
        let g = chain();
        let view = ScheduleView::single_batch(vec![vec![0, 1, 2]], ExecPolicy::FirstReady);
        let (est, _) = estimate_memory(&g, &view);
        assert_eq!(est.peak_bytes, 72);
        assert!(!est.exact);
    }

    #[test]
    fn received_values_are_charged_on_the_consumer() {
        let g = chain();
        let view = ScheduleView::single_batch(vec![vec![0], vec![1, 2]], ExecPolicy::InOrder);
        let (est, _) = estimate_memory(&g, &view);
        // worker 0: relu out lives alone (input x is never charged)
        assert_eq!(est.per_worker[0].peak_bytes, 24);
        // worker 1: received relu + neg out coexist at step 0
        assert_eq!(est.per_worker[1].peak_bytes, 48);
    }

    #[test]
    fn hotspot_is_flagged() {
        // worker 0 runs the whole chain, worker 1 runs nothing
        let g = chain();
        let view =
            ScheduleView::single_batch(vec![vec![0, 1, 2], vec![], vec![]], ExecPolicy::InOrder);
        let (_, diags) = estimate_memory(&g, &view);
        assert!(diags.iter().any(|d| d.code == codes::MEM_HOTSPOT));
    }
}
