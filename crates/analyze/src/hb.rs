//! Happens-before channel analysis.
//!
//! Builds the cross-worker send/recv order graph of a schedule — every
//! scheduled op instance is a vertex; dependence edges connect producers
//! to consumers, and in-order workers add program-order edges between
//! consecutive steps — then lints the shapes that turn into runtime
//! hangs or races:
//!
//! - **RA0301** a consumed tensor instance has no scheduled producer and
//!   no input/initializer provides it: the recv blocks forever.
//! - **RA0302** one tensor instance is written by two scheduled op
//!   instances: the consumer's env insert order is a race.
//! - **RA0303** the happens-before graph has a cycle: in-order replay
//!   deadlocks on a cross-worker wait loop.
//! - **RA0401** worst-case in-flight messages into one worker can fill
//!   its bounded inbox ([`DATA_CHANNEL_CAPACITY`]); a warning, escalated
//!   to an error when that worker also sits on a worker-to-worker
//!   dependence cycle — the shape where backpressure can deadlock.

use crate::codes;
use crate::lifetime::instance_workers;
use ramiel_ir::{Graph, NodeId};
use ramiel_runtime::limits::DATA_CHANNEL_CAPACITY;
use ramiel_verify::{Diagnostic, ExecPolicy, ScheduleView, Span};
use std::collections::{HashMap, HashSet};

fn op_span(graph: &Graph, worker: usize, batch: usize, node: NodeId) -> Span {
    Span::Op {
        worker,
        batch,
        node,
        name: graph
            .nodes
            .get(node)
            .map_or_else(|| format!("#{node}"), |n| n.name.clone()),
    }
}

/// Lint the schedule's send/recv order graph.
pub fn happens_before(graph: &Graph, view: &ScheduleView) -> Vec<Diagnostic> {
    let adj = graph.adjacency();
    let owner = instance_workers(view);
    let externals: HashSet<&str> = graph
        .inputs
        .iter()
        .map(|i| i.name.as_str())
        .chain(graph.initializers.keys().map(String::as_str))
        .collect();
    let mut diags = Vec::new();

    // Vertex table: first occurrence of each (batch, node) instance.
    let mut idx: HashMap<(usize, NodeId), usize> = HashMap::new();
    let mut at: Vec<(usize, usize, usize, NodeId)> = Vec::new(); // (worker, step, batch, node)
    for (w, ops) in view.workers.iter().enumerate() {
        for (step, op) in ops.iter().enumerate() {
            idx.entry((op.batch, op.node)).or_insert_with(|| {
                at.push((w, step, op.batch, op.node));
                at.len() - 1
            });
        }
    }

    // RA0302: one tensor instance, several scheduled writers.
    let mut writers: HashMap<(&str, usize), Vec<(usize, NodeId)>> = HashMap::new();
    for (w, ops) in view.workers.iter().enumerate() {
        for op in ops {
            let Some(node) = graph.nodes.get(op.node) else {
                continue;
            };
            for t in &node.outputs {
                writers
                    .entry((t.as_str(), op.batch))
                    .or_default()
                    .push((w, op.node));
            }
        }
    }
    for ((t, b), ws) in &writers {
        if ws.len() > 1 {
            let (w1, n1) = ws[0];
            let (w2, n2) = ws[1];
            diags.push(
                Diagnostic::error(
                    codes::WRITE_WRITE,
                    op_span(graph, w2, *b, n2),
                    format!(
                        "tensor `{t}` (batch {b}) is written by {} scheduled ops \
                         (first on worker {w1} by node #{n1}, again on worker {w2}); \
                         consumers observe whichever insert lands last",
                        ws.len()
                    ),
                )
                .with_suggestion("deduplicate the instance across workers"),
            );
        }
    }

    // RA0301: recv with no dominating send.
    let mut missing: HashSet<(String, usize)> = HashSet::new();
    for (w, ops) in view.workers.iter().enumerate() {
        for op in ops {
            let Some(node) = graph.nodes.get(op.node) else {
                continue;
            };
            for t in &node.inputs {
                if externals.contains(t.as_str()) {
                    continue;
                }
                let sent = adj
                    .producer_of
                    .get(t)
                    .is_some_and(|p| idx.contains_key(&(op.batch, *p)));
                if !sent && missing.insert((t.clone(), op.batch)) {
                    diags.push(
                        Diagnostic::error(
                            codes::RECV_NO_SEND,
                            op_span(graph, w, op.batch, op.node),
                            format!(
                                "consumes `{t}` (batch {}) but no scheduled op produces \
                                 it; the recv has no dominating send and times out",
                                op.batch
                            ),
                        )
                        .with_suggestion("schedule the producing node or mark the tensor an input"),
                    );
                }
            }
        }
    }

    // RA0303: cycle in program order ∪ dependence.
    let n = at.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg: Vec<usize> = vec![0; n];
    let edge = |succs: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>, a: usize, b: usize| {
        if a != b {
            succs[a].push(b);
            indeg[b] += 1;
        }
    };
    for (&(batch, node), &i) in &idx {
        let Some(nd) = graph.nodes.get(node) else {
            continue;
        };
        for t in &nd.inputs {
            if let Some(&p) = adj.producer_of.get(t) {
                if let Some(&j) = idx.get(&(batch, p)) {
                    edge(&mut succs, &mut indeg, j, i);
                }
            }
        }
    }
    if view.policy == ExecPolicy::InOrder {
        for ops in &view.workers {
            for pair in ops.windows(2) {
                let a = idx[&(pair[0].batch, pair[0].node)];
                let b = idx[&(pair[1].batch, pair[1].node)];
                edge(&mut succs, &mut indeg, a, b);
            }
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut done = 0usize;
    while let Some(i) = ready.pop() {
        done += 1;
        for &j in &succs[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                ready.push(j);
            }
        }
    }
    if done < n {
        // every unprocessed vertex sits on (or behind) a cycle; anchor the
        // report at the earliest one for determinism
        let stuck = (0..n)
            .filter(|&i| indeg[i] > 0)
            .min_by_key(|&i| (at[i].0, at[i].1))
            .expect("done < n implies a stuck vertex");
        let (w, _, b, node) = at[stuck];
        diags.push(
            Diagnostic::error(
                codes::HB_CYCLE,
                op_span(graph, w, b, node),
                format!(
                    "happens-before cycle: {} scheduled ops form a cross-worker \
                     wait loop (program order ∪ dependences); in-order replay \
                     deadlocks",
                    n - done
                ),
            )
            .with_suggestion("topologically order each worker's op list"),
        );
    }

    // RA0401: worst-case in-flight messages vs the bounded inbox.
    let mut inbound: HashMap<usize, usize> = HashMap::new();
    let mut sent: HashSet<(&str, usize, usize)> = HashSet::new(); // (tensor, batch, dst)
    let mut quotient: HashSet<(usize, usize)> = HashSet::new();
    for &(batch, node) in idx.keys() {
        let Some(nd) = graph.nodes.get(node) else {
            continue;
        };
        let pw = owner[&(batch, node)];
        for t in &nd.outputs {
            for &c in adj.consumers_of.get(t).map_or(&[][..], Vec::as_slice) {
                if let Some(&cw) = owner.get(&(batch, c)) {
                    if cw != pw && sent.insert((t.as_str(), batch, cw)) {
                        *inbound.entry(cw).or_insert(0) += 1;
                        quotient.insert((pw, cw));
                    }
                }
            }
        }
    }
    let mut hot: Vec<(usize, usize)> = inbound
        .into_iter()
        .filter(|&(_, msgs)| msgs > DATA_CHANNEL_CAPACITY)
        .collect();
    hot.sort_unstable();
    for (w, msgs) in hot {
        // is `w` on a worker-to-worker dependence cycle? (DFS from w)
        let mut stack: Vec<usize> = quotient
            .iter()
            .filter(|&&(a, _)| a == w)
            .map(|&(_, b)| b)
            .collect();
        let mut seen: HashSet<usize> = HashSet::new();
        let mut cyclic = false;
        while let Some(v) = stack.pop() {
            if v == w {
                cyclic = true;
                break;
            }
            if seen.insert(v) {
                stack.extend(quotient.iter().filter(|&&(a, _)| a == v).map(|&(_, b)| b));
            }
        }
        let msg = format!(
            "worst case {msgs} in-flight messages into worker {w} exceed the \
             bounded inbox capacity of {DATA_CHANNEL_CAPACITY}"
        );
        diags.push(if cyclic {
            Diagnostic::error(
                codes::CAPACITY_EXCEEDED,
                Span::Worker { worker: w },
                format!(
                    "{msg}; worker {w} sits on a cross-worker dependence cycle, so \
                     the resulting backpressure can deadlock"
                ),
            )
            .with_suggestion(
                "split the consumer cluster or raise runtime::limits::DATA_CHANNEL_CAPACITY",
            )
        } else {
            Diagnostic::warning(
                codes::CAPACITY_EXCEEDED,
                Span::Worker { worker: w },
                format!("{msg}; senders will stall on backpressure"),
            )
            .with_suggestion("split the consumer cluster across more workers")
        });
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_ir::{DType, GraphBuilder, OpKind};
    use ramiel_verify::{ExecPolicy, ScheduleView, Severity};

    /// x → Relu(0) → Neg(1) → Sqrt(2) → Relu(3) → output.
    fn chain4() -> Graph {
        let mut b = GraphBuilder::new("m");
        let x = b.input("x", DType::F32, vec![2, 3]);
        let a = b.op("a", OpKind::Relu, vec![x]);
        let c = b.op("c", OpKind::Neg, vec![a]);
        let d = b.op("d", OpKind::Sqrt, vec![c]);
        let e = b.op("e", OpKind::Relu, vec![d]);
        b.output(&e);
        b.finish().unwrap()
    }

    #[test]
    fn clean_split_schedule_has_no_findings() {
        let g = chain4();
        let view = ScheduleView::single_batch(vec![vec![0, 1], vec![2, 3]], ExecPolicy::InOrder);
        assert!(happens_before(&g, &view).is_empty());
    }

    #[test]
    fn dropped_producer_trips_recv_no_send() {
        let g = chain4();
        // node 0 (producer of node 1's input) is never scheduled
        let view = ScheduleView::single_batch(vec![vec![1, 2, 3]], ExecPolicy::InOrder);
        let d = happens_before(&g, &view);
        assert!(d.iter().any(|d| d.code == codes::RECV_NO_SEND), "{d:?}");
    }

    #[test]
    fn duplicated_instance_trips_write_write() {
        let g = chain4();
        let view = ScheduleView::single_batch(vec![vec![0, 1, 2, 3], vec![1]], ExecPolicy::InOrder);
        let d = happens_before(&g, &view);
        assert!(d.iter().any(|d| d.code == codes::WRITE_WRITE), "{d:?}");
    }

    #[test]
    fn reversed_worker_order_trips_hb_cycle() {
        let g = chain4();
        // program order on worker 0 runs node 3 before node 0, but node 3
        // transitively depends on node 0 through worker 1
        let view = ScheduleView::single_batch(vec![vec![3, 0], vec![1, 2]], ExecPolicy::InOrder);
        let d = happens_before(&g, &view);
        assert!(d.iter().any(|d| d.code == codes::HB_CYCLE), "{d:?}");
    }

    #[test]
    fn first_ready_ignores_program_order() {
        let g = chain4();
        // same shape as the cycle test, but first-ready workers reorder
        // freely, so only dependence edges remain — acyclic
        let view = ScheduleView::single_batch(vec![vec![3, 0], vec![1, 2]], ExecPolicy::FirstReady);
        assert!(happens_before(&g, &view).is_empty());
    }

    /// `n` independent producer→consumer pairs crossing w0→w1, plus one
    /// pair crossing back when `reverse` is set.
    fn wide(n: usize) -> Graph {
        let mut b = GraphBuilder::new("wide");
        let x = b.input("x", DType::F32, vec![2]);
        for _ in 0..n {
            let p = b.op("p", OpKind::Relu, vec![x.clone()]);
            let c = b.op("c", OpKind::Neg, vec![p]);
            b.output(&c);
        }
        b.finish().unwrap()
    }

    #[test]
    fn inbox_overflow_warns_and_escalates_on_quotient_cycle() {
        let n = DATA_CHANNEL_CAPACITY + 2;
        let g = wide(n);
        // producers (even node ids) on w0, consumers (odd) on w1
        let producers: Vec<usize> = (0..2 * n).step_by(2).collect();
        let consumers: Vec<usize> = (1..2 * n).step_by(2).collect();
        let view = ScheduleView::single_batch(
            vec![producers.clone(), consumers.clone()],
            ExecPolicy::InOrder,
        );
        let d = happens_before(&g, &view);
        let cap = d
            .iter()
            .find(|d| d.code == codes::CAPACITY_EXCEEDED)
            .expect("overflow must be flagged");
        assert_eq!(cap.severity, Severity::Warning);

        // move the last pair's producer to w1 and its consumer to w0:
        // w1→w0 messages now exist, closing the quotient cycle
        let mut p2 = producers;
        let mut c2 = consumers;
        let last_p = p2.pop().unwrap();
        let last_c = c2.pop().unwrap();
        p2.push(last_c);
        c2.push(last_p);
        let view = ScheduleView::single_batch(vec![p2, c2], ExecPolicy::InOrder);
        let d = happens_before(&g, &view);
        let cap = d
            .iter()
            .find(|d| d.code == codes::CAPACITY_EXCEEDED)
            .expect("overflow must still be flagged");
        assert_eq!(cap.severity, Severity::Error);
    }
}
