//! Tensor lifetime and aliasing analysis.
//!
//! For every worker in a schedule, computes the def/last-use interval of
//! each tensor instance that will be resident in that worker's environment
//! at runtime: values the worker produces (def = producing step) and values
//! it receives over a channel (def = step 0, the earliest they can arrive).
//! Graph inputs and initializers are excluded — the executors never charge
//! them, the caller and the shared weight table own those buffers.
//!
//! Aliasing: ops on the `Arc`-sharing path (`Reshape`, `Flatten`,
//! `Squeeze`, `Unsqueeze`, `Identity`, `Dropout`) produce views, not
//! copies. Intervals carry the root of their alias class so downstream
//! passes (and the in-place rewrite) can reason about the *buffer*, not
//! the name.

use crate::codes;
use ramiel_ir::{Graph, NodeId};
use ramiel_runtime::memory::tensor_bytes;
use ramiel_runtime::reuse::is_alias_op;
use ramiel_verify::{Diagnostic, ScheduleView, Span};
use std::collections::{HashMap, HashSet};

/// The lifetime of one tensor instance on one worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interval {
    pub tensor: String,
    pub batch: usize,
    pub worker: usize,
    /// Step index in the worker's op list where the value materializes:
    /// the producing op's index, or 0 for values received over a channel
    /// (the earliest they can arrive).
    pub def: usize,
    /// Step index of the last local read. Graph outputs are pinned to the
    /// end of the worker's list (`ops.len()`).
    pub last_use: usize,
    /// Statically-known payload size (0 when shape inference failed).
    pub bytes: u64,
    /// Root tensor of this value's alias class, when the value is a view
    /// that shares another buffer.
    pub alias_of: Option<String>,
}

/// All intervals of a schedule plus alias-class structure.
#[derive(Debug, Clone, Default)]
pub struct LifetimeReport {
    pub intervals: Vec<Interval>,
    /// Alias classes with at least two members (a root plus ≥ 1 view).
    pub alias_classes: usize,
}

impl LifetimeReport {
    /// Intervals resident on `worker`.
    pub fn on_worker(&self, worker: usize) -> impl Iterator<Item = &Interval> {
        self.intervals.iter().filter(move |i| i.worker == worker)
    }
}

/// Map every tensor to the root of its alias chain (tensors that are not
/// views map to themselves and are omitted).
pub(crate) fn alias_roots(graph: &Graph) -> HashMap<String, String> {
    // Direct view edges: alias-op output → its data input. `Constant` is
    // alias-charged by the executors (it shares the initializer table) but
    // has no tensor input to root at, so it is skipped here.
    let mut parent: HashMap<&str, &str> = HashMap::new();
    for node in &graph.nodes {
        if is_alias_op(&node.op) && !node.inputs.is_empty() && !node.outputs.is_empty() {
            parent.insert(node.outputs[0].as_str(), node.inputs[0].as_str());
        }
    }
    let mut roots: HashMap<String, String> = HashMap::new();
    for &view in parent.keys() {
        let mut root = view;
        let mut hops = 0;
        while let Some(&p) = parent.get(root) {
            root = p;
            hops += 1;
            if hops > parent.len() {
                break; // defensive: corrupted graphs with alias cycles
            }
        }
        roots.insert(view.to_string(), root.to_string());
    }
    roots
}

/// (batch, node) → worker lookup for every scheduled instance.
pub(crate) fn instance_workers(view: &ScheduleView) -> HashMap<(usize, NodeId), usize> {
    let mut map = HashMap::new();
    for (w, ops) in view.workers.iter().enumerate() {
        for op in ops {
            map.insert((op.batch, op.node), w);
        }
    }
    map
}

/// Compute every worker's intervals plus the lifetime lints.
pub fn lifetimes(graph: &Graph, view: &ScheduleView) -> (LifetimeReport, Vec<Diagnostic>) {
    let adj = graph.adjacency();
    let roots = alias_roots(graph);
    let owner = instance_workers(view);
    let graph_outputs: HashSet<&str> = graph.outputs.iter().map(String::as_str).collect();
    let externals: HashSet<&str> = graph
        .inputs
        .iter()
        .map(|i| i.name.as_str())
        .chain(graph.initializers.keys().map(String::as_str))
        .collect();

    let mut intervals = Vec::new();
    for (w, ops) in view.workers.iter().enumerate() {
        // (tensor, batch) → (def step, last-use step) on this worker.
        let mut seen: HashMap<(String, usize), (usize, usize)> = HashMap::new();
        for (step, op) in ops.iter().enumerate() {
            let Some(node) = graph.nodes.get(op.node) else {
                continue; // coverage errors are ramiel-verify's RV0103
            };
            for t in &node.inputs {
                if externals.contains(t.as_str()) {
                    continue;
                }
                let produced_here = adj
                    .producer_of
                    .get(t)
                    .is_some_and(|p| owner.get(&(op.batch, *p)) == Some(&w));
                let entry = seen
                    .entry((t.clone(), op.batch))
                    // First sight through a *read* means the value arrives
                    // over a channel (or the schedule is corrupt — hb
                    // reports that); it can be resident from step 0.
                    .or_insert((if produced_here { step } else { 0 }, step));
                entry.1 = step;
            }
            for t in &node.outputs {
                let pinned = graph_outputs.contains(t.as_str());
                let entry = seen.entry((t.clone(), op.batch)).or_insert((step, step));
                entry.0 = step;
                if pinned {
                    entry.1 = ops.len();
                }
            }
        }
        for ((tensor, batch), (def, last_use)) in seen {
            let bytes = tensor_bytes(graph, &tensor) as u64;
            let alias_of = roots.get(&tensor).cloned();
            intervals.push(Interval {
                tensor,
                batch,
                worker: w,
                def,
                last_use,
                bytes,
                alias_of,
            });
        }
    }
    intervals.sort_by(|a, b| {
        (a.worker, a.def, &a.tensor, a.batch).cmp(&(b.worker, b.def, &b.tensor, b.batch))
    });

    let mut class_sizes: HashMap<&str, usize> = HashMap::new();
    for root in roots.values() {
        *class_sizes.entry(root.as_str()).or_insert(1) += 1;
    }
    let report = LifetimeReport {
        intervals,
        alias_classes: class_sizes.len(),
    };

    let mut diags = Vec::new();
    // RA0101: produced values nothing reads (and no output pins).
    for node in &graph.nodes {
        for t in &node.outputs {
            let read = adj.consumers_of.get(t).map_or(0, Vec::len);
            if read == 0 && !graph_outputs.contains(t.as_str()) {
                diags.push(
                    Diagnostic::advice(
                        codes::DEAD_VALUE,
                        Span::Node {
                            id: node.id,
                            name: node.name.clone(),
                        },
                        format!("output `{t}` is never read and is not a graph output"),
                    )
                    .with_suggestion("run the prune pipeline (`ramiel run --prune`)"),
                );
            }
        }
    }
    // RA0102: a view scheduled away from its buffer's producer — the
    // "zero-copy" reshape crosses a channel and becomes a real payload.
    let mut flagged: HashSet<NodeId> = HashSet::new();
    for (w, ops) in view.workers.iter().enumerate() {
        for op in ops {
            let Some(node) = graph.nodes.get(op.node) else {
                continue;
            };
            if !is_alias_op(&node.op) || node.inputs.is_empty() || flagged.contains(&node.id) {
                continue;
            }
            if let Some(&p) = adj.producer_of.get(&node.inputs[0]) {
                if owner.get(&(op.batch, p)).is_some_and(|pw| *pw != w) {
                    flagged.insert(node.id);
                    diags.push(Diagnostic::advice(
                        codes::ALIAS_CROSS_WORKER,
                        Span::Op {
                            worker: w,
                            batch: op.batch,
                            node: node.id,
                            name: node.name.clone(),
                        },
                        format!(
                            "view over `{}` is scheduled on worker {w} but its buffer \
                             is produced on worker {}; the zero-copy alias becomes a \
                             channel payload",
                            node.inputs[0],
                            owner[&(op.batch, p)]
                        ),
                    ));
                }
            }
        }
    }
    (report, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramiel_ir::{DType, GraphBuilder, OpKind, TensorData};
    use ramiel_verify::{ExecPolicy, ScheduleView};

    /// x → Relu(0) → Reshape(1, via spec) → Neg(2) → output.
    /// Returns the graph plus the relu/reshape/neg output tensor names.
    fn chain_graph() -> (Graph, String, String, String) {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", DType::F32, vec![2, 3]);
        let r = b.op("r", OpKind::Relu, vec![x]);
        let spec = b.init("spec", TensorData::vec_i64(vec![-1]));
        let s = b.op("s", OpKind::Reshape, vec![r.clone(), spec]);
        let y = b.op("y", OpKind::Neg, vec![s.clone()]);
        b.output(&y);
        (b.finish().unwrap(), r, s, y)
    }

    #[test]
    fn intervals_cover_def_and_last_use() {
        let (g, r, _, y) = chain_graph();
        let view = ScheduleView::single_batch(vec![vec![0, 1, 2]], ExecPolicy::InOrder);
        let (rep, diags) = lifetimes(&g, &view);
        assert!(diags.is_empty(), "{diags:?}");
        let relu = rep.intervals.iter().find(|i| i.tensor == r).unwrap();
        assert_eq!((relu.def, relu.last_use), (0, 1));
        // graph output pinned to end of the worker list
        let out = rep.intervals.iter().find(|i| i.tensor == y).unwrap();
        assert_eq!(out.last_use, 3);
    }

    #[test]
    fn views_carry_their_alias_root() {
        let (g, r, s, _) = chain_graph();
        let view = ScheduleView::single_batch(vec![vec![0, 1, 2]], ExecPolicy::InOrder);
        let (rep, _) = lifetimes(&g, &view);
        let view_iv = rep.intervals.iter().find(|i| i.tensor == s).unwrap();
        assert_eq!(view_iv.alias_of.as_deref(), Some(r.as_str()));
        assert_eq!(rep.alias_classes, 1);
    }

    #[test]
    fn received_values_start_at_step_zero() {
        let (g, r, _, _) = chain_graph();
        // producer of the relu output on worker 0, the rest on worker 1
        let view = ScheduleView::single_batch(vec![vec![0], vec![1, 2]], ExecPolicy::InOrder);
        let (rep, _) = lifetimes(&g, &view);
        let recv = rep
            .intervals
            .iter()
            .find(|i| i.tensor == r && i.worker == 1)
            .unwrap();
        assert_eq!(recv.def, 0);
    }

    #[test]
    fn cross_worker_view_is_flagged() {
        let (g, ..) = chain_graph();
        let view = ScheduleView::single_batch(vec![vec![0], vec![1, 2]], ExecPolicy::InOrder);
        let (_, diags) = lifetimes(&g, &view);
        assert!(diags.iter().any(|d| d.code == codes::ALIAS_CROSS_WORKER));
    }

    #[test]
    fn dead_value_is_flagged() {
        let mut b = GraphBuilder::new("dead");
        let x = b.input("x", DType::F32, vec![2]);
        let r = b.op("r", OpKind::Relu, vec![x.clone()]);
        let _unused = b.op("u", OpKind::Neg, vec![x]);
        b.output(&r);
        let g = b.finish().unwrap();
        let view = ScheduleView::single_batch(vec![vec![0, 1]], ExecPolicy::InOrder);
        let (_, diags) = lifetimes(&g, &view);
        assert!(diags.iter().any(|d| d.code == codes::DEAD_VALUE));
    }
}
