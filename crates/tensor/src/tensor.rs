//! The dense row-major tensor type.
//!
//! ## Sharing and ownership
//!
//! Tensor data lives in a shared immutable buffer (`Arc<Vec<T>>`), so
//! `Tensor::clone` — and therefore `Value::clone`, cross-cluster channel
//! sends, and initializer-table fetches — is a refcount bump, not a deep
//! copy. Kernels read through [`Tensor::data`] (`&[T]`) exactly as before.
//! Mutation goes through [`Tensor::data_mut`], which is copy-on-write: it
//! clones the buffer only when another handle still shares it, so no clone
//! can ever observe another handle's writes. [`Tensor::reshaped`] shares the
//! buffer outright (same data, new shape).

use crate::{exec_err, Result};
use std::sync::Arc;

/// A dense, row-major (C-order) tensor over element type `T`.
///
/// A rank-0 tensor (empty shape) is a scalar holding exactly one element.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor<T> {
    shape: Vec<usize>,
    data: Arc<Vec<T>>,
}

impl<T: Copy + Default> Tensor<T> {
    /// Build a tensor from shape and data; errors on a size mismatch.
    pub fn new(shape: Vec<usize>, data: Vec<T>) -> Result<Self> {
        let numel: usize = shape.iter().product();
        if numel != data.len() {
            return exec_err(format!(
                "tensor shape {:?} wants {} elements, got {}",
                shape,
                numel,
                data.len()
            ));
        }
        Ok(Tensor {
            shape,
            data: Arc::new(data),
        })
    }

    /// Build a tensor that shares an existing buffer; errors on a size
    /// mismatch. The zero-copy counterpart of [`Tensor::new`].
    pub fn from_shared(shape: Vec<usize>, data: Arc<Vec<T>>) -> Result<Self> {
        let numel: usize = shape.iter().product();
        if numel != data.len() {
            return exec_err(format!(
                "tensor shape {:?} wants {} elements, got {}",
                shape,
                numel,
                data.len()
            ));
        }
        Ok(Tensor { shape, data })
    }

    /// A tensor filled with `T::default()` (zeros for numeric types).
    pub fn zeros(shape: Vec<usize>) -> Self {
        let numel = shape.iter().product();
        Tensor {
            shape,
            data: Arc::new(vec![T::default(); numel]),
        }
    }

    /// A tensor filled with a constant.
    pub fn full(shape: Vec<usize>, v: T) -> Self {
        let numel = shape.iter().product();
        Tensor {
            shape,
            data: Arc::new(vec![v; numel]),
        }
    }

    /// A rank-0 scalar.
    pub fn scalar(v: T) -> Self {
        Tensor {
            shape: vec![],
            data: Arc::new(vec![v]),
        }
    }

    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    pub fn numel(&self) -> usize {
        self.data.len()
    }

    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the elements — copy-on-write. If other handles share
    /// this buffer, they keep the old data and this tensor gets a private
    /// copy; a uniquely-owned buffer is mutated in place with no copy.
    pub fn data_mut(&mut self) -> &mut [T] {
        let v: &mut Vec<T> = Arc::make_mut(&mut self.data);
        v.as_mut_slice()
    }

    /// Mutable view of the elements, **only** when this is the sole handle
    /// to the buffer (`Arc::get_mut`). Unlike [`Tensor::data_mut`] this never
    /// copies: a shared buffer yields `None` and the caller must fall back to
    /// an allocating path. The in-place executor rewrite relies on this as
    /// its safety gate — any surviving alias (initializer table, channel
    /// message, reshape view, caller-held handle) keeps the refcount above
    /// one and forces the copy path, so no other handle can observe a write.
    pub fn try_data_mut(&mut self) -> Option<&mut [T]> {
        Arc::get_mut(&mut self.data).map(|v| v.as_mut_slice())
    }

    /// The shared buffer itself — for zero-copy reuse ([`Tensor::from_shared`])
    /// and for keying caches by buffer identity.
    pub fn data_arc(&self) -> &Arc<Vec<T>> {
        &self.data
    }

    /// Stable identity of the underlying buffer while any handle is alive.
    /// Two tensors with equal `data_ptr` share storage. Only meaningful as a
    /// cache key if the keyed entry also keeps the buffer alive (otherwise
    /// the address can be reused by a later allocation).
    pub fn data_ptr(&self) -> usize {
        Arc::as_ptr(&self.data) as usize
    }

    /// True if `self` and `other` share one underlying buffer.
    pub fn shares_data(&self, other: &Tensor<T>) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Consume into the raw parts. Unwraps the buffer without copying when
    /// this is the last handle; otherwise clones it once.
    pub fn into_parts(self) -> (Vec<usize>, Vec<T>) {
        let data = Arc::try_unwrap(self.data).unwrap_or_else(|shared| (*shared).clone());
        (self.shape, data)
    }

    /// Reinterpret with a new shape of equal element count. Shares the
    /// buffer — reshapes are free.
    pub fn reshaped(&self, shape: Vec<usize>) -> Result<Self> {
        Tensor::from_shared(shape, Arc::clone(&self.data))
    }

    /// Row-major strides for the current shape.
    pub fn strides(&self) -> Vec<usize> {
        strides_of(&self.shape)
    }

    /// The single element of a scalar / one-element tensor.
    pub fn item(&self) -> Result<T> {
        if self.data.len() != 1 {
            return exec_err(format!(
                "item() on tensor with {} elements",
                self.data.len()
            ));
        }
        Ok(self.data[0])
    }
}

/// Row-major strides for a shape.
pub fn strides_of(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// Convert a linear index into per-axis coordinates for `shape`.
pub fn unravel(mut idx: usize, shape: &[usize], coords: &mut [usize]) {
    for i in (0..shape.len()).rev() {
        coords[i] = idx % shape[i];
        idx /= shape[i];
    }
}

/// Linear offset of `coords` within a tensor of the given strides, where
/// `coords` may be longer than `strides` (leading axes are broadcast away)
/// and any axis with extent 1 contributes 0.
pub fn broadcast_offset(coords: &[usize], shape: &[usize], strides: &[usize]) -> usize {
    let lead = coords.len() - shape.len();
    let mut off = 0;
    for (i, (&s, &st)) in shape.iter().zip(strides).enumerate() {
        let c = if s == 1 { 0 } else { coords[lead + i] };
        off += c * st;
    }
    off
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape_checks() {
        let t = Tensor::new(vec![2, 3], vec![1.0f32; 6]).unwrap();
        assert_eq!(t.numel(), 6);
        assert_eq!(t.strides(), vec![3, 1]);
        assert!(Tensor::<f32>::new(vec![2, 3], vec![0.0; 5]).is_err());
        let s = Tensor::scalar(7i64);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.item().unwrap(), 7);
    }

    #[test]
    fn strides_and_unravel_roundtrip() {
        let shape = [2usize, 3, 4];
        let strides = strides_of(&shape);
        assert_eq!(strides, vec![12, 4, 1]);
        let mut coords = [0usize; 3];
        for idx in 0..24 {
            unravel(idx, &shape, &mut coords);
            let lin: usize = coords.iter().zip(&strides).map(|(c, s)| c * s).sum();
            assert_eq!(lin, idx);
        }
    }

    #[test]
    fn broadcast_offset_ignores_unit_axes() {
        // tensor of shape [1, 3] broadcast over coords in [2, 3]
        let shape = [1usize, 3];
        let strides = strides_of(&shape);
        assert_eq!(broadcast_offset(&[1, 2], &shape, &strides), 2);
        // lower-rank tensor [3] against coords [2,3]
        let shape2 = [3usize];
        let st2 = strides_of(&shape2);
        assert_eq!(broadcast_offset(&[1, 2], &shape2, &st2), 2);
    }

    #[test]
    fn reshaped_checks_numel() {
        let t = Tensor::new(vec![2, 3], vec![0i64; 6]).unwrap();
        assert!(t.reshaped(vec![3, 2]).is_ok());
        assert!(t.reshaped(vec![4, 2]).is_err());
    }

    #[test]
    fn clone_shares_reshape_shares_into_parts_unwraps() {
        let t = Tensor::new(vec![2, 3], vec![1.0f32; 6]).unwrap();
        let c = t.clone();
        assert!(t.shares_data(&c));
        assert_eq!(t.data_ptr(), c.data_ptr());
        let r = t.reshaped(vec![3, 2]).unwrap();
        assert!(t.shares_data(&r));
        drop((c, r));
        // last handle: into_parts must not copy (element pointer preserved)
        let elems_before = t.data().as_ptr();
        let (_, data) = t.into_parts();
        assert_eq!(data.as_ptr(), elems_before);
        assert_eq!(data.len(), 6);
    }

    #[test]
    fn try_data_mut_requires_unique_ownership() {
        let mut a = Tensor::new(vec![2], vec![1.0f32, 2.0]).unwrap();
        let b = a.clone();
        assert!(a.try_data_mut().is_none(), "shared buffer must refuse");
        drop(b);
        let p = a.data_ptr();
        a.try_data_mut().unwrap()[0] = 9.0;
        assert_eq!(a.data(), &[9.0, 2.0]);
        assert_eq!(a.data_ptr(), p, "unique mutation must be in place");
    }

    #[test]
    fn data_mut_is_copy_on_write() {
        let a = Tensor::new(vec![3], vec![1.0f32, 2.0, 3.0]).unwrap();
        let mut b = a.clone();
        b.data_mut()[0] = 99.0;
        assert_eq!(a.data(), &[1.0, 2.0, 3.0], "original must be untouched");
        assert_eq!(b.data(), &[99.0, 2.0, 3.0]);
        assert!(!a.shares_data(&b), "write must have unshared the buffer");
        // uniquely-owned: mutation is in place, no new allocation
        let p = b.data_ptr();
        b.data_mut()[1] = 5.0;
        assert_eq!(b.data_ptr(), p);
    }
}
