//! The dense row-major tensor type.

use crate::{exec_err, Result};

/// A dense, row-major (C-order) tensor over element type `T`.
///
/// A rank-0 tensor (empty shape) is a scalar holding exactly one element.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor<T> {
    shape: Vec<usize>,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor<T> {
    /// Build a tensor from shape and data; errors on a size mismatch.
    pub fn new(shape: Vec<usize>, data: Vec<T>) -> Result<Self> {
        let numel: usize = shape.iter().product();
        if numel != data.len() {
            return exec_err(format!(
                "tensor shape {:?} wants {} elements, got {}",
                shape,
                numel,
                data.len()
            ));
        }
        Ok(Tensor { shape, data })
    }

    /// A tensor filled with `T::default()` (zeros for numeric types).
    pub fn zeros(shape: Vec<usize>) -> Self {
        let numel = shape.iter().product();
        Tensor {
            shape,
            data: vec![T::default(); numel],
        }
    }

    /// A tensor filled with a constant.
    pub fn full(shape: Vec<usize>, v: T) -> Self {
        let numel = shape.iter().product();
        Tensor {
            shape,
            data: vec![v; numel],
        }
    }

    /// A rank-0 scalar.
    pub fn scalar(v: T) -> Self {
        Tensor {
            shape: vec![],
            data: vec![v],
        }
    }

    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    pub fn numel(&self) -> usize {
        self.data.len()
    }

    pub fn data(&self) -> &[T] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the raw parts.
    pub fn into_parts(self) -> (Vec<usize>, Vec<T>) {
        (self.shape, self.data)
    }

    /// Reinterpret with a new shape of equal element count.
    pub fn reshaped(&self, shape: Vec<usize>) -> Result<Self> {
        Tensor::new(shape, self.data.clone())
    }

    /// Row-major strides for the current shape.
    pub fn strides(&self) -> Vec<usize> {
        strides_of(&self.shape)
    }

    /// The single element of a scalar / one-element tensor.
    pub fn item(&self) -> Result<T> {
        if self.data.len() != 1 {
            return exec_err(format!(
                "item() on tensor with {} elements",
                self.data.len()
            ));
        }
        Ok(self.data[0])
    }
}

/// Row-major strides for a shape.
pub fn strides_of(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// Convert a linear index into per-axis coordinates for `shape`.
pub fn unravel(mut idx: usize, shape: &[usize], coords: &mut [usize]) {
    for i in (0..shape.len()).rev() {
        coords[i] = idx % shape[i];
        idx /= shape[i];
    }
}

/// Linear offset of `coords` within a tensor of the given strides, where
/// `coords` may be longer than `strides` (leading axes are broadcast away)
/// and any axis with extent 1 contributes 0.
pub fn broadcast_offset(coords: &[usize], shape: &[usize], strides: &[usize]) -> usize {
    let lead = coords.len() - shape.len();
    let mut off = 0;
    for (i, (&s, &st)) in shape.iter().zip(strides).enumerate() {
        let c = if s == 1 { 0 } else { coords[lead + i] };
        off += c * st;
    }
    off
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape_checks() {
        let t = Tensor::new(vec![2, 3], vec![1.0f32; 6]).unwrap();
        assert_eq!(t.numel(), 6);
        assert_eq!(t.strides(), vec![3, 1]);
        assert!(Tensor::<f32>::new(vec![2, 3], vec![0.0; 5]).is_err());
        let s = Tensor::scalar(7i64);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.item().unwrap(), 7);
    }

    #[test]
    fn strides_and_unravel_roundtrip() {
        let shape = [2usize, 3, 4];
        let strides = strides_of(&shape);
        assert_eq!(strides, vec![12, 4, 1]);
        let mut coords = [0usize; 3];
        for idx in 0..24 {
            unravel(idx, &shape, &mut coords);
            let lin: usize = coords.iter().zip(&strides).map(|(c, s)| c * s).sum();
            assert_eq!(lin, idx);
        }
    }

    #[test]
    fn broadcast_offset_ignores_unit_axes() {
        // tensor of shape [1, 3] broadcast over coords in [2, 3]
        let shape = [1usize, 3];
        let strides = strides_of(&shape);
        assert_eq!(broadcast_offset(&[1, 2], &shape, &strides), 2);
        // lower-rank tensor [3] against coords [2,3]
        let shape2 = [3usize];
        let st2 = strides_of(&shape2);
        assert_eq!(broadcast_offset(&[1, 2], &shape2, &st2), 2);
    }

    #[test]
    fn reshaped_checks_numel() {
        let t = Tensor::new(vec![2, 3], vec![0i64; 6]).unwrap();
        assert!(t.reshaped(vec![3, 2]).is_ok());
        assert!(t.reshaped(vec![4, 2]).is_err());
    }
}
