//! Matrix-multiply kernels: `MatMul` (batched, broadcasting) and `Gemm`.

use crate::ctx::ExecCtx;
use crate::tensor::{strides_of, unravel, Tensor};
use crate::{exec_err, Result};
use ramiel_ir::shape::broadcast;
use rayon::prelude::*;

/// `out[m×n] += a[m×k] · b[k×n]`, row-major, ikj loop order.
fn mm_accumulate(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Single 2-D matrix product, optionally row-parallel over the intra-op pool.
pub fn mm(ctx: &ExecCtx, a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    if ctx.parallel() && m >= 2 && m * k * n >= 16_384 {
        ctx.install(|| {
            out.par_chunks_mut(n).enumerate().for_each(|(i, orow)| {
                let arow = &a[i * k..(i + 1) * k];
                for (kk, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n..(kk + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            });
        });
    } else {
        mm_accumulate(a, b, &mut out, m, k, n);
    }
    out
}

/// Batched matmul with numpy broadcasting over the leading axes.
pub fn matmul(ctx: &ExecCtx, a: &Tensor<f32>, b: &Tensor<f32>) -> Result<Tensor<f32>> {
    let (ra, rb) = (a.rank(), b.rank());
    if ra < 2 || rb < 2 {
        return exec_err("MatMul operands must have rank >= 2");
    }
    let (m, k1) = (a.shape()[ra - 2], a.shape()[ra - 1]);
    let (k2, n) = (b.shape()[rb - 2], b.shape()[rb - 1]);
    if k1 != k2 {
        return exec_err(format!("MatMul inner dims {k1} != {k2}"));
    }
    let batch = match broadcast(&a.shape()[..ra - 2], &b.shape()[..rb - 2]) {
        Some(s) => s,
        None => return exec_err("MatMul batch dims do not broadcast"),
    };
    let nb: usize = batch.iter().product();
    let mut out_shape = batch.clone();
    out_shape.push(m);
    out_shape.push(n);
    let mut out = vec![0.0f32; nb * m * n];

    // Per-batch offsets honoring broadcast on the leading dims.
    let a_batch_shape = &a.shape()[..ra - 2];
    let b_batch_shape = &b.shape()[..rb - 2];
    let sa = strides_of(a_batch_shape);
    let sb = strides_of(b_batch_shape);
    let mut coords = vec![0usize; batch.len()];
    for bi in 0..nb {
        unravel(bi, &batch, &mut coords);
        let ao = crate::tensor::broadcast_offset(&coords, a_batch_shape, &sa) * m * k1;
        let bo = crate::tensor::broadcast_offset(&coords, b_batch_shape, &sb) * k1 * n;
        let res = mm(
            ctx,
            &a.data()[ao..ao + m * k1],
            &b.data()[bo..bo + k1 * n],
            m,
            k1,
            n,
        );
        out[bi * m * n..(bi + 1) * m * n].copy_from_slice(&res);
    }
    Tensor::new(out_shape, out)
}

/// Fully-connected `y = x · Wᵀ + bias` (`transB=1` Gemm) or `x · W + bias`.
pub fn gemm(
    ctx: &ExecCtx,
    x: &Tensor<f32>,
    w: &Tensor<f32>,
    bias: Option<&Tensor<f32>>,
    trans_b: bool,
) -> Result<Tensor<f32>> {
    if x.rank() != 2 || w.rank() != 2 {
        return exec_err("Gemm operands must be 2-D");
    }
    let (m, k) = (x.shape()[0], x.shape()[1]);
    let (n, wk) = if trans_b {
        (w.shape()[0], w.shape()[1])
    } else {
        (w.shape()[1], w.shape()[0])
    };
    if k != wk {
        return exec_err(format!("Gemm inner dims {k} != {wk}"));
    }
    // Materialize W in [k, n] layout so mm can stream rows.
    let wkn: Vec<f32> = if trans_b {
        let mut t = vec![0.0f32; k * n];
        for j in 0..n {
            for kk in 0..k {
                t[kk * n + j] = w.data()[j * k + kk];
            }
        }
        t
    } else {
        w.data().to_vec()
    };
    let mut out = mm(ctx, x.data(), &wkn, m, k, n);
    if let Some(b) = bias {
        if b.numel() != n {
            return exec_err(format!("Gemm bias length {} != {n}", b.numel()));
        }
        for row in out.chunks_mut(n) {
            for (o, &bv) in row.iter_mut().zip(b.data()) {
                *o += bv;
            }
        }
    }
    Tensor::new(vec![m, n], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: Vec<usize>, data: Vec<f32>) -> Tensor<f32> {
        Tensor::new(shape, data).unwrap()
    }

    #[test]
    fn mm_2x2() {
        let ctx = ExecCtx::sequential();
        let a = t(vec![2, 2], vec![1., 2., 3., 4.]);
        let b = t(vec![2, 2], vec![5., 6., 7., 8.]);
        let y = matmul(&ctx, &a, &b).unwrap();
        assert_eq!(y.data(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn batched_matmul_broadcasts_rhs() {
        let ctx = ExecCtx::sequential();
        // a: [2, 1, 2] batch of row vectors; b: [2, 3] shared
        let a = t(vec![2, 1, 2], vec![1., 0., 0., 1.]);
        let b = t(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let y = matmul(&ctx, &a, &b).unwrap();
        assert_eq!(y.shape(), &[2, 1, 3]);
        assert_eq!(y.data(), &[1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    fn gemm_trans_b_with_bias() {
        let ctx = ExecCtx::sequential();
        let x = t(vec![1, 3], vec![1., 2., 3.]);
        // W [2,3] with transB: y = x·Wᵀ → [1,2]
        let w = t(vec![2, 3], vec![1., 0., 0., 0., 1., 0.]);
        let b = t(vec![2], vec![10., 20.]);
        let y = gemm(&ctx, &x, &w, Some(&b), true).unwrap();
        assert_eq!(y.data(), &[11., 22.]);
    }

    #[test]
    fn gemm_untransposed() {
        let ctx = ExecCtx::sequential();
        let x = t(vec![1, 2], vec![1., 2.]);
        let w = t(vec![2, 2], vec![1., 2., 3., 4.]);
        let y = gemm(&ctx, &x, &w, None, false).unwrap();
        assert_eq!(y.data(), &[7., 10.]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = ExecCtx::sequential();
        let par = ExecCtx::with_intra_op(4);
        let a = crate::value::Value::random_f32(vec![64, 96], 7);
        let b = crate::value::Value::random_f32(vec![96, 48], 8);
        let (a, b) = (a.f32().unwrap().clone(), b.f32().unwrap().clone());
        let y1 = matmul(&seq, &a, &b).unwrap();
        let y2 = matmul(&par, &a, &b).unwrap();
        for (p, q) in y1.data().iter().zip(y2.data()) {
            assert!((p - q).abs() < 1e-4);
        }
    }

    #[test]
    fn shape_errors() {
        let ctx = ExecCtx::sequential();
        let a = t(vec![2, 3], vec![0.; 6]);
        let b = t(vec![2, 3], vec![0.; 6]);
        assert!(matmul(&ctx, &a, &b).is_err());
        let w = t(vec![4, 4], vec![0.; 16]);
        assert!(gemm(&ctx, &a, &w, None, false).is_err());
    }
}
