//! Matrix-multiply kernels: `MatMul` (batched, broadcasting) and `Gemm`.
//!
//! All paths through [`mm`] — sequential, row-block parallel, column-tile
//! parallel — accumulate each output element in ascending-`kk` order, so
//! they are bit-identical to one another. The runtime's cross-executor
//! equivalence tests rely on this. There is deliberately no `av == 0.0`
//! skip: besides costing a branch per element on dense inputs, it broke
//! IEEE semantics (`0·∞` and `0·NaN` must produce NaN, not be elided).

use crate::ctx::ExecCtx;
use crate::tensor::{strides_of, unravel, Tensor};
use crate::{exec_err, Result};
use ramiel_ir::shape::broadcast;
use rayon::prelude::*;

/// Row-block height: a block of `MB` output rows reuses each `b` row `MB`
/// times while it is hot in cache.
const MB: usize = 8;
/// Column-tile width: 512 f32 = 2 KiB per `b`-row slice and 16 KiB per
/// `MB×NB` output block — comfortably L1-resident.
const NB: usize = 512;

/// `oblk[..][j0..j0+nb] += a · b` over a contiguous block of output rows
/// starting at row `i0` (`oblk` spans whole rows of width `n`).
/// Accumulation per element is ascending `kk`.
#[allow(clippy::too_many_arguments)] // hot inner kernel: scalars beat a param struct here
fn mm_block(
    a: &[f32],
    b: &[f32],
    oblk: &mut [f32],
    i0: usize,
    k: usize,
    n: usize,
    j0: usize,
    nb: usize,
) {
    let rows = oblk.len() / n;
    for kk in 0..k {
        let brow = &b[kk * n + j0..kk * n + j0 + nb];
        for r in 0..rows {
            let av = a[(i0 + r) * k + kk];
            let orow = &mut oblk[r * n + j0..r * n + j0 + nb];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Single 2-D matrix product `a[m×k] · b[k×n]`, cache-blocked, optionally
/// parallel over the intra-op pool. With enough rows the parallel split is
/// by row blocks; when `m` is small relative to the pool it splits columns
/// too, so parallelism is not capped at `m` tasks.
pub fn mm(ctx: &ExecCtx, a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    // The SIMD backend swaps in the panel-packed lane-unrolled microkernels;
    // per-element accumulation order is identical, so both produce the same
    // bits.
    if ctx.backend() == crate::ctx::KernelBackend::SimdF32 {
        return super::simd::mm(ctx, a, b, m, k, n);
    }
    let mut out = vec![0.0f32; m * n];
    if !(ctx.parallel() && m * k * n >= 16_384) {
        for (bi, oblk) in out.chunks_mut(n * MB).enumerate() {
            for j0 in (0..n).step_by(NB) {
                mm_block(a, b, oblk, bi * MB, k, n, j0, NB.min(n - j0));
            }
        }
        return out;
    }
    let threads = ctx.intra_op_threads();
    if m >= 2 * threads {
        // Enough rows: parallelize over row blocks, column-tile inside.
        let rows_per = m.div_ceil(4 * threads).clamp(1, MB);
        ctx.install(|| {
            out.par_chunks_mut(n * rows_per)
                .enumerate()
                .for_each(|(bi, oblk)| {
                    for j0 in (0..n).step_by(NB) {
                        mm_block(a, b, oblk, bi * rows_per, k, n, j0, NB.min(n - j0));
                    }
                });
        });
    } else {
        // Few rows (transformer Gemms: m = batch·seq, n large): one task per
        // (row, column-tile) so the pool still fills.
        let mut tiles: Vec<(usize, usize, &mut [f32])> = Vec::with_capacity(m * n.div_ceil(NB));
        let mut rest = out.as_mut_slice();
        let mut i = 0;
        while !rest.is_empty() {
            let (mut row, r) = std::mem::take(&mut rest).split_at_mut(n);
            rest = r;
            let mut j0 = 0;
            while !row.is_empty() {
                let w = NB.min(row.len());
                let (tile, rr) = std::mem::take(&mut row).split_at_mut(w);
                tiles.push((i, j0, tile));
                j0 += w;
                row = rr;
            }
            i += 1;
        }
        ctx.install(|| {
            tiles.into_par_iter().for_each(|(i, j0, tile)| {
                let arow = &a[i * k..(i + 1) * k];
                let nb = tile.len();
                for (kk, &av) in arow.iter().enumerate() {
                    let brow = &b[kk * n + j0..kk * n + j0 + nb];
                    for (o, &bv) in tile.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            });
        });
    }
    out
}

/// Batched matmul with numpy broadcasting over the leading axes.
pub fn matmul(ctx: &ExecCtx, a: &Tensor<f32>, b: &Tensor<f32>) -> Result<Tensor<f32>> {
    let (ra, rb) = (a.rank(), b.rank());
    if ra < 2 || rb < 2 {
        return exec_err("MatMul operands must have rank >= 2");
    }
    let (m, k1) = (a.shape()[ra - 2], a.shape()[ra - 1]);
    let (k2, n) = (b.shape()[rb - 2], b.shape()[rb - 1]);
    if k1 != k2 {
        return exec_err(format!("MatMul inner dims {k1} != {k2}"));
    }
    let batch = match broadcast(&a.shape()[..ra - 2], &b.shape()[..rb - 2]) {
        Some(s) => s,
        None => return exec_err("MatMul batch dims do not broadcast"),
    };
    let nb: usize = batch.iter().product();
    let mut out_shape = batch.clone();
    out_shape.push(m);
    out_shape.push(n);
    let mut out = vec![0.0f32; nb * m * n];

    // Per-batch offsets honoring broadcast on the leading dims.
    let a_batch_shape = &a.shape()[..ra - 2];
    let b_batch_shape = &b.shape()[..rb - 2];
    let sa = strides_of(a_batch_shape);
    let sb = strides_of(b_batch_shape);
    let mut coords = vec![0usize; batch.len()];
    for bi in 0..nb {
        unravel(bi, &batch, &mut coords);
        let ao = crate::tensor::broadcast_offset(&coords, a_batch_shape, &sa) * m * k1;
        let bo = crate::tensor::broadcast_offset(&coords, b_batch_shape, &sb) * k1 * n;
        let res = mm(
            ctx,
            &a.data()[ao..ao + m * k1],
            &b.data()[bo..bo + k1 * n],
            m,
            k1,
            n,
        );
        out[bi * m * n..(bi + 1) * m * n].copy_from_slice(&res);
    }
    Tensor::new(out_shape, out)
}

/// Fully-connected `y = x · Wᵀ + bias` (`transB=1` Gemm) or `x · W + bias`.
pub fn gemm(
    ctx: &ExecCtx,
    x: &Tensor<f32>,
    w: &Tensor<f32>,
    bias: Option<&Tensor<f32>>,
    trans_b: bool,
) -> Result<Tensor<f32>> {
    if x.rank() != 2 || w.rank() != 2 {
        return exec_err("Gemm operands must be 2-D");
    }
    let (m, k) = (x.shape()[0], x.shape()[1]);
    let (n, wk) = if trans_b {
        (w.shape()[0], w.shape()[1])
    } else {
        (w.shape()[1], w.shape()[0])
    };
    if k != wk {
        return exec_err(format!("Gemm inner dims {k} != {wk}"));
    }
    // W in [k, n] layout so mm can stream rows. For transB weights the
    // transpose is packed once per plan and found by buffer identity on
    // every later call; untransposed weights are already in layout.
    let packed;
    let wkn: &[f32] = if trans_b {
        packed = ctx.packed().gemm_kn(w, k, n);
        &packed
    } else {
        w.data()
    };
    let mut out = mm(ctx, x.data(), wkn, m, k, n);
    if let Some(b) = bias {
        if b.numel() != n {
            return exec_err(format!("Gemm bias length {} != {n}", b.numel()));
        }
        for row in out.chunks_mut(n) {
            for (o, &bv) in row.iter_mut().zip(b.data()) {
                *o += bv;
            }
        }
    }
    Tensor::new(vec![m, n], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: Vec<usize>, data: Vec<f32>) -> Tensor<f32> {
        Tensor::new(shape, data).unwrap()
    }

    #[test]
    fn mm_2x2() {
        let ctx = ExecCtx::sequential();
        let a = t(vec![2, 2], vec![1., 2., 3., 4.]);
        let b = t(vec![2, 2], vec![5., 6., 7., 8.]);
        let y = matmul(&ctx, &a, &b).unwrap();
        assert_eq!(y.data(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn batched_matmul_broadcasts_rhs() {
        let ctx = ExecCtx::sequential();
        // a: [2, 1, 2] batch of row vectors; b: [2, 3] shared
        let a = t(vec![2, 1, 2], vec![1., 0., 0., 1.]);
        let b = t(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let y = matmul(&ctx, &a, &b).unwrap();
        assert_eq!(y.shape(), &[2, 1, 3]);
        assert_eq!(y.data(), &[1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    fn gemm_trans_b_with_bias() {
        let ctx = ExecCtx::sequential();
        let x = t(vec![1, 3], vec![1., 2., 3.]);
        // W [2,3] with transB: y = x·Wᵀ → [1,2]
        let w = t(vec![2, 3], vec![1., 0., 0., 0., 1., 0.]);
        let b = t(vec![2], vec![10., 20.]);
        let y = gemm(&ctx, &x, &w, Some(&b), true).unwrap();
        assert_eq!(y.data(), &[11., 22.]);
    }

    #[test]
    fn gemm_untransposed() {
        let ctx = ExecCtx::sequential();
        let x = t(vec![1, 2], vec![1., 2.]);
        let w = t(vec![2, 2], vec![1., 2., 3., 4.]);
        let y = gemm(&ctx, &x, &w, None, false).unwrap();
        assert_eq!(y.data(), &[7., 10.]);
    }

    #[test]
    fn gemm_packs_trans_b_weight_once() {
        let ctx = ExecCtx::sequential();
        let x = crate::value::Value::random_f32(vec![4, 16], 1);
        let w = crate::value::Value::random_f32(vec![8, 16], 2);
        let (x, w) = (x.f32().unwrap().clone(), w.f32().unwrap().clone());
        let y1 = gemm(&ctx, &x, &w, None, true).unwrap();
        let y2 = gemm(&ctx, &x, &w, None, true).unwrap();
        assert_eq!(y1, y2);
        let (hits, misses) = ctx.packed().stats();
        assert_eq!((hits, misses), (1, 1), "second call must hit the cache");
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = ExecCtx::sequential();
        let par = ExecCtx::with_intra_op(4);
        let a = crate::value::Value::random_f32(vec![64, 96], 7);
        let b = crate::value::Value::random_f32(vec![96, 48], 8);
        let (a, b) = (a.f32().unwrap().clone(), b.f32().unwrap().clone());
        let y1 = matmul(&seq, &a, &b).unwrap();
        let y2 = matmul(&par, &a, &b).unwrap();
        for (p, q) in y1.data().iter().zip(y2.data()) {
            assert!((p - q).abs() < 1e-4);
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        // Covers both parallel splits: many rows (row-block path) and few
        // rows with a wide output (column-tile path).
        let seq = ExecCtx::sequential();
        let par = ExecCtx::with_intra_op(4);
        for (m, k, n, seed) in [(64, 96, 48, 11), (3, 128, 1100, 12)] {
            let a = crate::value::Value::random_f32(vec![m, k], seed);
            let b = crate::value::Value::random_f32(vec![k, n], seed + 100);
            let (a, b) = (a.f32().unwrap().clone(), b.f32().unwrap().clone());
            let y1 = matmul(&seq, &a, &b).unwrap();
            let y2 = matmul(&par, &a, &b).unwrap();
            assert_eq!(
                y1.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
                y2.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
                "mm {m}x{k}x{n} must be bit-identical across contexts"
            );
        }
    }

    #[test]
    fn zero_times_inf_and_nan_propagate() {
        // Regression: mm used to skip `av == 0.0` operands, so a zero in
        // `a` silently swallowed an ∞ or NaN in `b`. IEEE says 0·∞ = NaN.
        let seq = ExecCtx::sequential();
        let par = ExecCtx::with_intra_op(4);
        let (m, k, n) = (4, 8, 512); // m·k·n ≥ 16384 → parallel path engages
        let mut a = vec![1.0f32; m * k];
        for i in 0..m {
            a[i * k] = 0.0; // kk = 0 contribution is 0·b
        }
        let mut b = vec![1.0f32; k * n];
        b[0] = f32::INFINITY; // row kk=0, col 0
        b[1] = f32::NAN; // row kk=0, col 1
        for ctx in [&seq, &par] {
            let y = mm(ctx, &a, &b, m, k, n);
            for i in 0..m {
                assert!(y[i * n].is_nan(), "0·∞ must yield NaN (row {i})");
                assert!(y[i * n + 1].is_nan(), "0·NaN must yield NaN (row {i})");
                assert_eq!(y[i * n + 2], 7.0, "finite columns unaffected");
            }
        }
    }

    #[test]
    fn shape_errors() {
        let ctx = ExecCtx::sequential();
        let a = t(vec![2, 3], vec![0.; 6]);
        let b = t(vec![2, 3], vec![0.; 6]);
        assert!(matmul(&ctx, &a, &b).is_err());
        let w = t(vec![4, 4], vec![0.; 16]);
        assert!(gemm(&ctx, &a, &w, None, false).is_err());
    }
}
