//! Per-tensor symmetric i8 quantized kernels for the heavy ops
//! (`Gemm`/`MatMul`/`Conv`), selected by `KernelBackend::QuantI8`.
//!
//! ## Scheme
//!
//! A tensor is quantized with one scale: `scale = max_abs / 127`, `q =
//! round(v / scale)` clamped to `[-127, 127]` (the symmetric range; -128 is
//! unused so negation stays closed). Zero-point is always 0, which makes
//! padding in conv exact and keeps the kernels additive.
//!
//! Constant weights are quantized **once per plan** through the
//! [`crate::pack::PackedWeightCache`] carried by the `ExecCtx` (same
//! buffer-identity keying as the f32 packed weights); activations are
//! quantized at the kernel edge on every call. Accumulation is exact i32 —
//! `127·127·k` stays far below `i32::MAX` for every model shape here — and
//! the single dequantize multiply happens at the output edge.
//!
//! ## Conformance contract
//!
//! Integer accumulation is associative, so `QuantI8` is bit-identical
//! *across executors* for a fixed plan. Against the f32 backends it is only
//! tolerance-close; `tests/quant_conformance.rs` pins both properties.

use crate::ctx::ExecCtx;
use crate::kernels::conv::ConvSpec;
use crate::tensor::{strides_of, unravel, Tensor};
use crate::{exec_err, Result};
use ramiel_ir::shape::broadcast;
use rayon::prelude::*;

/// Quantize `data` with one symmetric per-tensor scale. Returns the i8
/// codes and the scale such that `code · scale ≈ value` with absolute error
/// ≤ `scale / 2` for every finite input (non-finite inputs saturate to
/// ±127, NaN to 0). All-zero (and empty) tensors get scale 1.0 so
/// dequantization is exact for them.
pub fn quantize_symmetric(data: &[f32]) -> (Vec<i8>, f32) {
    let mut max_abs = 0.0f32;
    for &v in data {
        let a = v.abs();
        if a.is_finite() && a > max_abs {
            max_abs = a;
        }
    }
    let scale = if max_abs == 0.0 {
        1.0
    } else {
        // `max` guards subnormal tensors whose `max_abs / 127` would
        // underflow to zero and take the whole tensor with it.
        (max_abs / 127.0).max(f32::MIN_POSITIVE)
    };
    // f64 division keeps the rounding decision exact, so the error bound
    // `|q·scale - v| ≤ scale/2` holds without slack for f32 inputs.
    let inv = 1.0f64 / scale as f64;
    let q = data
        .iter()
        .map(|&v| {
            let r = (v as f64 * inv).round();
            if r.is_nan() {
                0
            } else {
                r.clamp(-127.0, 127.0) as i8
            }
        })
        .collect();
    (q, scale)
}

/// Reconstruct f32 values from codes: `q[i] · scale`.
pub fn dequantize(q: &[i8], scale: f32) -> Vec<f32> {
    q.iter().map(|&c| c as f32 * scale).collect()
}

/// Integer matrix product `a[m×k] · b[k×n]` with i32 accumulation,
/// dequantized by `scale` at the output edge. Row-parallel over the
/// intra-op pool when one is attached; integer adds are associative, so
/// every split is exactly equal.
pub fn mm_i8(
    ctx: &ExecCtx,
    a: &[i8],
    b: &[i8],
    m: usize,
    k: usize,
    n: usize,
    scale: f32,
) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let mut out = vec![0.0f32; m * n];
    let row = |(i, orow): (usize, &mut [f32])| {
        let mut acc = vec![0i32; n];
        let arow = &a[i * k..(i + 1) * k];
        for (kk, &av) in arow.iter().enumerate() {
            let av = av as i32;
            let brow = &b[kk * n..(kk + 1) * n];
            for (s, &bv) in acc.iter_mut().zip(brow) {
                *s += av * bv as i32;
            }
        }
        for (o, &s) in orow.iter_mut().zip(&acc) {
            *o = s as f32 * scale;
        }
    };
    if ctx.parallel() && m * k * n >= 16_384 {
        ctx.install(|| {
            out.par_chunks_mut(n).enumerate().for_each(row);
        });
    } else {
        out.chunks_mut(n).enumerate().for_each(row);
    }
    out
}

/// Quantized fully-connected layer: weights come from the per-plan cache
/// (transposed to `[k, n]` when `trans_b`), activations are quantized per
/// call, bias is added in f32 after dequantization.
pub fn gemm_q(
    ctx: &ExecCtx,
    x: &Tensor<f32>,
    w: &Tensor<f32>,
    bias: Option<&Tensor<f32>>,
    trans_b: bool,
) -> Result<Tensor<f32>> {
    if x.rank() != 2 || w.rank() != 2 {
        return exec_err("Gemm operands must be 2-D");
    }
    let (m, k) = (x.shape()[0], x.shape()[1]);
    let (n, wk) = if trans_b {
        (w.shape()[0], w.shape()[1])
    } else {
        (w.shape()[1], w.shape()[0])
    };
    if k != wk {
        return exec_err(format!("Gemm inner dims {k} != {wk}"));
    }
    let wq = if trans_b {
        ctx.packed().quant_kn(w, k, n)
    } else {
        ctx.packed().quant_flat(w)
    };
    let (xq, sx) = quantize_symmetric(x.data());
    let mut out = mm_i8(ctx, &xq, &wq.data, m, k, n, sx * wq.scale);
    if let Some(b) = bias {
        if b.numel() != n {
            return exec_err(format!("Gemm bias length {} != {n}", b.numel()));
        }
        for row in out.chunks_mut(n) {
            for (o, &bv) in row.iter_mut().zip(b.data()) {
                *o += bv;
            }
        }
    }
    Tensor::new(vec![m, n], out)
}

/// Quantized batched matmul with numpy broadcasting over the leading axes.
/// Both operands are (usually) activations here, so both are quantized per
/// call with their own per-tensor scales.
pub fn matmul_q(ctx: &ExecCtx, a: &Tensor<f32>, b: &Tensor<f32>) -> Result<Tensor<f32>> {
    let (ra, rb) = (a.rank(), b.rank());
    if ra < 2 || rb < 2 {
        return exec_err("MatMul operands must have rank >= 2");
    }
    let (m, k1) = (a.shape()[ra - 2], a.shape()[ra - 1]);
    let (k2, n) = (b.shape()[rb - 2], b.shape()[rb - 1]);
    if k1 != k2 {
        return exec_err(format!("MatMul inner dims {k1} != {k2}"));
    }
    let batch = match broadcast(&a.shape()[..ra - 2], &b.shape()[..rb - 2]) {
        Some(s) => s,
        None => return exec_err("MatMul batch dims do not broadcast"),
    };
    let nb: usize = batch.iter().product();
    let mut out_shape = batch.clone();
    out_shape.push(m);
    out_shape.push(n);

    let (aq, sa) = quantize_symmetric(a.data());
    let (bq, sb) = quantize_symmetric(b.data());
    let scale = sa * sb;
    let mut out = vec![0.0f32; nb * m * n];

    let a_batch_shape = &a.shape()[..ra - 2];
    let b_batch_shape = &b.shape()[..rb - 2];
    let sas = strides_of(a_batch_shape);
    let sbs = strides_of(b_batch_shape);
    let mut coords = vec![0usize; batch.len()];
    for bi in 0..nb {
        unravel(bi, &batch, &mut coords);
        let ao = crate::tensor::broadcast_offset(&coords, a_batch_shape, &sas) * m * k1;
        let bo = crate::tensor::broadcast_offset(&coords, b_batch_shape, &sbs) * k1 * n;
        let res = mm_i8(
            ctx,
            &aq[ao..ao + m * k1],
            &bq[bo..bo + k1 * n],
            m,
            k1,
            n,
            scale,
        );
        out[bi * m * n..(bi + 1) * m * n].copy_from_slice(&res);
    }
    Tensor::new(out_shape, out)
}

/// One quantized output image: i32 accumulation over all taps, one
/// dequantize + bias add at the end. Mirrors the f32 `conv_one_output`
/// loop structure (borders clipped per tap, zero-point 0 makes padding
/// exact).
#[allow(clippy::too_many_arguments)]
fn conv_one_output_i8(
    x: &[i8],
    w: &[i8],
    out: &mut [f32],
    bias: f32,
    scale: f32,
    spec: &ConvSpec,
    cg: usize,
    h: usize,
    wd: usize,
    ho: usize,
    wo: usize,
) {
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.pads;
    let mut acc = vec![0i32; ho * wo];
    for c in 0..cg {
        let xc = &x[c * h * wd..(c + 1) * h * wd];
        let wc = &w[c * kh * kw..(c + 1) * kh * kw];
        for oy in 0..ho {
            let iy0 = (oy * sh) as isize - ph as isize;
            let arow = &mut acc[oy * wo..(oy + 1) * wo];
            for ky in 0..kh {
                let iy = iy0 + ky as isize;
                if iy < 0 || iy as usize >= h {
                    continue;
                }
                let xrow = &xc[(iy as usize) * wd..(iy as usize + 1) * wd];
                let wrow = &wc[ky * kw..(ky + 1) * kw];
                for (ox, o) in arow.iter_mut().enumerate() {
                    let ix0 = (ox * sw) as isize - pw as isize;
                    for (kx, &wv) in wrow.iter().enumerate() {
                        let ix = ix0 + kx as isize;
                        if ix >= 0 && (ix as usize) < wd {
                            *o += xrow[ix as usize] as i32 * wv as i32;
                        }
                    }
                }
            }
        }
    }
    for (o, &s) in out.iter_mut().zip(&acc) {
        *o = bias + s as f32 * scale;
    }
}

/// Quantized grouped 2-D convolution: `x` NCHW, `w` OIHW from the per-plan
/// quantized-weight cache, optional f32 bias. Same shape/attribute
/// validation and the same pointwise fast path as the f32 kernel.
pub fn conv2d_q(
    ctx: &ExecCtx,
    x: &Tensor<f32>,
    w: &Tensor<f32>,
    bias: Option<&Tensor<f32>>,
    spec: &ConvSpec,
) -> Result<Tensor<f32>> {
    if x.rank() != 4 || w.rank() != 4 {
        return exec_err("conv2d expects NCHW input and OIHW weight");
    }
    crate::kernels::conv::check_spec(spec)?;
    let (n, c, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (m, cg) = (w.shape()[0], w.shape()[1]);
    let g = spec.groups;
    if c != cg * g || m % g != 0 {
        return exec_err(format!(
            "conv2d channel mismatch: input {c}, weight {cg}×{g} groups, out {m}"
        ));
    }
    if (w.shape()[2], w.shape()[3]) != spec.kernel {
        return exec_err("conv2d kernel attribute disagrees with weight shape");
    }
    if let Some(b) = bias {
        if b.numel() != m {
            return exec_err(format!("conv2d bias length {} != {m}", b.numel()));
        }
    }
    let wq = ctx.packed().quant_flat(w);
    let (xq, sx) = quantize_symmetric(x.data());
    let scale = sx * wq.scale;

    if spec.kernel == (1, 1) && spec.stride == (1, 1) && spec.pads == (0, 0) && g == 1 {
        let hw = h * wd;
        let mut out = vec![0.0f32; n * m * hw];
        for ni in 0..n {
            let xn = &xq[ni * c * hw..(ni + 1) * c * hw];
            let prod = mm_i8(ctx, &wq.data, xn, m, c, hw, scale);
            out[ni * m * hw..(ni + 1) * m * hw].copy_from_slice(&prod);
        }
        if let Some(b) = bias {
            for (mi, img) in out.chunks_mut(hw).enumerate() {
                let bv = b.data()[mi % m];
                for v in img {
                    *v += bv;
                }
            }
        }
        return Tensor::new(vec![n, m, h, wd], out);
    }

    let (kh, kw) = spec.kernel;
    let ho = match (h + 2 * spec.pads.0).checked_sub(kh) {
        Some(v) => v / spec.stride.0 + 1,
        None => return exec_err("conv2d kernel larger than padded input"),
    };
    let wo = match (wd + 2 * spec.pads.1).checked_sub(kw) {
        Some(v) => v / spec.stride.1 + 1,
        None => return exec_err("conv2d kernel larger than padded input"),
    };
    let m_per_g = m / g;
    let mut out = vec![0.0f32; n * m * ho * wo];

    let run = |(idx, oimg): (usize, &mut [f32])| {
        let (ni, mi) = (idx / m, idx % m);
        let gi = mi / m_per_g;
        let xg = &xq[ni * c * h * wd + gi * cg * h * wd..][..cg * h * wd];
        let wm = &wq.data[mi * cg * kh * kw..(mi + 1) * cg * kh * kw];
        let bv = bias.map_or(0.0, |b| b.data()[mi]);
        conv_one_output_i8(xg, wm, oimg, bv, scale, spec, cg, h, wd, ho, wo);
    };

    if ctx.parallel() && n * m >= 2 {
        ctx.install(|| {
            out.par_chunks_mut(ho * wo).enumerate().for_each(run);
        });
    } else {
        out.chunks_mut(ho * wo).enumerate().for_each(run);
    }
    Tensor::new(vec![n, m, ho, wo], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let vals = vec![1.0f32, -2.5, 0.31, 100.0, -99.9, 0.0, -0.0, 3.7e-3];
        let (q, scale) = quantize_symmetric(&vals);
        let deq = dequantize(&q, scale);
        for (v, d) in vals.iter().zip(&deq) {
            assert!(
                (v - d).abs() <= scale * 0.5,
                "{v} -> {d} exceeds half-step {scale}"
            );
        }
    }

    #[test]
    fn degenerate_tensors_quantize_safely() {
        // all zeros (incl. -0.0)
        let (q, s) = quantize_symmetric(&[0.0, -0.0]);
        assert_eq!(q, vec![0, 0]);
        assert_eq!(s, 1.0);
        assert_eq!(dequantize(&q, s), vec![0.0, 0.0]);
        // empty
        let (q, s) = quantize_symmetric(&[]);
        assert!(q.is_empty());
        assert_eq!(s, 1.0);
        // subnormal-only: scale must not underflow to 0
        let (_, s) = quantize_symmetric(&[1.0e-40, -3.0e-41]);
        assert!(s > 0.0 && s.is_finite());
        // non-finite values saturate instead of poisoning the scale
        let (q, s) = quantize_symmetric(&[f32::INFINITY, f32::NEG_INFINITY, f32::NAN, 1.0]);
        assert!(s.is_finite());
        assert_eq!(q[0], 127);
        assert_eq!(q[1], -127);
        assert_eq!(q[2], 0);
    }

    #[test]
    fn mm_i8_matches_exact_integer_reference() {
        let (m, k, n) = (3, 5, 4);
        let a: Vec<i8> = (0..m * k).map(|i| (i as i8) - 7).collect();
        let b: Vec<i8> = (0..k * n).map(|i| 3 - (i as i8)).collect();
        let ctx = ExecCtx::sequential();
        let y = mm_i8(&ctx, &a, &b, m, k, n, 0.5);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for kk in 0..k {
                    acc += a[i * k + kk] as i32 * b[kk * n + j] as i32;
                }
                assert_eq!(y[i * n + j], acc as f32 * 0.5);
            }
        }
    }

    #[test]
    fn gemm_q_close_to_f32_gemm() {
        let ctx = ExecCtx::sequential();
        let qctx = ctx.with_backend(crate::ctx::KernelBackend::QuantI8);
        let x = Value::random_f32(vec![4, 32], 1).f32().unwrap().clone();
        let w = Value::random_f32(vec![8, 32], 2).f32().unwrap().clone();
        let b = Value::random_f32(vec![8], 3).f32().unwrap().clone();
        let exact = crate::kernels::gemm::gemm(&ctx, &x, &w, Some(&b), true).unwrap();
        let quant = gemm_q(&qctx, &x, &w, Some(&b), true).unwrap();
        let max_abs = exact.data().iter().fold(0.0f32, |a, v| a.max(v.abs()));
        for (e, q) in exact.data().iter().zip(quant.data()) {
            assert!(
                (e - q).abs() <= 0.05 * max_abs.max(1.0),
                "{e} vs {q} (max {max_abs})"
            );
        }
        // the weight was quantized once and cached on the shared plan cache
        assert!(qctx.packed().quant_len() >= 1);
        let quant2 = gemm_q(&qctx, &x, &w, Some(&b), true).unwrap();
        assert_eq!(quant, quant2, "quantized path is deterministic");
    }

    #[test]
    fn conv2d_q_close_to_f32_conv() {
        let ctx = ExecCtx::sequential();
        let qctx = ctx.with_backend(crate::ctx::KernelBackend::QuantI8);
        let x = Value::random_f32(vec![1, 3, 9, 9], 4)
            .f32()
            .unwrap()
            .clone();
        let w = Value::random_f32(vec![4, 3, 3, 3], 5)
            .f32()
            .unwrap()
            .clone();
        let spec = ConvSpec {
            kernel: (3, 3),
            stride: (1, 1),
            pads: (1, 1),
            groups: 1,
        };
        let exact = crate::kernels::conv::conv2d(&ctx, &x, &w, None, &spec).unwrap();
        let quant = conv2d_q(&qctx, &x, &w, None, &spec).unwrap();
        assert_eq!(exact.shape(), quant.shape());
        let max_abs = exact.data().iter().fold(0.0f32, |a, v| a.max(v.abs()));
        for (e, q) in exact.data().iter().zip(quant.data()) {
            assert!((e - q).abs() <= 0.05 * max_abs.max(1.0), "{e} vs {q}");
        }
    }

    #[test]
    fn matmul_q_broadcasts_like_f32() {
        let ctx = ExecCtx::sequential().with_backend(crate::ctx::KernelBackend::QuantI8);
        let a = Value::random_f32(vec![2, 1, 3, 8], 6)
            .f32()
            .unwrap()
            .clone();
        let b = Value::random_f32(vec![8, 5], 7).f32().unwrap().clone();
        let y = matmul_q(&ctx, &a, &b).unwrap();
        assert_eq!(y.shape(), &[2, 1, 3, 5]);
        let exact = crate::kernels::gemm::matmul(&ctx, &a, &b).unwrap();
        let max_abs = exact.data().iter().fold(0.0f32, |a, v| a.max(v.abs()));
        for (e, q) in exact.data().iter().zip(y.data()) {
            assert!((e - q).abs() <= 0.06 * max_abs.max(1.0));
        }
    }
}
