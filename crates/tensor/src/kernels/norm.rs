//! Normalization and softmax kernels.

use crate::tensor::Tensor;
use crate::{exec_err, Result};
use ramiel_ir::shape::norm_axis;

/// Inference-mode batch normalization over NCHW (or NC) input:
/// `y = scale · (x − mean) / √(var + ε) + bias`, per channel.
pub fn batch_norm(
    x: &Tensor<f32>,
    scale: &Tensor<f32>,
    bias: &Tensor<f32>,
    mean: &Tensor<f32>,
    var: &Tensor<f32>,
    epsilon: f32,
) -> Result<Tensor<f32>> {
    if x.rank() < 2 {
        return exec_err("BatchNorm expects rank >= 2 input");
    }
    let c = x.shape()[1];
    for (name, t) in [
        ("scale", scale),
        ("bias", bias),
        ("mean", mean),
        ("var", var),
    ] {
        if t.numel() != c {
            return exec_err(format!(
                "BatchNorm {name} length {} != channels {c}",
                t.numel()
            ));
        }
    }
    let spatial: usize = x.shape()[2..].iter().product();
    let n = x.shape()[0];
    let mut out = Vec::with_capacity(x.numel());
    for ni in 0..n {
        for ci in 0..c {
            let a = scale.data()[ci] / (var.data()[ci] + epsilon).sqrt();
            let b = bias.data()[ci] - mean.data()[ci] * a;
            let base = (ni * c + ci) * spatial;
            out.extend(x.data()[base..base + spatial].iter().map(|&v| a * v + b));
        }
    }
    Tensor::new(x.shape().to_vec(), out)
}

/// Layer normalization over the trailing axis with learned scale/bias.
pub fn layer_norm(
    x: &Tensor<f32>,
    scale: &Tensor<f32>,
    bias: &Tensor<f32>,
    epsilon: f32,
) -> Result<Tensor<f32>> {
    let d = *x
        .shape()
        .last()
        .ok_or_else(|| crate::ExecError("LayerNorm on scalar".into()))?;
    if scale.numel() != d || bias.numel() != d {
        return exec_err("LayerNorm scale/bias length mismatch");
    }
    let mut out = Vec::with_capacity(x.numel());
    for row in x.data().chunks(d) {
        let mean = row.iter().sum::<f32>() / d as f32;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let inv = 1.0 / (var + epsilon).sqrt();
        out.extend(
            row.iter()
                .zip(scale.data())
                .zip(bias.data())
                .map(|((&v, &s), &b)| (v - mean) * inv * s + b),
        );
    }
    Tensor::new(x.shape().to_vec(), out)
}

/// Numerically-stable softmax along `axis`.
pub fn softmax(x: &Tensor<f32>, axis: isize) -> Result<Tensor<f32>> {
    let rank = x.rank();
    let ax = norm_axis(axis, rank).map_err(|e| crate::ExecError(e.to_string()))?;
    let axis_len = x.shape()[ax];
    let inner: usize = x.shape()[ax + 1..].iter().product();
    let outer: usize = x.shape()[..ax].iter().product();
    let mut out = x.data().to_vec();
    for o in 0..outer {
        for i in 0..inner {
            let base = o * axis_len * inner + i;
            let mut maxv = f32::NEG_INFINITY;
            for j in 0..axis_len {
                maxv = maxv.max(out[base + j * inner]);
            }
            let mut sum = 0.0;
            for j in 0..axis_len {
                let e = (out[base + j * inner] - maxv).exp();
                out[base + j * inner] = e;
                sum += e;
            }
            for j in 0..axis_len {
                out[base + j * inner] /= sum;
            }
        }
    }
    Tensor::new(x.shape().to_vec(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: Vec<usize>, data: Vec<f32>) -> Tensor<f32> {
        Tensor::new(shape, data).unwrap()
    }

    #[test]
    fn batch_norm_identity_params() {
        let x = t(vec![1, 2, 1, 2], vec![1., 2., 3., 4.]);
        let ones = t(vec![2], vec![1., 1.]);
        let zeros = t(vec![2], vec![0., 0.]);
        let y = batch_norm(&x, &ones, &zeros, &zeros, &ones, 0.0).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn batch_norm_standardizes() {
        let x = t(vec![1, 1, 1, 2], vec![10., 20.]);
        let scale = t(vec![1], vec![2.0]);
        let bias = t(vec![1], vec![1.0]);
        let mean = t(vec![1], vec![10.0]);
        let var = t(vec![1], vec![4.0]);
        let y = batch_norm(&x, &scale, &bias, &mean, &var, 0.0).unwrap();
        assert_eq!(y.data(), &[1.0, 11.0]);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let x = t(vec![2, 4], vec![1., 2., 3., 4., 0., 0., 0., 0.]);
        let ones = t(vec![4], vec![1.0; 4]);
        let zeros = t(vec![4], vec![0.0; 4]);
        let y = layer_norm(&x, &ones, &zeros, 1e-9).unwrap();
        let row = &y.data()[..4];
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        // all-zero row stays zero
        assert_eq!(&y.data()[4..], &[0.0; 4]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = t(vec![2, 3], vec![1., 2., 3., 1000., 1000., 1000.]);
        let y = softmax(&x, -1).unwrap();
        for row in y.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // huge equal logits don't overflow
        assert!((y.data()[3] - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_non_trailing_axis() {
        let x = t(vec![2, 2], vec![0., 0., 0., 0.]);
        let y = softmax(&x, 0).unwrap();
        assert_eq!(y.data(), &[0.5, 0.5, 0.5, 0.5]);
    }
}
