//! Reduction kernels.

use crate::tensor::{strides_of, unravel, Tensor};
use crate::Result;
use ramiel_ir::shape::norm_axis;

/// Mean over the given axes (negative allowed), optionally keeping reduced
/// axes as size-1 dims.
pub fn reduce_mean(x: &Tensor<f32>, axes: &[isize], keepdims: bool) -> Result<Tensor<f32>> {
    let rank = x.rank();
    let mut reduce = vec![false; rank];
    for &a in axes {
        reduce[norm_axis(a, rank).map_err(|e| crate::ExecError(e.to_string()))?] = true;
    }
    let mut out_shape_kept: Vec<usize> = x
        .shape()
        .iter()
        .enumerate()
        .map(|(i, &d)| if reduce[i] { 1 } else { d })
        .collect();
    let out_numel: usize = out_shape_kept.iter().product();
    let reduced_count: usize = x
        .shape()
        .iter()
        .enumerate()
        .filter(|(i, _)| reduce[*i])
        .map(|(_, &d)| d)
        .product();
    let mut acc = vec![0.0f32; out_numel];
    let out_strides = strides_of(&out_shape_kept);
    let mut coords = vec![0usize; rank];
    for idx in 0..x.numel() {
        unravel(idx, x.shape(), &mut coords);
        let mut off = 0;
        for i in 0..rank {
            let c = if reduce[i] { 0 } else { coords[i] };
            off += c * out_strides[i];
        }
        acc[off] += x.data()[idx];
    }
    let inv = 1.0 / reduced_count.max(1) as f32;
    for v in &mut acc {
        *v *= inv;
    }
    if !keepdims {
        out_shape_kept = x
            .shape()
            .iter()
            .enumerate()
            .filter(|(i, _)| !reduce[*i])
            .map(|(_, &d)| d)
            .collect();
    }
    Tensor::new(out_shape_kept, acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: Vec<usize>, data: Vec<f32>) -> Tensor<f32> {
        Tensor::new(shape, data).unwrap()
    }

    #[test]
    fn mean_over_last_axis() {
        let x = t(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let y = reduce_mean(&x, &[-1], true).unwrap();
        assert_eq!(y.shape(), &[2, 1]);
        assert_eq!(y.data(), &[2.0, 5.0]);
        let z = reduce_mean(&x, &[1], false).unwrap();
        assert_eq!(z.shape(), &[2]);
    }

    #[test]
    fn mean_over_multiple_axes() {
        let x = t(vec![2, 2, 2], (1..=8).map(|v| v as f32).collect());
        let y = reduce_mean(&x, &[0, 2], false).unwrap();
        assert_eq!(y.shape(), &[2]);
        // axis0/axis2 groups: {1,2,5,6} and {3,4,7,8}
        assert_eq!(y.data(), &[3.5, 5.5]);
    }

    #[test]
    fn mean_over_all_axes_gives_scalar_shape() {
        let x = t(vec![2, 2], vec![1., 2., 3., 4.]);
        let y = reduce_mean(&x, &[0, 1], false).unwrap();
        assert_eq!(y.shape(), &[] as &[usize]);
        assert_eq!(y.data(), &[2.5]);
    }
}
