//! Unary and binary elementwise kernels with numpy broadcasting.

use crate::tensor::{broadcast_offset, strides_of, unravel, Tensor};
use crate::value::Value;
use crate::{exec_err, Result};
use ramiel_ir::shape::broadcast;

/// Apply a unary f32 function elementwise.
pub fn unary_f32(x: &Tensor<f32>, f: impl Fn(f32) -> f32) -> Tensor<f32> {
    let data = x.data().iter().map(|&v| f(v)).collect();
    Tensor::new(x.shape().to_vec(), data).expect("unary preserves shape")
}

/// The `erf`-based GELU used by BERT: `0.5 x (1 + erf(x/√2))`.
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + erf(x / std::f32::consts::SQRT_2))
}

/// Abramowitz–Stegun 7.1.26 rational approximation of erf, accurate to ~1e-7.
pub fn erf(x: f32) -> f32 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_4 * t - 1.453_152_1) * t) + 1.421_413_7) * t - 0.284_496_74) * t
            + 0.254_829_6)
            * t
            * (-x * x).exp();
    sign * y
}

/// Binary broadcasting over f32 tensors.
pub fn binary_f32(
    a: &Tensor<f32>,
    b: &Tensor<f32>,
    f: impl Fn(f32, f32) -> f32,
) -> Result<Tensor<f32>> {
    binary_generic(a, b, f)
}

/// Binary broadcasting over i64 tensors.
pub fn binary_i64(
    a: &Tensor<i64>,
    b: &Tensor<i64>,
    f: impl Fn(i64, i64) -> i64,
) -> Result<Tensor<i64>> {
    binary_generic(a, b, f)
}

fn binary_generic<T: Copy + Default, R: Copy + Default>(
    a: &Tensor<T>,
    b: &Tensor<T>,
    f: impl Fn(T, T) -> R,
) -> Result<Tensor<R>> {
    let out_shape = match broadcast(a.shape(), b.shape()) {
        Some(s) => s,
        None => {
            return exec_err(format!(
                "cannot broadcast {:?} with {:?}",
                a.shape(),
                b.shape()
            ))
        }
    };
    // Fast path: identical shapes.
    if a.shape() == b.shape() {
        let data = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(&x, &y)| f(x, y))
            .collect();
        return Tensor::new(out_shape, data);
    }
    // Fast path: scalar / single-element rhs or lhs.
    if b.numel() == 1 {
        let y = b.data()[0];
        let data = a.data().iter().map(|&x| f(x, y)).collect();
        return Tensor::new(out_shape, data);
    }
    if a.numel() == 1 {
        let x = a.data()[0];
        let data = b.data().iter().map(|&y| f(x, y)).collect();
        return Tensor::new(out_shape, data);
    }
    // Fast path: one side broadcasts only over *leading* axes (its shape,
    // leading 1s stripped, is a suffix of the output shape) — bias add
    // `[m, n] + [n]`, mask add `[.., s] + [1, 1, 1, s]`. The small buffer
    // tiles the output, so the loop is a chunked zip instead of an
    // unravel + two stride walks per element. Same `f` on the same pairs
    // in the same order, so results are bit-identical to the general loop.
    if a.shape() == out_shape {
        if let Some(bn) = suffix_numel(b.shape(), &out_shape) {
            let bd = &b.data()[..bn];
            let data = a
                .data()
                .chunks_exact(bn)
                .flat_map(|ch| ch.iter().zip(bd).map(|(&x, &y)| f(x, y)))
                .collect();
            return Tensor::new(out_shape, data);
        }
        // Fast path: one side broadcasts only over *trailing* axes (its
        // shape, trailing 1s stripped, is a prefix of the output shape) —
        // layernorm's per-row mean/std, `[m, n] - [m, 1]`. Each small-side
        // element covers one contiguous run of the output.
        if let Some(run) = prefix_run(b.shape(), &out_shape) {
            let mut data = Vec::with_capacity(a.numel());
            for (ch, &y) in a.data().chunks_exact(run).zip(b.data()) {
                data.extend(ch.iter().map(|&x| f(x, y)));
            }
            return Tensor::new(out_shape, data);
        }
    }
    if b.shape() == out_shape {
        if let Some(an) = suffix_numel(a.shape(), &out_shape) {
            let ad = &a.data()[..an];
            let data = b
                .data()
                .chunks_exact(an)
                .flat_map(|ch| ad.iter().zip(ch).map(|(&x, &y)| f(x, y)))
                .collect();
            return Tensor::new(out_shape, data);
        }
        if let Some(run) = prefix_run(a.shape(), &out_shape) {
            let mut data = Vec::with_capacity(b.numel());
            for (&x, ch) in a.data().iter().zip(b.data().chunks_exact(run)) {
                data.extend(ch.iter().map(|&y| f(x, y)));
            }
            return Tensor::new(out_shape, data);
        }
    }
    // General broadcast loop.
    let numel: usize = out_shape.iter().product();
    let sa = strides_of(a.shape());
    let sb = strides_of(b.shape());
    let mut coords = vec![0usize; out_shape.len()];
    let mut data = Vec::with_capacity(numel);
    for idx in 0..numel {
        unravel(idx, &out_shape, &mut coords);
        let x = a.data()[broadcast_offset(&coords, a.shape(), &sa)];
        let y = b.data()[broadcast_offset(&coords, b.shape(), &sb)];
        data.push(f(x, y));
    }
    Tensor::new(out_shape, data)
}

/// If `small` (leading 1s stripped) is exactly the trailing slice of
/// `out`, the small buffer tiles the output; returns its element count.
/// Zero-size and all-ones shapes fall through to other paths.
fn suffix_numel(small: &[usize], out: &[usize]) -> Option<usize> {
    let eff: &[usize] = &small[small.iter().take_while(|&&d| d == 1).count()..];
    let n: usize = eff.iter().product();
    (n > 1 && eff.len() <= out.len() && out[out.len() - eff.len()..] == *eff).then_some(n)
}

/// If `small` is full-rank and, trailing 1s stripped, is exactly the
/// leading slice of `out`, each small element maps to one contiguous
/// output run; returns the run length (product of the remaining `out`
/// dims). Full rank is required because broadcasting right-aligns: a
/// lower-rank `small` pads with *leading* 1s, so its dims never align
/// with `out`'s prefix.
fn prefix_run(small: &[usize], out: &[usize]) -> Option<usize> {
    if small.len() != out.len() {
        return None;
    }
    let keep = small.len() - small.iter().rev().take_while(|&&d| d == 1).count();
    let eff = &small[..keep];
    if eff.iter().product::<usize>() > 1 && out[..keep] == *eff {
        let run: usize = out[keep..].iter().product();
        (run > 0).then_some(run)
    } else {
        None
    }
}

/// Elementwise equality producing a bool tensor.
pub fn equal(a: &Value, b: &Value) -> Result<Value> {
    match (a, b) {
        (Value::F32(x), Value::F32(y)) => Ok(Value::Bool(binary_generic(x, y, |p, q| p == q)?)),
        (Value::I64(x), Value::I64(y)) => Ok(Value::Bool(binary_generic(x, y, |p, q| p == q)?)),
        _ => exec_err("Equal requires two tensors of the same dtype"),
    }
}

/// `where(cond, a, b)` ternary select with broadcasting.
pub fn where_select(cond: &Tensor<bool>, a: &Tensor<f32>, b: &Tensor<f32>) -> Result<Tensor<f32>> {
    let s1 = broadcast(cond.shape(), a.shape())
        .and_then(|s| broadcast(&s, b.shape()))
        .ok_or_else(|| crate::ExecError("Where operands do not broadcast".into()))?;
    let numel: usize = s1.iter().product();
    let sc = strides_of(cond.shape());
    let sa = strides_of(a.shape());
    let sb = strides_of(b.shape());
    let mut coords = vec![0usize; s1.len()];
    let mut data = Vec::with_capacity(numel);
    for idx in 0..numel {
        unravel(idx, &s1, &mut coords);
        let c = cond.data()[broadcast_offset(&coords, cond.shape(), &sc)];
        let x = a.data()[broadcast_offset(&coords, a.shape(), &sa)];
        let y = b.data()[broadcast_offset(&coords, b.shape(), &sb)];
        data.push(if c { x } else { y });
    }
    Tensor::new(s1, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: Vec<usize>, data: Vec<f32>) -> Tensor<f32> {
        Tensor::new(shape, data).unwrap()
    }

    #[test]
    fn unary_relu() {
        let x = t(vec![4], vec![-1.0, 0.0, 2.0, -3.0]);
        let y = unary_f32(&x, |v| v.max(0.0));
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn binary_same_shape_and_scalar() {
        let a = t(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = t(vec![2, 2], vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(
            binary_f32(&a, &b, |x, y| x + y).unwrap().data(),
            &[11.0, 22.0, 33.0, 44.0]
        );
        let s = t(vec![], vec![2.0]);
        assert_eq!(
            binary_f32(&a, &s, |x, y| x * y).unwrap().data(),
            &[2.0, 4.0, 6.0, 8.0]
        );
    }

    #[test]
    fn binary_row_broadcast() {
        let a = t(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let row = t(vec![3], vec![10., 20., 30.]);
        let y = binary_f32(&a, &row, |x, y| x + y).unwrap();
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(y.data(), &[11., 22., 33., 14., 25., 36.]);
    }

    #[test]
    fn binary_column_broadcast() {
        let a = t(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let col = t(vec![2, 1], vec![100., 200.]);
        let y = binary_f32(&a, &col, |x, y| x + y).unwrap();
        assert_eq!(y.data(), &[101., 102., 103., 204., 205., 206.]);
    }

    /// The general unravel/stride loop, kept as the semantic reference for
    /// the contiguous fast paths.
    fn binary_reference(a: &Tensor<f32>, b: &Tensor<f32>) -> Vec<f32> {
        let out_shape = broadcast(a.shape(), b.shape()).unwrap();
        let numel: usize = out_shape.iter().product();
        let sa = strides_of(a.shape());
        let sb = strides_of(b.shape());
        let mut coords = vec![0usize; out_shape.len()];
        let mut data = Vec::with_capacity(numel);
        for idx in 0..numel {
            unravel(idx, &out_shape, &mut coords);
            let x = a.data()[broadcast_offset(&coords, a.shape(), &sa)];
            let y = b.data()[broadcast_offset(&coords, b.shape(), &sb)];
            data.push(x + y);
        }
        data
    }

    #[test]
    fn broadcast_fast_paths_match_reference() {
        let fill = |shape: &[usize]| {
            let n: usize = shape.iter().product();
            t(
                shape.to_vec(),
                (0..n).map(|i| i as f32 * 0.5 + 1.0).collect(),
            )
        };
        // (bias add, mask add, layernorm row stats, internal-1 suffix,
        // and the right-alignment trap: [4,1] against [4,4,5] must NOT
        // take the prefix path — broadcasting pads it to [1,4,1].)
        let cases: &[(&[usize], &[usize])] = &[
            (&[7, 5], &[5]),
            (&[2, 3, 4, 5], &[1, 1, 1, 5]),
            (&[7, 5], &[7, 1]),
            (&[2, 32, 9, 9], &[2, 32, 9, 1]),
            (&[4, 2, 1, 3], &[2, 1, 3]),
            (&[4, 4, 5], &[4, 1]),
            (&[3, 1], &[3, 4]),
            (&[5], &[7, 5]),
        ];
        for (sa, sb) in cases {
            let a = fill(sa);
            let b = fill(sb);
            let got = binary_f32(&a, &b, |x, y| x + y).unwrap();
            assert_eq!(
                got.data(),
                &binary_reference(&a, &b)[..],
                "mismatch for {sa:?} + {sb:?}"
            );
        }
    }

    #[test]
    fn incompatible_shapes_error() {
        let a = t(vec![2], vec![1., 2.]);
        let b = t(vec![3], vec![1., 2., 3.]);
        assert!(binary_f32(&a, &b, |x, y| x + y).is_err());
    }

    #[test]
    fn erf_reference_points() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427).abs() < 1e-3);
        assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
        assert!((erf(3.0) - 0.99998).abs() < 1e-4);
    }

    #[test]
    fn gelu_matches_definition_at_zero_and_large() {
        assert_eq!(gelu(0.0), 0.0);
        assert!((gelu(10.0) - 10.0).abs() < 1e-4);
        assert!(gelu(-10.0).abs() < 1e-4);
    }

    #[test]
    fn where_and_equal() {
        let a = t(vec![3], vec![1., 2., 3.]);
        let b = t(vec![3], vec![1., 0., 3.]);
        let eq = equal(&Value::F32(a.clone()), &Value::F32(b.clone())).unwrap();
        let c = eq.bool().unwrap();
        assert_eq!(c.data(), &[true, false, true]);
        let w = where_select(c, &a, &b).unwrap();
        assert_eq!(w.data(), &[1., 0., 3.]);
    }
}
