//! 2-D convolution (NCHW, OIHW weights, grouped).
//!
//! The kernel is a direct convolution with the inner loop running along the
//! contiguous width axis. When an intra-op pool is attached, output images
//! `(batch, out-channel)` pairs are distributed across it — the same
//! work-splitting PyTorch's OpenMP backend applies.

use crate::ctx::ExecCtx;
use crate::tensor::Tensor;
use crate::{exec_err, Result};
use rayon::prelude::*;

/// Convolution attributes (mirrors `OpKind::Conv`).
#[derive(Debug, Clone, Copy)]
pub struct ConvSpec {
    pub kernel: (usize, usize),
    pub stride: (usize, usize),
    pub pads: (usize, usize),
    pub groups: usize,
}

/// Defensive attribute check. `ir::validate` rejects these graphs up front
/// (RV0002); the kernels still refuse them so a hand-built spec degrades to
/// an `ExecError` instead of a divide-by-zero panic in the output-size math.
/// Shared with the quantized conv kernel (`super::quant`).
pub(crate) fn check_spec(spec: &ConvSpec) -> Result<()> {
    if spec.stride.0 == 0 || spec.stride.1 == 0 {
        return exec_err(format!("conv2d stride {:?} must be nonzero", spec.stride));
    }
    if spec.kernel.0 == 0 || spec.kernel.1 == 0 {
        return exec_err(format!("conv2d kernel {:?} must be nonzero", spec.kernel));
    }
    if spec.groups == 0 {
        return exec_err("conv2d groups must be nonzero");
    }
    Ok(())
}

/// Compute one output image (single batch element, single output channel).
/// `simd` routes the innermost (`ox`, `kx`) loops through the lane-unrolled
/// [`super::simd::conv_row`] kernel; results are bit-identical either way
/// (per output element both variants run the same ascending-`kx` chain).
#[allow(clippy::too_many_arguments)]
fn conv_one_output(
    x: &[f32],
    w: &[f32],
    out: &mut [f32],
    bias: f32,
    spec: &ConvSpec,
    cg: usize, // channels per group
    h: usize,
    wd: usize,
    ho: usize,
    wo: usize,
    simd: bool,
) {
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.pads;
    out.fill(bias);
    for c in 0..cg {
        let xc = &x[c * h * wd..(c + 1) * h * wd];
        let wc = &w[c * kh * kw..(c + 1) * kh * kw];
        for oy in 0..ho {
            let iy0 = (oy * sh) as isize - ph as isize;
            let orow = &mut out[oy * wo..(oy + 1) * wo];
            for ky in 0..kh {
                let iy = iy0 + ky as isize;
                if iy < 0 || iy as usize >= h {
                    continue;
                }
                let xrow = &xc[(iy as usize) * wd..(iy as usize + 1) * wd];
                let wrow = &wc[ky * kw..(ky + 1) * kw];
                if simd {
                    super::simd::conv_row(xrow, wrow, orow, sw, pw);
                    continue;
                }
                for (ox, o) in orow.iter_mut().enumerate() {
                    let ix0 = (ox * sw) as isize - pw as isize;
                    let mut acc = 0.0f32;
                    for (kx, &wv) in wrow.iter().enumerate() {
                        let ix = ix0 + kx as isize;
                        if ix >= 0 && (ix as usize) < wd {
                            acc += xrow[ix as usize] * wv;
                        }
                    }
                    *o += acc;
                }
            }
        }
    }
}

/// Grouped 2-D convolution: `x` NCHW, `w` [M, C/groups, kh, kw], optional
/// per-output-channel bias.
pub fn conv2d(
    ctx: &ExecCtx,
    x: &Tensor<f32>,
    w: &Tensor<f32>,
    bias: Option<&Tensor<f32>>,
    spec: &ConvSpec,
) -> Result<Tensor<f32>> {
    if x.rank() != 4 || w.rank() != 4 {
        return exec_err("conv2d expects NCHW input and OIHW weight");
    }
    check_spec(spec)?;
    let (n, c, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (m, cg) = (w.shape()[0], w.shape()[1]);
    let g = spec.groups;
    if c != cg * g || m % g != 0 {
        return exec_err(format!(
            "conv2d channel mismatch: input {c}, weight {cg}×{g} groups, out {m}"
        ));
    }
    if (w.shape()[2], w.shape()[3]) != spec.kernel {
        return exec_err("conv2d kernel attribute disagrees with weight shape");
    }
    if let Some(b) = bias {
        if b.numel() != m {
            return exec_err(format!("conv2d bias length {} != {m}", b.numel()));
        }
    }
    // Pointwise fast path: a 1×1 / stride-1 / unpadded / ungrouped conv is
    // the matrix product `w[m×c] · x[c×(h·w)]` per batch image, which the
    // blocked `mm` kernel runs far faster than the direct loop (Inception
    // and SqueezeNet are full of these).
    if spec.kernel == (1, 1) && spec.stride == (1, 1) && spec.pads == (0, 0) && g == 1 {
        let hw = h * wd;
        let mut out = vec![0.0f32; n * m * hw];
        for ni in 0..n {
            let xn = &x.data()[ni * c * hw..(ni + 1) * c * hw];
            let prod = crate::kernels::gemm::mm(ctx, w.data(), xn, m, c, hw);
            out[ni * m * hw..(ni + 1) * m * hw].copy_from_slice(&prod);
        }
        if let Some(b) = bias {
            for (mi, img) in out.chunks_mut(hw).enumerate() {
                let bv = b.data()[mi % m];
                for v in img {
                    *v += bv;
                }
            }
        }
        return Tensor::new(vec![n, m, h, wd], out);
    }
    let (kh, kw) = spec.kernel;
    let ho = match (h + 2 * spec.pads.0).checked_sub(kh) {
        Some(v) => v / spec.stride.0 + 1,
        None => return exec_err("conv2d kernel larger than padded input"),
    };
    let wo = match (wd + 2 * spec.pads.1).checked_sub(kw) {
        Some(v) => v / spec.stride.1 + 1,
        None => return exec_err("conv2d kernel larger than padded input"),
    };
    let m_per_g = m / g;
    let mut out = vec![0.0f32; n * m * ho * wo];
    let simd = ctx.backend() == crate::ctx::KernelBackend::SimdF32;

    let run = |(idx, oimg): (usize, &mut [f32])| {
        let (ni, mi) = (idx / m, idx % m);
        let gi = mi / m_per_g;
        let xg = &x.data()[ni * c * h * wd + gi * cg * h * wd..][..cg * h * wd];
        let wm = &w.data()[mi * cg * kh * kw..(mi + 1) * cg * kh * kw];
        let bv = bias.map_or(0.0, |b| b.data()[mi]);
        conv_one_output(xg, wm, oimg, bv, spec, cg, h, wd, ho, wo, simd);
    };

    if ctx.parallel() && n * m >= 2 {
        ctx.install(|| {
            out.par_chunks_mut(ho * wo).enumerate().for_each(run);
        });
    } else {
        out.chunks_mut(ho * wo).enumerate().for_each(run);
    }
    Tensor::new(vec![n, m, ho, wo], out)
}

/// im2col + GEMM formulation of the same convolution. Lowers each (batch,
/// group) to a `[M/g, C/g·kh·kw] × [C/g·kh·kw, Ho·Wo]` matrix product —
/// trades memory for the cache behaviour of `mm`. Exact same results as
/// [`conv2d`] (pinned by a property test); the ablation bench compares the
/// two.
pub fn conv2d_im2col(
    ctx: &ExecCtx,
    x: &Tensor<f32>,
    w: &Tensor<f32>,
    bias: Option<&Tensor<f32>>,
    spec: &ConvSpec,
) -> Result<Tensor<f32>> {
    if x.rank() != 4 || w.rank() != 4 {
        return exec_err("conv2d expects NCHW input and OIHW weight");
    }
    check_spec(spec)?;
    let (n, c, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (m, cg) = (w.shape()[0], w.shape()[1]);
    let g = spec.groups;
    if c != cg * g || m % g != 0 {
        return exec_err("conv2d channel mismatch");
    }
    let (kh, kw) = spec.kernel;
    let ho = match (h + 2 * spec.pads.0).checked_sub(kh) {
        Some(v) => v / spec.stride.0 + 1,
        None => return exec_err("conv2d kernel larger than padded input"),
    };
    let wo = match (wd + 2 * spec.pads.1).checked_sub(kw) {
        Some(v) => v / spec.stride.1 + 1,
        None => return exec_err("conv2d kernel larger than padded input"),
    };
    let m_per_g = m / g;
    let k = cg * kh * kw;
    let cols = ho * wo;
    let mut out = vec![0.0f32; n * m * cols];
    let mut col = vec![0.0f32; k * cols];

    for ni in 0..n {
        for gi in 0..g {
            // unfold the input patch matrix for this (batch, group)
            col.fill(0.0);
            for ci in 0..cg {
                let xc = &x.data()[(ni * c + gi * cg + ci) * h * wd..][..h * wd];
                for ky in 0..kh {
                    for kx in 0..kw {
                        let row = (ci * kh + ky) * kw + kx;
                        for oy in 0..ho {
                            let iy = (oy * spec.stride.0 + ky) as isize - spec.pads.0 as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            let dst = &mut col[row * cols + oy * wo..][..wo];
                            let src = &xc[iy as usize * wd..(iy as usize + 1) * wd];
                            for (ox, d) in dst.iter_mut().enumerate() {
                                let ix = (ox * spec.stride.1 + kx) as isize - spec.pads.1 as isize;
                                if ix >= 0 && (ix as usize) < wd {
                                    *d = src[ix as usize];
                                }
                            }
                        }
                    }
                }
            }
            // W[gi] is already [m_per_g, k] row-major
            let wg = &w.data()[gi * m_per_g * k..(gi + 1) * m_per_g * k];
            let prod = crate::kernels::gemm::mm(ctx, wg, &col, m_per_g, k, cols);
            let base = (ni * m + gi * m_per_g) * cols;
            out[base..base + m_per_g * cols].copy_from_slice(&prod);
        }
    }
    if let Some(b) = bias {
        if b.numel() != m {
            return exec_err("conv2d bias length mismatch");
        }
        for (mi, img) in out.chunks_mut(cols).enumerate() {
            let bv = b.data()[mi % m];
            for v in img {
                *v += bv;
            }
        }
    }
    Tensor::new(vec![n, m, ho, wo], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: Vec<usize>, data: Vec<f32>) -> Tensor<f32> {
        Tensor::new(shape, data).unwrap()
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let ctx = ExecCtx::sequential();
        let x = t(vec![1, 1, 3, 3], (1..=9).map(|v| v as f32).collect());
        let w = t(vec![1, 1, 1, 1], vec![1.0]);
        let spec = ConvSpec {
            kernel: (1, 1),
            stride: (1, 1),
            pads: (0, 0),
            groups: 1,
        };
        let y = conv2d(&ctx, &x, &w, None, &spec).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn box_filter_with_padding() {
        let ctx = ExecCtx::sequential();
        let x = t(vec![1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let w = t(vec![1, 1, 3, 3], vec![1.0; 9]);
        let spec = ConvSpec {
            kernel: (3, 3),
            stride: (1, 1),
            pads: (1, 1),
            groups: 1,
        };
        let y = conv2d(&ctx, &x, &w, None, &spec).unwrap();
        // every output = sum of in-bounds neighbours = 10 at all 4 positions
        assert_eq!(y.data(), &[10., 10., 10., 10.]);
    }

    #[test]
    fn stride_two_downsamples() {
        let ctx = ExecCtx::sequential();
        let x = t(vec![1, 1, 4, 4], (0..16).map(|v| v as f32).collect());
        let w = t(vec![1, 1, 1, 1], vec![1.0]);
        let spec = ConvSpec {
            kernel: (1, 1),
            stride: (2, 2),
            pads: (0, 0),
            groups: 1,
        };
        let y = conv2d(&ctx, &x, &w, None, &spec).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[0., 2., 8., 10.]);
    }

    #[test]
    fn bias_added_per_channel() {
        let ctx = ExecCtx::sequential();
        let x = t(vec![1, 1, 2, 2], vec![0.0; 4]);
        let w = t(vec![2, 1, 1, 1], vec![1.0, 1.0]);
        let b = t(vec![2], vec![5.0, -3.0]);
        let spec = ConvSpec {
            kernel: (1, 1),
            stride: (1, 1),
            pads: (0, 0),
            groups: 1,
        };
        let y = conv2d(&ctx, &x, &w, Some(&b), &spec).unwrap();
        assert_eq!(&y.data()[..4], &[5.0; 4]);
        assert_eq!(&y.data()[4..], &[-3.0; 4]);
    }

    #[test]
    fn grouped_conv_keeps_groups_independent() {
        let ctx = ExecCtx::sequential();
        // 2 input channels, 2 groups, each 1→1 channel with weight 2 / 3.
        let x = t(vec![1, 2, 1, 1], vec![10.0, 100.0]);
        let w = t(vec![2, 1, 1, 1], vec![2.0, 3.0]);
        let spec = ConvSpec {
            kernel: (1, 1),
            stride: (1, 1),
            pads: (0, 0),
            groups: 2,
        };
        let y = conv2d(&ctx, &x, &w, None, &spec).unwrap();
        assert_eq!(y.data(), &[20.0, 300.0]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = ExecCtx::sequential();
        let par = ExecCtx::with_intra_op(4);
        let x = crate::value::Value::random_f32(vec![2, 3, 16, 16], 1);
        let w = crate::value::Value::random_f32(vec![8, 3, 3, 3], 2);
        let spec = ConvSpec {
            kernel: (3, 3),
            stride: (1, 1),
            pads: (1, 1),
            groups: 1,
        };
        let y1 = conv2d(&seq, x.f32().unwrap(), w.f32().unwrap(), None, &spec).unwrap();
        let y2 = conv2d(&par, x.f32().unwrap(), w.f32().unwrap(), None, &spec).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn im2col_matches_direct_on_fixed_cases() {
        let ctx = ExecCtx::sequential();
        for (cin, cout, groups, k, stride, pad) in [
            (3usize, 8usize, 1usize, 3usize, 1usize, 1usize),
            (4, 4, 4, 3, 1, 1), // depthwise
            (6, 4, 2, 1, 1, 0), // grouped pointwise
            (3, 5, 1, 5, 2, 2), // strided 5x5
        ] {
            let x = crate::value::Value::random_f32(vec![2, cin, 9, 7], 11);
            let w = crate::value::Value::random_f32(vec![cout, cin / groups, k, k], 12);
            let b = crate::value::Value::random_f32(vec![cout], 13);
            let spec = ConvSpec {
                kernel: (k, k),
                stride: (stride, stride),
                pads: (pad, pad),
                groups,
            };
            let direct = conv2d(
                &ctx,
                x.f32().unwrap(),
                w.f32().unwrap(),
                Some(b.f32().unwrap()),
                &spec,
            )
            .unwrap();
            let lowered = conv2d_im2col(
                &ctx,
                x.f32().unwrap(),
                w.f32().unwrap(),
                Some(b.f32().unwrap()),
                &spec,
            )
            .unwrap();
            assert_eq!(direct.shape(), lowered.shape());
            for (p, q) in direct.data().iter().zip(lowered.data()) {
                assert!((p - q).abs() < 1e-4, "{p} vs {q}");
            }
        }
    }

    #[test]
    fn zero_stride_is_an_error_not_a_panic() {
        // Regression: stride 0 used to reach the output-size division and
        // panic; it must surface as an ExecError from both conv paths.
        let ctx = ExecCtx::sequential();
        let x = t(vec![1, 1, 4, 4], vec![0.0; 16]);
        let w = t(vec![1, 1, 2, 2], vec![0.0; 4]);
        for (stride, kernel) in [((0, 1), (2, 2)), ((1, 0), (2, 2)), ((1, 1), (0, 2))] {
            let spec = ConvSpec {
                kernel,
                stride,
                pads: (0, 0),
                groups: 1,
            };
            assert!(conv2d(&ctx, &x, &w, None, &spec).is_err(), "{spec:?}");
            assert!(
                conv2d_im2col(&ctx, &x, &w, None, &spec).is_err(),
                "{spec:?}"
            );
        }
        let spec = ConvSpec {
            kernel: (2, 2),
            stride: (1, 1),
            pads: (0, 0),
            groups: 0,
        };
        assert!(conv2d(&ctx, &x, &w, None, &spec).is_err());
    }

    #[test]
    fn pointwise_fast_path_matches_im2col_exactly() {
        // The 1×1/s1/p0/g1 fast path computes the very same mm the im2col
        // lowering does, so the two must agree bit-for-bit.
        let ctx = ExecCtx::sequential();
        let x = crate::value::Value::random_f32(vec![2, 6, 5, 7], 21);
        let w = crate::value::Value::random_f32(vec![4, 6, 1, 1], 22);
        let b = crate::value::Value::random_f32(vec![4], 23);
        let spec = ConvSpec {
            kernel: (1, 1),
            stride: (1, 1),
            pads: (0, 0),
            groups: 1,
        };
        let fast = conv2d(
            &ctx,
            x.f32().unwrap(),
            w.f32().unwrap(),
            Some(b.f32().unwrap()),
            &spec,
        )
        .unwrap();
        let lowered = conv2d_im2col(
            &ctx,
            x.f32().unwrap(),
            w.f32().unwrap(),
            Some(b.f32().unwrap()),
            &spec,
        )
        .unwrap();
        assert_eq!(fast, lowered);
    }

    #[test]
    fn channel_mismatch_rejected() {
        let ctx = ExecCtx::sequential();
        let x = t(vec![1, 3, 4, 4], vec![0.0; 48]);
        let w = t(vec![2, 2, 1, 1], vec![0.0; 4]);
        let spec = ConvSpec {
            kernel: (1, 1),
            stride: (1, 1),
            pads: (0, 0),
            groups: 1,
        };
        assert!(conv2d(&ctx, &x, &w, None, &spec).is_err());
    }
}
