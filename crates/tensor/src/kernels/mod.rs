//! Operator kernels, grouped by family.
//!
//! Every kernel is a pure function from input tensors to output tensors.
//! Heavy kernels take an [`crate::ExecCtx`] and split their outermost loop
//! over its rayon pool when one is attached (the intra-op knob); everything
//! else is sequential.

pub mod conv;
pub mod elementwise;
pub mod gemm;
pub mod movement;
pub mod norm;
pub mod pool;
pub mod quant;
pub mod reduce;
pub mod simd;
