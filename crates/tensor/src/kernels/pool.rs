//! Spatial pooling kernels (NCHW).

use crate::tensor::Tensor;
use crate::{exec_err, Result};
use ramiel_ir::PoolSpec;

fn pool_generic(x: &Tensor<f32>, spec: &PoolSpec, is_max: bool) -> Result<Tensor<f32>> {
    if x.rank() != 4 {
        return exec_err("pooling expects NCHW input");
    }
    // Defensive twin of the RV0002 graph check: a hand-built spec with a
    // zero stride or kernel gets a diagnostic, not a panic.
    if spec.stride.0 == 0 || spec.stride.1 == 0 {
        return exec_err(format!("pool stride {:?} must be nonzero", spec.stride));
    }
    if spec.kernel.0 == 0 || spec.kernel.1 == 0 {
        return exec_err(format!("pool kernel {:?} must be nonzero", spec.kernel));
    }
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let ho = spec.out_extent(h, 0);
    let wo = spec.out_extent(w, 1);
    if ho == 0 || wo == 0 {
        return exec_err("pool kernel larger than padded input");
    }
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.pads;
    let mut out = vec![0.0f32; n * c * ho * wo];
    for img in 0..n * c {
        let xi = &x.data()[img * h * w..(img + 1) * h * w];
        let oi = &mut out[img * ho * wo..(img + 1) * ho * wo];
        for oy in 0..ho {
            for ox in 0..wo {
                let iy0 = (oy * sh) as isize - ph as isize;
                let ix0 = (ox * sw) as isize - pw as isize;
                let mut acc = if is_max { f32::NEG_INFINITY } else { 0.0 };
                let mut count = 0usize;
                for ky in 0..kh {
                    let iy = iy0 + ky as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    for kx in 0..kw {
                        let ix = ix0 + kx as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        let v = xi[iy as usize * w + ix as usize];
                        if is_max {
                            acc = acc.max(v);
                        } else {
                            acc += v;
                        }
                        count += 1;
                    }
                }
                oi[oy * wo + ox] = if is_max {
                    if count == 0 {
                        0.0
                    } else {
                        acc
                    }
                } else if count == 0 {
                    0.0
                } else {
                    // ONNX count_include_pad=0 semantics: average over the
                    // in-bounds window only.
                    acc / count as f32
                };
            }
        }
    }
    Tensor::new(vec![n, c, ho, wo], out)
}

/// Max pooling.
pub fn max_pool(x: &Tensor<f32>, spec: &PoolSpec) -> Result<Tensor<f32>> {
    pool_generic(x, spec, true)
}

/// Average pooling (padding excluded from the divisor).
pub fn avg_pool(x: &Tensor<f32>, spec: &PoolSpec) -> Result<Tensor<f32>> {
    pool_generic(x, spec, false)
}

/// Global average pooling: NCHW → NC11.
pub fn global_avg_pool(x: &Tensor<f32>) -> Result<Tensor<f32>> {
    if x.rank() != 4 {
        return exec_err("GlobalAveragePool expects NCHW input");
    }
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let hw = (h * w) as f32;
    let mut out = Vec::with_capacity(n * c);
    for img in 0..n * c {
        let s: f32 = x.data()[img * h * w..(img + 1) * h * w].iter().sum();
        out.push(s / hw);
    }
    Tensor::new(vec![n, c, 1, 1], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: Vec<usize>, data: Vec<f32>) -> Tensor<f32> {
        Tensor::new(shape, data).unwrap()
    }

    #[test]
    fn max_pool_2x2() {
        let x = t(vec![1, 1, 2, 2], vec![1., 5., 3., 2.]);
        let spec = PoolSpec {
            kernel: (2, 2),
            stride: (2, 2),
            pads: (0, 0),
            ceil_mode: false,
        };
        let y = max_pool(&x, &spec).unwrap();
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data(), &[5.0]);
    }

    #[test]
    fn avg_pool_excludes_padding() {
        let x = t(vec![1, 1, 2, 2], vec![4., 4., 4., 4.]);
        let spec = PoolSpec {
            kernel: (3, 3),
            stride: (1, 1),
            pads: (1, 1),
            ceil_mode: false,
        };
        let y = avg_pool(&x, &spec).unwrap();
        // corner windows see 4 in-bounds values of 4.0 → average 4.0
        assert_eq!(y.data(), &[4.0; 4]);
    }

    #[test]
    fn global_avg() {
        let x = t(vec![1, 2, 2, 2], vec![1., 2., 3., 4., 10., 10., 10., 10.]);
        let y = global_avg_pool(&x).unwrap();
        assert_eq!(y.shape(), &[1, 2, 1, 1]);
        assert_eq!(y.data(), &[2.5, 10.0]);
    }

    #[test]
    fn zero_stride_is_an_error_not_a_panic() {
        let x = t(vec![1, 1, 4, 4], vec![0.0; 16]);
        for (kernel, stride) in [((2, 2), (0, 1)), ((2, 2), (1, 0)), ((0, 2), (1, 1))] {
            let spec = PoolSpec {
                kernel,
                stride,
                pads: (0, 0),
                ceil_mode: false,
            };
            assert!(max_pool(&x, &spec).is_err(), "{spec:?}");
            assert!(avg_pool(&x, &spec).is_err(), "{spec:?}");
        }
    }

    #[test]
    fn ceil_mode_adds_ragged_window() {
        let x = t(vec![1, 1, 3, 3], (1..=9).map(|v| v as f32).collect());
        let spec = PoolSpec {
            kernel: (2, 2),
            stride: (2, 2),
            pads: (0, 0),
            ceil_mode: true,
        };
        let y = max_pool(&x, &spec).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5., 6., 8., 9.]);
    }
}
