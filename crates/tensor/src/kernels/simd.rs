//! Explicitly 8-lane-unrolled f32 microkernels (stable Rust, no nightly
//! `portable_simd`): fixed-width `[f32; 8]` lane arrays with fully unrolled
//! register tiles, which LLVM lowers to packed SSE/AVX arithmetic.
//!
//! ## The bit-identity contract
//!
//! Every kernel here computes, per output element, the **same multiply-add
//! chain in the same ascending-`k` order** as its scalar counterpart in
//! [`super::gemm`] / [`super::conv`]. Lane-unrolling only runs *independent*
//! output elements side by side — it never reassociates one element's
//! accumulation, and Rust never contracts `a * b + c` into a fused
//! multiply-add behind your back. `SimdF32` results are therefore
//! bit-identical to `ScalarF32`, and the cross-executor equivalence suites
//! hold for both backends without loosening a single tolerance.
//!
//! ## Structure
//!
//! [`mm`] is a BLIS-shaped microkernel GEMM: `b` is first repacked into
//! contiguous `k × 8` column panels (one linear stream per panel instead of
//! an `n`-strided gather), then an `MR×8` register tile accumulates over
//! the whole `k` extent without touching the output row in between. The
//! scalar `mm_block` loads and stores each output row once per `kk` step;
//! the tile does it once per `k` sweep. The speed comes from register
//! tiling and packing, not from changing the math.

use crate::ctx::ExecCtx;
use rayon::prelude::*;

/// Lane width of the unrolled kernels (one AVX register of f32).
pub const NR: usize = 8;

/// Row-tile height of the register microkernel. `MR × NR` accumulators
/// (4×8 = 32 f32 = 8 XMM / 4 YMM registers) plus one `b` vector and a
/// broadcast `a` scalar fit the x86-64 register file with room to spare.
pub const MR: usize = 4;

/// Row-block height: `b`'s panels are streamed once per block, so taller
/// blocks amortize the memory traffic better than the scalar kernel's
/// 8-row blocks (the register tile, not the block, bounds store traffic).
const MB_SIMD: usize = 32;

/// Pack `b` into panels only past this `k·n` element count (≈512 KiB of
/// f32, the point where `b` stops being L2-resident and the microkernel's
/// `n`-strided column reads start thrashing). Below it, strided reads are
/// cheap and the pack pass is pure overhead.
const PACK_MIN_ELEMS: usize = 128 * 1024;

/// `b` repacked into column panels, based at a 64-byte boundary. An 8-lane
/// panel row is exactly half a cache line, so whether every microkernel
/// load stays inside one line or straddles two is decided by the buffer's
/// base address — and `Vec<f32>`'s natural 4-byte alignment leaves that to
/// allocator luck, which varies run to run. Anchoring the base makes the
/// packed path's performance reproducible.
pub struct PackedPanels {
    buf: Vec<f32>,
    off: usize,
}

impl PackedPanels {
    /// The packed panels, starting at the aligned base.
    pub fn panels(&self) -> &[f32] {
        &self.buf[self.off..]
    }
}

/// Repack `b[k×n]` into `ceil(n/8)` column panels, each `k × 8` and
/// contiguous (`panel[kk*8 + l] == b[kk*n + j0 + l]`). The last panel is
/// zero-padded; padded lanes are computed and discarded, never stored.
pub fn pack_panels(b: &[f32], k: usize, n: usize) -> PackedPanels {
    let np = n.div_ceil(NR);
    let pad = 64 / std::mem::size_of::<f32>();
    let mut buf = vec![0.0f32; np * k * NR + pad];
    let off = match buf.as_ptr().align_offset(64) {
        usize::MAX => 0, // allocator can't say — fall back to the raw base
        o => o.min(pad),
    };
    for (p, dst) in buf[off..].chunks_mut(k * NR).take(np).enumerate() {
        let j0 = p * NR;
        let width = (n - j0).min(NR);
        for kk in 0..k {
            dst[kk * NR..kk * NR + width].copy_from_slice(&b[kk * n + j0..kk * n + j0 + width]);
        }
    }
    PackedPanels { buf, off }
}

/// `MR_ROWS × 8` register tile: columns `[j, j+width)` of absolute output
/// rows `i0+r0 .. i0+r0+MR_ROWS` (row indices into `oblk` are relative).
/// `bsrc`/`bs` abstract the `b` layout: a packed panel (`bs == NR`) or the
/// raw matrix offset to column `j` (`bs == n`, which requires
/// `width == NR` so reads stay in bounds). Accumulates the full `k` extent
/// in ascending order; in the packed case lanes `>= width` ride along
/// against the panel's zero padding and are discarded at the store.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn micro<const MR_ROWS: usize>(
    a: &[f32],
    bsrc: &[f32],
    bs: usize,
    oblk: &mut [f32],
    i0: usize,
    r0: usize,
    k: usize,
    n: usize,
    j: usize,
    width: usize,
) {
    let mut acc = [[0.0f32; NR]; MR_ROWS];
    for (rt, row) in acc.iter_mut().enumerate() {
        row[..width].copy_from_slice(&oblk[(r0 + rt) * n + j..(r0 + rt) * n + j + width]);
    }
    for kk in 0..k {
        let bv = &bsrc[kk * bs..kk * bs + NR];
        for (rt, row) in acc.iter_mut().enumerate() {
            let av = a[(i0 + r0 + rt) * k + kk];
            for (l, lane) in row.iter_mut().enumerate() {
                *lane += av * bv[l];
            }
        }
    }
    for (rt, row) in acc.iter().enumerate() {
        oblk[(r0 + rt) * n + j..(r0 + rt) * n + j + width].copy_from_slice(&row[..width]);
    }
}

/// Dispatch one column strip of a row block to the widest register tile
/// that fits the remaining rows.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn row_tiles(
    a: &[f32],
    bsrc: &[f32],
    bs: usize,
    oblk: &mut [f32],
    i0: usize,
    k: usize,
    n: usize,
    j: usize,
    width: usize,
) {
    let rows = oblk.len() / n;
    let mut r = 0;
    while r < rows {
        let rb = (rows - r).min(MR);
        match rb {
            4 => micro::<4>(a, bsrc, bs, oblk, i0, r, k, n, j, width),
            3 => micro::<3>(a, bsrc, bs, oblk, i0, r, k, n, j, width),
            2 => micro::<2>(a, bsrc, bs, oblk, i0, r, k, n, j, width),
            _ => micro::<1>(a, bsrc, bs, oblk, i0, r, k, n, j, width),
        }
        r += rb;
    }
}

/// `oblk += a · b` over a contiguous block of output rows starting at
/// absolute row `i0`, with `b` pre-packed into panels. Panels run in the
/// outer loop so each `k×8` panel stays L1-resident across every row tile
/// of the block.
fn mm_block_panels(a: &[f32], panels: &[f32], oblk: &mut [f32], i0: usize, k: usize, n: usize) {
    // `panels` may carry alignment padding past the last panel — bound the
    // walk by the panel count, not the slice length.
    for (p, panel) in panels.chunks(k * NR).take(n.div_ceil(NR)).enumerate() {
        let j = p * NR;
        let width = (n - j).min(NR);
        row_tiles(a, panel, NR, oblk, i0, k, n, j, width);
    }
}

/// `oblk += a · b` with `b` read in place (`n`-strided column reads):
/// cheaper than panel packing while `b` is L2-resident. The ragged column
/// tail (< 8) uses the identical per-element ascending-`kk` scalar chain.
fn mm_block_unpacked(a: &[f32], b: &[f32], oblk: &mut [f32], i0: usize, k: usize, n: usize) {
    let rows = oblk.len() / n;
    let mut j = 0;
    while j + NR <= n {
        row_tiles(a, &b[j..], n, oblk, i0, k, n, j, NR);
        j += NR;
    }
    for r in 0..rows {
        let arow = &a[(i0 + r) * k..(i0 + r + 1) * k];
        for jj in j..n {
            let mut acc = oblk[r * n + jj];
            for (kk, &av) in arow.iter().enumerate() {
                acc += av * b[kk * n + jj];
            }
            oblk[r * n + jj] = acc;
        }
    }
}

/// One-row variant for the (row, column-tile) parallel split: `tile +=
/// arow · b[.., j0..j0+tile.len()]` with `b` pre-packed. Requires
/// `j0 % 8 == 0` (the column tiles are cut at `NB = 512` boundaries).
fn mm_tile_panels(arow: &[f32], panels: &[f32], tile: &mut [f32], k: usize, j0: usize) {
    debug_assert_eq!(j0 % NR, 0);
    let mut off = 0;
    let mut p = j0 / NR;
    while off < tile.len() {
        let width = (tile.len() - off).min(NR);
        let panel = &panels[p * k * NR..(p + 1) * k * NR];
        let mut acc = [0.0f32; NR];
        acc[..width].copy_from_slice(&tile[off..off + width]);
        for (kk, &av) in arow.iter().enumerate() {
            let bv = &panel[kk * NR..kk * NR + NR];
            for (l, lane) in acc.iter_mut().enumerate() {
                *lane += av * bv[l];
            }
        }
        tile[off..off + width].copy_from_slice(&acc[..width]);
        off += width;
        p += 1;
    }
}

/// One-row column tile with `b` read in place; scalar chain on the ragged
/// tail.
fn mm_tile_unpacked(arow: &[f32], b: &[f32], tile: &mut [f32], n: usize, j0: usize) {
    let nb = tile.len();
    let mut off = 0;
    while off + NR <= nb {
        let mut acc = [0.0f32; NR];
        acc.copy_from_slice(&tile[off..off + NR]);
        for (kk, &av) in arow.iter().enumerate() {
            let bv = &b[kk * n + j0 + off..kk * n + j0 + off + NR];
            for (l, lane) in acc.iter_mut().enumerate() {
                *lane += av * bv[l];
            }
        }
        tile[off..off + NR].copy_from_slice(&acc);
        off += NR;
    }
    for (jj, o) in tile[off..].iter_mut().enumerate() {
        let j = j0 + off + jj;
        let mut acc = *o;
        for (kk, &av) in arow.iter().enumerate() {
            acc += av * b[kk * n + j];
        }
        *o = acc;
    }
}

/// Lane-unrolled `a[m×k] · b[k×n]`: the `SimdF32` counterpart of
/// [`super::gemm::mm`], with the same sequential/row-block/column-tile
/// split structure and thresholds. Bit-identical outputs to the scalar
/// kernel on every path. `b` is repacked into panels only when it is large
/// enough to fall out of L2 *and* `m` amortizes the pack pass.
pub fn mm(ctx: &ExecCtx, a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let pack = m >= 2 * MR && k * n >= PACK_MIN_ELEMS;
    let packed: Option<PackedPanels> = pack.then(|| pack_panels(b, k, n));
    let block = |oblk: &mut [f32], i0: usize| match &packed {
        Some(p) => mm_block_panels(a, p.panels(), oblk, i0, k, n),
        None => mm_block_unpacked(a, b, oblk, i0, k, n),
    };
    let tile_mm = |arow: &[f32], tile: &mut [f32], j0: usize| match &packed {
        Some(p) => mm_tile_panels(arow, p.panels(), tile, k, j0),
        None => mm_tile_unpacked(arow, b, tile, n, j0),
    };
    let mut out = vec![0.0f32; m * n];
    if !(ctx.parallel() && m * k * n >= 16_384) {
        for (bi, oblk) in out.chunks_mut(n * MB_SIMD).enumerate() {
            block(oblk, bi * MB_SIMD);
        }
        return out;
    }
    let threads = ctx.intra_op_threads();
    if m >= 2 * threads {
        let rows_per = m.div_ceil(4 * threads).clamp(1, MB_SIMD);
        ctx.install(|| {
            out.par_chunks_mut(n * rows_per)
                .enumerate()
                .for_each(|(bi, oblk)| block(oblk, bi * rows_per));
        });
    } else {
        // Few rows with a wide output: one task per (row, column-tile) so
        // the pool still fills. NB matches the scalar kernel's tile width.
        const NB: usize = 512;
        let mut tiles: Vec<(usize, usize, &mut [f32])> = Vec::with_capacity(m * n.div_ceil(NB));
        let mut rest = out.as_mut_slice();
        let mut i = 0;
        while !rest.is_empty() {
            let (mut row, r) = std::mem::take(&mut rest).split_at_mut(n);
            rest = r;
            let mut j0 = 0;
            while !row.is_empty() {
                let w = NB.min(row.len());
                let (tile, rr) = std::mem::take(&mut row).split_at_mut(w);
                tiles.push((i, j0, tile));
                j0 += w;
                row = rr;
            }
            i += 1;
        }
        ctx.install(|| {
            tiles.into_par_iter().for_each(|(i, j0, tile)| {
                tile_mm(&a[i * k..(i + 1) * k], tile, j0);
            });
        });
    }
    out
}

/// Lane-unrolled replacement for the conv kernel's innermost (`ox`, `kx`)
/// loops: one input row × one weight row accumulated into one output row.
/// Eight output columns run side by side; each lane's `kx` chain is the
/// scalar chain, and clipped border chunks fall back to the per-element
/// loop, so results stay bit-identical to the scalar kernel.
pub fn conv_row(xrow: &[f32], wrow: &[f32], orow: &mut [f32], sw: usize, pw: usize) {
    let wd = xrow.len();
    let kw = wrow.len();
    let wo = orow.len();
    let mut ox0 = 0usize;
    while ox0 < wo {
        let lanes = (wo - ox0).min(NR);
        let lo = (ox0 * sw) as isize - pw as isize;
        let hi = ((ox0 + lanes - 1) * sw + kw - 1) as isize - pw as isize;
        if lanes == NR && lo >= 0 && (hi as usize) < wd {
            // All taps of all eight lanes are in bounds: no border branches
            // in the hot loop.
            let base = lo as usize;
            let mut acc = [0.0f32; NR];
            for (kx, &wv) in wrow.iter().enumerate() {
                let x0 = base + kx;
                for (l, lane) in acc.iter_mut().enumerate() {
                    *lane += xrow[x0 + l * sw] * wv;
                }
            }
            for (l, o) in orow[ox0..ox0 + NR].iter_mut().enumerate() {
                *o += acc[l];
            }
        } else {
            for (ox, o) in orow[ox0..ox0 + lanes].iter_mut().enumerate() {
                let ix0 = ((ox0 + ox) * sw) as isize - pw as isize;
                let mut acc = 0.0f32;
                for (kx, &wv) in wrow.iter().enumerate() {
                    let ix = ix0 + kx as isize;
                    if ix >= 0 && (ix as usize) < wd {
                        acc += xrow[ix as usize] * wv;
                    }
                }
                *o += acc;
            }
        }
        ox0 += lanes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar reference: the naive ascending-`kk` chain per element.
    fn mm_ref(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                for j in 0..n {
                    out[i * n + j] += av * b[kk * n + j];
                }
            }
        }
        out
    }

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        // xorshift so the test needs no external RNG
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn mm_bit_identical_to_scalar_on_ragged_shapes() {
        let ctx = ExecCtx::sequential();
        for (m, k, n) in [
            (8, 16, 32),   // exact multiples
            (5, 7, 19),    // everything ragged
            (1, 3, 9),     // single row
            (33, 31, 41),  // crosses the 32-row block boundary
            (2, 1, 7),     // k=1, tail-only
            (13, 64, 8),   // single full panel
            (9, 260, 521), // k·n past PACK_MIN_ELEMS → packed-panel path, ragged
        ] {
            let a = rand_vec(m * k, 1 + m as u64);
            let b = rand_vec(k * n, 99 + n as u64);
            let simd = mm(&ctx, &a, &b, m, k, n);
            let scal = mm_ref(&a, &b, m, k, n);
            assert_eq!(
                simd.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
                scal.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
                "m={m} k={k} n={n}"
            );
        }
    }

    #[test]
    fn mm_parallel_paths_bit_identical_to_sequential() {
        let seq = ExecCtx::sequential();
        let par = ExecCtx::with_intra_op(4);
        // Row-block path (many rows), column-tile path (few rows, wide),
        // and the packed-panel path (k·n past PACK_MIN_ELEMS).
        for (m, k, n) in [(64, 96, 48), (3, 128, 1100), (16, 256, 521)] {
            let a = rand_vec(m * k, 5);
            let b = rand_vec(k * n, 6);
            let y1 = mm(&seq, &a, &b, m, k, n);
            let y2 = mm(&par, &a, &b, m, k, n);
            assert_eq!(
                y1.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
                y2.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
                "m={m} k={k} n={n}"
            );
        }
    }

    #[test]
    fn zero_times_inf_and_nan_still_propagate() {
        // Same IEEE contract as the scalar kernel: no `av == 0.0` skip.
        let ctx = ExecCtx::sequential();
        let (m, k, n) = (2, 4, 9);
        let mut a = vec![1.0f32; m * k];
        a[0] = 0.0;
        a[k] = 0.0;
        let mut b = vec![1.0f32; k * n];
        b[0] = f32::INFINITY;
        b[1] = f32::NAN;
        let y = mm(&ctx, &a, &b, m, k, n);
        for i in 0..m {
            assert!(y[i * n].is_nan(), "0·∞ must yield NaN (row {i})");
            assert!(y[i * n + 1].is_nan(), "0·NaN must yield NaN (row {i})");
            assert_eq!(y[i * n + 2], (k - 1) as f32);
        }
    }

    #[test]
    fn pack_panels_lays_out_columns_contiguously() {
        let (k, n) = (3, 10);
        let b: Vec<f32> = (0..k * n).map(|v| v as f32).collect();
        let packed = pack_panels(&b, k, n);
        let panels = packed.panels();
        assert!(panels.len() >= 2 * k * NR);
        assert_eq!(
            panels.as_ptr() as usize % 64,
            0,
            "panel base must be 64-byte aligned"
        );
        // panel 0, kk=1, lane 2 == b[1*10 + 2]
        assert_eq!(panels[NR + 2], b[n + 2]);
        // panel 1 (cols 8..10), kk=2, lane 1 == b[2*10 + 9]
        assert_eq!(panels[k * NR + 2 * NR + 1], b[2 * n + 9]);
        // padding lanes are zero
        assert_eq!(panels[k * NR + 2 * NR + 5], 0.0);
    }

    #[test]
    fn conv_row_matches_scalar_with_borders() {
        for (wd, kw, sw, pw, wo) in [
            (32usize, 3usize, 1usize, 1usize, 32usize), // padded same-size
            (17, 5, 2, 2, 9),                           // strided, ragged
            (8, 3, 1, 0, 6),                            // valid, < 8 outputs
            (40, 7, 1, 3, 40),                          // wide kernel
        ] {
            let xrow = rand_vec(wd, 7);
            let wrow = rand_vec(kw, 8);
            let mut simd = vec![0.5f32; wo];
            let mut scal = vec![0.5f32; wo];
            conv_row(&xrow, &wrow, &mut simd, sw, pw);
            for (ox, o) in scal.iter_mut().enumerate() {
                let ix0 = (ox * sw) as isize - pw as isize;
                let mut acc = 0.0f32;
                for (kx, &wv) in wrow.iter().enumerate() {
                    let ix = ix0 + kx as isize;
                    if ix >= 0 && (ix as usize) < wd {
                        acc += xrow[ix as usize] * wv;
                    }
                }
                *o += acc;
            }
            assert_eq!(
                simd.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
                scal.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
                "wd={wd} kw={kw} sw={sw} pw={pw}"
            );
        }
    }
}
