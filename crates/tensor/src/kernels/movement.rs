//! Data-movement kernels: concat, split, slice, gather, transpose, pad,
//! resize, expand, cast. All are generic over the element type where the
//! semantics allow it; `eval` dispatches per dtype.

use crate::tensor::{broadcast_offset, strides_of, unravel, Tensor};
use crate::value::Value;
use crate::{exec_err, Result};
use ramiel_ir::shape::{broadcast, norm_axis};
use ramiel_ir::DType;

fn ax(axis: isize, rank: usize) -> Result<usize> {
    norm_axis(axis, rank).map_err(|e| crate::ExecError(e.to_string()))
}

/// Concatenate along `axis`.
pub fn concat<T: Copy + Default>(inputs: &[&Tensor<T>], axis: isize) -> Result<Tensor<T>> {
    let first = inputs
        .first()
        .ok_or_else(|| crate::ExecError("Concat with no inputs".into()))?;
    let rank = first.rank();
    let a = ax(axis, rank)?;
    let mut out_shape = first.shape().to_vec();
    out_shape[a] = inputs.iter().map(|t| t.shape()[a]).sum();
    for t in inputs {
        if t.rank() != rank {
            return exec_err("Concat rank mismatch");
        }
        for d in 0..rank {
            if d != a && t.shape()[d] != first.shape()[d] {
                return exec_err(format!("Concat dim {d} mismatch"));
            }
        }
    }
    let outer: usize = first.shape()[..a].iter().product();
    let inner: usize = first.shape()[a + 1..].iter().product();
    let mut data = Vec::with_capacity(out_shape.iter().product());
    for o in 0..outer {
        for t in inputs {
            let block = t.shape()[a] * inner;
            data.extend_from_slice(&t.data()[o * block..(o + 1) * block]);
        }
    }
    Tensor::new(out_shape, data)
}

/// Split along `axis` into the given part sizes.
pub fn split<T: Copy + Default>(
    x: &Tensor<T>,
    axis: isize,
    parts: &[usize],
) -> Result<Vec<Tensor<T>>> {
    let a = ax(axis, x.rank())?;
    if parts.iter().sum::<usize>() != x.shape()[a] {
        return exec_err("Split parts do not sum to the axis extent");
    }
    let outer: usize = x.shape()[..a].iter().product();
    let inner: usize = x.shape()[a + 1..].iter().product();
    let full = x.shape()[a] * inner;
    let mut outs = Vec::with_capacity(parts.len());
    let mut start = 0usize;
    for &p in parts {
        let mut shape = x.shape().to_vec();
        shape[a] = p;
        let mut data = Vec::with_capacity(outer * p * inner);
        for o in 0..outer {
            let base = o * full + start * inner;
            data.extend_from_slice(&x.data()[base..base + p * inner]);
        }
        outs.push(Tensor::new(shape, data)?);
        start += p;
    }
    Ok(outs)
}

/// Strided slice (positive steps).
pub fn slice<T: Copy + Default>(
    x: &Tensor<T>,
    axes: &[isize],
    starts: &[i64],
    ends: &[i64],
    steps: &[i64],
) -> Result<Tensor<T>> {
    let rank = x.rank();
    let mut start = vec![0i64; rank];
    let mut step = vec![1i64; rank];
    let mut extent: Vec<usize> = x.shape().to_vec();
    for (((&axis, &s), &e), &st) in axes.iter().zip(starts).zip(ends).zip(steps) {
        let a = ax(axis, rank)?;
        if st <= 0 {
            return exec_err("slice supports positive steps only");
        }
        let dim = x.shape()[a] as i64;
        let clamp = |v: i64| if v < 0 { v + dim } else { v }.clamp(0, dim);
        let (cs, ce) = (clamp(s), clamp(e.min(dim)));
        start[a] = cs;
        step[a] = st;
        extent[a] = if ce > cs {
            ((ce - cs + st - 1) / st) as usize
        } else {
            0
        };
    }
    let numel: usize = extent.iter().product();
    let in_strides = x.strides();
    let mut coords = vec![0usize; rank];
    let mut data = Vec::with_capacity(numel);
    for idx in 0..numel {
        unravel(idx, &extent, &mut coords);
        let mut off = 0usize;
        for i in 0..rank {
            off += (start[i] as usize + coords[i] * step[i] as usize) * in_strides[i];
        }
        data.push(x.data()[off]);
    }
    Tensor::new(extent, data)
}

/// Gather along `axis` using i64 indices (negative indices wrap).
pub fn gather<T: Copy + Default>(
    data: &Tensor<T>,
    indices: &Tensor<i64>,
    axis: isize,
) -> Result<Tensor<T>> {
    let a = ax(axis, data.rank())?;
    let dim = data.shape()[a] as i64;
    let outer: usize = data.shape()[..a].iter().product();
    let inner: usize = data.shape()[a + 1..].iter().product();
    let mut out_shape = Vec::new();
    out_shape.extend_from_slice(&data.shape()[..a]);
    out_shape.extend_from_slice(indices.shape());
    out_shape.extend_from_slice(&data.shape()[a + 1..]);
    let mut out = Vec::with_capacity(out_shape.iter().product());
    for o in 0..outer {
        for &raw in indices.data() {
            let i = if raw < 0 { raw + dim } else { raw };
            if i < 0 || i >= dim {
                return exec_err(format!("gather index {raw} out of range for dim {dim}"));
            }
            let base = o * data.shape()[a] * inner + (i as usize) * inner;
            out.extend_from_slice(&data.data()[base..base + inner]);
        }
    }
    Tensor::new(out_shape, out)
}

/// Axis permutation.
pub fn transpose<T: Copy + Default>(x: &Tensor<T>, perm: &[usize]) -> Result<Tensor<T>> {
    let rank = x.rank();
    if perm.len() != rank {
        return exec_err("transpose perm rank mismatch");
    }
    let out_shape: Vec<usize> = perm.iter().map(|&p| x.shape()[p]).collect();
    let in_strides = x.strides();
    let perm_strides: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
    let numel = x.numel();
    let mut coords = vec![0usize; rank];
    let mut data = Vec::with_capacity(numel);
    for idx in 0..numel {
        unravel(idx, &out_shape, &mut coords);
        let off: usize = coords.iter().zip(&perm_strides).map(|(c, s)| c * s).sum();
        data.push(x.data()[off]);
    }
    Tensor::new(out_shape, data)
}

/// Zero spatial padding of an NCHW tensor: `(top, left, bottom, right)`.
pub fn pad_spatial<T: Copy + Default>(
    x: &Tensor<T>,
    pads: (usize, usize, usize, usize),
) -> Result<Tensor<T>> {
    if x.rank() != 4 {
        return exec_err("Pad expects NCHW input");
    }
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (t, l, b, r) = pads;
    let (ho, wo) = (h + t + b, w + l + r);
    let mut out = vec![T::default(); n * c * ho * wo];
    for img in 0..n * c {
        for y in 0..h {
            let src = &x.data()[img * h * w + y * w..][..w];
            let dst = &mut out[img * ho * wo + (y + t) * wo + l..][..w];
            dst.copy_from_slice(src);
        }
    }
    Tensor::new(vec![n, c, ho, wo], out)
}

/// Nearest-neighbour integer upsampling of an NCHW tensor.
pub fn resize_nearest(x: &Tensor<f32>, scale: (usize, usize)) -> Result<Tensor<f32>> {
    if x.rank() != 4 {
        return exec_err("Resize expects NCHW input");
    }
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (sh, sw) = scale;
    let (ho, wo) = (h * sh, w * sw);
    let mut out = Vec::with_capacity(n * c * ho * wo);
    for img in 0..n * c {
        let xi = &x.data()[img * h * w..(img + 1) * h * w];
        for oy in 0..ho {
            let iy = oy / sh;
            for ox in 0..wo {
                out.push(xi[iy * w + ox / sw]);
            }
        }
    }
    Tensor::new(vec![n, c, ho, wo], out)
}

/// Broadcast-copy to a target shape.
pub fn expand<T: Copy + Default>(x: &Tensor<T>, target: &[usize]) -> Result<Tensor<T>> {
    let shape = match broadcast(x.shape(), target) {
        Some(s) => s,
        None => return exec_err("Expand target does not broadcast"),
    };
    let numel: usize = shape.iter().product();
    let strides = strides_of(x.shape());
    let mut coords = vec![0usize; shape.len()];
    let mut data = Vec::with_capacity(numel);
    for idx in 0..numel {
        unravel(idx, &shape, &mut coords);
        data.push(x.data()[broadcast_offset(&coords, x.shape(), &strides)]);
    }
    Tensor::new(shape, data)
}

/// Dtype conversion.
pub fn cast(x: &Value, to: DType) -> Result<Value> {
    let shape = x.shape().to_vec();
    Ok(match (x, to) {
        (Value::F32(t), DType::F32) => Value::F32(t.clone()),
        (Value::I64(t), DType::I64) => Value::I64(t.clone()),
        (Value::Bool(t), DType::Bool) => Value::Bool(t.clone()),
        (Value::F32(t), DType::I64) => Value::I64(Tensor::new(
            shape,
            t.data().iter().map(|&v| v as i64).collect(),
        )?),
        (Value::I64(t), DType::F32) => Value::F32(Tensor::new(
            shape,
            t.data().iter().map(|&v| v as f32).collect(),
        )?),
        (Value::Bool(t), DType::F32) => Value::F32(Tensor::new(
            shape,
            t.data()
                .iter()
                .map(|&v| if v { 1.0 } else { 0.0 })
                .collect(),
        )?),
        (Value::Bool(t), DType::I64) => Value::I64(Tensor::new(
            shape,
            t.data().iter().map(|&v| i64::from(v)).collect(),
        )?),
        (Value::F32(t), DType::Bool) => Value::Bool(Tensor::new(
            shape,
            t.data().iter().map(|&v| v != 0.0).collect(),
        )?),
        (Value::I64(t), DType::Bool) => Value::Bool(Tensor::new(
            shape,
            t.data().iter().map(|&v| v != 0).collect(),
        )?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: Vec<usize>, data: Vec<f32>) -> Tensor<f32> {
        Tensor::new(shape, data).unwrap()
    }

    #[test]
    fn concat_axis1() {
        let a = t(vec![2, 1], vec![1., 3.]);
        let b = t(vec![2, 2], vec![10., 20., 30., 40.]);
        let y = concat(&[&a, &b], 1).unwrap();
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(y.data(), &[1., 10., 20., 3., 30., 40.]);
    }

    #[test]
    fn split_then_concat_roundtrips() {
        let x = t(vec![2, 4], (0..8).map(|v| v as f32).collect());
        let parts = split(&x, 1, &[1, 3]).unwrap();
        assert_eq!(parts[0].shape(), &[2, 1]);
        assert_eq!(parts[1].shape(), &[2, 3]);
        let back = concat(&[&parts[0], &parts[1]], 1).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn slice_strided_and_negative() {
        let x = t(vec![6], (0..6).map(|v| v as f32).collect());
        let y = slice(&x, &[0], &[1], &[i64::MAX], &[2]).unwrap();
        assert_eq!(y.data(), &[1., 3., 5.]);
        let z = slice(&x, &[0], &[-2], &[i64::MAX], &[1]).unwrap();
        assert_eq!(z.data(), &[4., 5.]);
    }

    #[test]
    fn gather_rows_and_negative_index() {
        let x = t(vec![3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let idx = Tensor::new(vec![2], vec![2i64, -3]).unwrap();
        let y = gather(&x, &idx, 0).unwrap();
        assert_eq!(y.shape(), &[2, 2]);
        assert_eq!(y.data(), &[5., 6., 1., 2.]);
        let bad = Tensor::new(vec![1], vec![3i64]).unwrap();
        assert!(gather(&x, &bad, 0).is_err());
    }

    #[test]
    fn transpose_2d() {
        let x = t(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let y = transpose(&x, &[1, 0]).unwrap();
        assert_eq!(y.shape(), &[3, 2]);
        assert_eq!(y.data(), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn transpose_batched_attention_layout() {
        // [B, S, H, D] -> [B, H, S, D]
        let x = t(vec![1, 2, 2, 1], vec![1., 2., 3., 4.]);
        let y = transpose(&x, &[0, 2, 1, 3]).unwrap();
        assert_eq!(y.shape(), &[1, 2, 2, 1]);
        assert_eq!(y.data(), &[1., 3., 2., 4.]);
    }

    #[test]
    fn pad_and_resize() {
        let x = t(vec![1, 1, 1, 1], vec![7.0]);
        let p = pad_spatial(&x, (1, 1, 0, 0)).unwrap();
        assert_eq!(p.shape(), &[1, 1, 2, 2]);
        assert_eq!(p.data(), &[0., 0., 0., 7.]);
        let r = resize_nearest(&x, (2, 3)).unwrap();
        assert_eq!(r.shape(), &[1, 1, 2, 3]);
        assert_eq!(r.data(), &[7.0; 6]);
    }

    #[test]
    fn expand_broadcasts() {
        let x = t(vec![1, 2], vec![1., 2.]);
        let y = expand(&x, &[3, 2]).unwrap();
        assert_eq!(y.shape(), &[3, 2]);
        assert_eq!(y.data(), &[1., 2., 1., 2., 1., 2.]);
    }

    #[test]
    fn cast_roundtrips() {
        let x = Value::F32(t(vec![3], vec![1.5, 0.0, -2.0]));
        let i = cast(&x, DType::I64).unwrap();
        assert_eq!(i.i64().unwrap().data(), &[1, 0, -2]);
        let b = cast(&x, DType::Bool).unwrap();
        assert_eq!(b.bool().unwrap().data(), &[true, false, true]);
        let f = cast(&i, DType::F32).unwrap();
        assert_eq!(f.f32().unwrap().data(), &[1.0, 0.0, -2.0]);
    }
}
