//! # ramiel-tensor
//!
//! Dense CPU tensors and the operator kernels that execute a
//! [`ramiel_ir::Graph`] node-by-node. This crate is the stand-in for the
//! paper's PyTorch execution substrate: real floating-point work happens
//! here, so the speedups measured by the runtime crate come from genuine
//! parallel execution rather than sleeps.
//!
//! Intra-operator parallelism (the paper's "downstream intra-op" knob,
//! OpenMP in PyTorch) is provided by an optional rayon thread pool carried in
//! [`ExecCtx`]; with no pool every kernel runs sequentially on the calling
//! thread, which is what the inter-op cluster executor uses so that clusters
//! do not oversubscribe cores by accident.

pub mod ctx;
pub mod eval;
pub mod kernels;
pub mod pack;
pub mod tensor;
pub mod value;

pub use ctx::{ExecCtx, KernelBackend, MemGauge};
pub use eval::{eval_op, eval_op_inplace};
pub use pack::{PackedWeightCache, QuantWeight};
pub use tensor::Tensor;
pub use value::Value;

/// Errors raised while executing a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError(pub String);

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "execution error: {}", self.0)
    }
}

impl std::error::Error for ExecError {}

/// Result alias for kernel execution.
pub type Result<T> = std::result::Result<T, ExecError>;

/// Convenience constructor for error returns.
pub fn exec_err<T>(msg: impl Into<String>) -> Result<T> {
    Err(ExecError(msg.into()))
}
