//! Per-plan packed-weight cache.
//!
//! `Gemm` with `transB=1` (the layout every fully-connected layer uses) needs
//! its weight in `[k, n]` order so [`crate::kernels::gemm::mm`] can stream
//! rows; historically the kernel re-transposed the constant weight on every
//! inference call. With tensors now Arc-backed, a weight buffer has a stable
//! identity for as long as any handle is alive, so the transpose can be
//! materialized once per plan and looked up by buffer pointer afterwards.
//!
//! ## Keying and safety
//!
//! Entries are keyed by `(buffer address, k, n)`. A raw address is only a
//! sound key if the allocation cannot be freed and reused while the entry
//! exists, so every entry *anchors* the source buffer with an `Arc` clone.
//! Copy-on-write keeps keys honest from the other direction: a shared buffer
//! is never mutated in place (`Tensor::data_mut` unshares first), so the
//! bytes behind a cached address can never change.
//!
//! The cache is carried by [`crate::ExecCtx`] and shared by `clone` — one
//! plan's workers (which all clone one context) share one cache, while
//! independent plans stay isolated.

use crate::tensor::Tensor;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    ptr: usize,
    k: usize,
    n: usize,
}

struct Entry {
    /// Keeps the source buffer alive so `Key::ptr` cannot be recycled by a
    /// later allocation while this entry exists.
    _anchor: Arc<Vec<f32>>,
    packed: Arc<Vec<f32>>,
}

/// Entry cap: a plan has one entry per distinct `Gemm` weight, so real
/// models sit far below this; a pathological caller (fresh weight buffers
/// every call) flushes rather than growing without bound.
const MAX_ENTRIES: usize = 512;

/// Cache of weight matrices re-laid-out for the `mm` kernel.
#[derive(Default)]
pub struct PackedWeightCache {
    entries: Mutex<HashMap<Key, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PackedWeightCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// The `[n, k]` (transB) weight `w` repacked as `[k, n]`, materialized on
    /// first use and shared afterwards.
    pub fn gemm_kn(&self, w: &Tensor<f32>, k: usize, n: usize) -> Arc<Vec<f32>> {
        let key = Key {
            ptr: w.data_ptr(),
            k,
            n,
        };
        if let Some(e) = self.entries.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&e.packed);
        }
        // Pack outside the lock: transposing a large weight under a shared
        // mutex would serialize every worker's first call.
        let wd = w.data();
        let mut t = vec![0.0f32; k * n];
        for j in 0..n {
            let wrow = &wd[j * k..(j + 1) * k];
            for (kk, &v) in wrow.iter().enumerate() {
                t[kk * n + j] = v;
            }
        }
        let packed = Arc::new(t);
        let mut entries = self.entries.lock().expect("cache poisoned");
        if entries.len() >= MAX_ENTRIES {
            entries.clear();
        }
        let e = entries.entry(key).or_insert_with(|| Entry {
            _anchor: Arc::clone(w.data_arc()),
            packed: Arc::clone(&packed),
        });
        self.misses.fetch_add(1, Ordering::Relaxed);
        // A racing worker may have inserted first; everyone returns the
        // entry that won so all callers share one buffer.
        Arc::clone(&e.packed)
    }

    /// `(hits, misses)` so far — a warmed plan should be all hits.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct packed weights currently materialized.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_and_shares() {
        let cache = PackedWeightCache::new();
        let w = Tensor::new(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let p1 = cache.gemm_kn(&w, 3, 2);
        // [2,3] transB → [3,2]: columns of w become rows
        assert_eq!(p1.as_slice(), &[1., 4., 2., 5., 3., 6.]);
        let p2 = cache.gemm_kn(&w, 3, 2);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clones_share_the_entry_but_fresh_buffers_do_not() {
        let cache = PackedWeightCache::new();
        let w = Tensor::new(vec![2, 2], vec![1., 2., 3., 4.]).unwrap();
        let w2 = w.clone(); // same buffer
        let p1 = cache.gemm_kn(&w, 2, 2);
        let p2 = cache.gemm_kn(&w2, 2, 2);
        assert!(Arc::ptr_eq(&p1, &p2));
        // same bytes, different allocation → distinct entry
        let w3 = Tensor::new(vec![2, 2], vec![1., 2., 3., 4.]).unwrap();
        let p3 = cache.gemm_kn(&w3, 2, 2);
        assert_eq!(p1.as_slice(), p3.as_slice());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cow_mutation_cannot_poison_a_cached_key() {
        let cache = PackedWeightCache::new();
        let w = Tensor::new(vec![1, 2], vec![7., 8.]).unwrap();
        let p1 = cache.gemm_kn(&w, 2, 1);
        // The cache anchors the buffer, so data_mut must copy-on-write and
        // the mutated tensor gets a *new* address → new entry, old intact.
        let mut w2 = w.clone();
        w2.data_mut()[0] = 0.0;
        assert_ne!(w2.data_ptr(), w.data_ptr());
        let p2 = cache.gemm_kn(&w2, 2, 1);
        assert_eq!(p1.as_slice(), &[7., 8.]);
        assert_eq!(p2.as_slice(), &[0., 8.]);
    }
}
