//! Per-plan packed-weight cache.
//!
//! `Gemm` with `transB=1` (the layout every fully-connected layer uses) needs
//! its weight in `[k, n]` order so [`crate::kernels::gemm::mm`] can stream
//! rows; historically the kernel re-transposed the constant weight on every
//! inference call. With tensors now Arc-backed, a weight buffer has a stable
//! identity for as long as any handle is alive, so the transpose can be
//! materialized once per plan and looked up by buffer pointer afterwards.
//!
//! ## Keying and safety
//!
//! Entries are keyed by `(buffer address, k, n)`. A raw address is only a
//! sound key if the allocation cannot be freed and reused while the entry
//! exists, so every entry *anchors* the source buffer with an `Arc` clone.
//! Copy-on-write keeps keys honest from the other direction: a shared buffer
//! is never mutated in place (`Tensor::data_mut` unshares first), so the
//! bytes behind a cached address can never change.
//!
//! The cache is carried by [`crate::ExecCtx`] and shared by `clone` — one
//! plan's workers (which all clone one context) share one cache, while
//! independent plans stay isolated.

use crate::tensor::Tensor;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    ptr: usize,
    k: usize,
    n: usize,
}

struct Entry {
    /// Keeps the source buffer alive so `Key::ptr` cannot be recycled by a
    /// later allocation while this entry exists.
    _anchor: Arc<Vec<f32>>,
    packed: Arc<Vec<f32>>,
}

/// A per-tensor symmetrically quantized weight: `data[i] · scale`
/// reconstructs the f32 value to within half a step. Cached per plan just
/// like the f32 packed weights (see [`PackedWeightCache::quant_kn`] /
/// [`PackedWeightCache::quant_flat`]), so the `QuantI8` backend quantizes
/// each constant weight once and shares the buffer afterwards.
#[derive(Clone)]
pub struct QuantWeight {
    pub data: Arc<Vec<i8>>,
    pub scale: f32,
}

struct QEntry {
    _anchor: Arc<Vec<f32>>,
    weight: QuantWeight,
}

/// Entry cap: a plan has one entry per distinct `Gemm` weight, so real
/// models sit far below this; a pathological caller (fresh weight buffers
/// every call) flushes rather than growing without bound.
const MAX_ENTRIES: usize = 512;

/// Cache of weight matrices re-laid-out for the `mm` kernel, plus the
/// i8-quantized variants the `QuantI8` backend uses. The f32 and i8 maps
/// are independent, so mixing backends on one plan never evicts the other's
/// entries.
#[derive(Default)]
pub struct PackedWeightCache {
    entries: Mutex<HashMap<Key, Entry>>,
    qkn: Mutex<HashMap<Key, QEntry>>,
    qflat: Mutex<HashMap<Key, QEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    races: AtomicU64,
}

impl PackedWeightCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// The `[n, k]` (transB) weight `w` repacked as `[k, n]`, materialized on
    /// first use and shared afterwards.
    pub fn gemm_kn(&self, w: &Tensor<f32>, k: usize, n: usize) -> Arc<Vec<f32>> {
        let key = Key {
            ptr: w.data_ptr(),
            k,
            n,
        };
        if let Some(e) = self.entries.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&e.packed);
        }
        // Pack outside the lock: transposing a large weight under a shared
        // mutex would serialize every worker's first call.
        let wd = w.data();
        let mut t = vec![0.0f32; k * n];
        for j in 0..n {
            let wrow = &wd[j * k..(j + 1) * k];
            for (kk, &v) in wrow.iter().enumerate() {
                t[kk * n + j] = v;
            }
        }
        let packed = Arc::new(t);
        let mut entries = self.entries.lock().expect("cache poisoned");
        if entries.len() >= MAX_ENTRIES {
            entries.clear();
        }
        // Re-check under the lock: a racing worker may have inserted while
        // we packed outside it. The loser's transpose is redundant work but
        // must not count as a miss — `misses` is "how many times was this
        // weight materialized into the cache", and the answer stays 1.
        match entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.races.fetch_add(1, Ordering::Relaxed);
                Arc::clone(&e.get().packed)
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let e = v.insert(Entry {
                    _anchor: Arc::clone(w.data_arc()),
                    packed: Arc::clone(&packed),
                });
                Arc::clone(&e.packed)
            }
        }
    }

    /// The `[n, k]` (transB) weight `w` repacked as `[k, n]` **and**
    /// symmetrically quantized to i8, materialized on first use.
    pub fn quant_kn(&self, w: &Tensor<f32>, k: usize, n: usize) -> QuantWeight {
        let key = Key {
            ptr: w.data_ptr(),
            k,
            n,
        };
        if let Some(e) = self.qkn.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return e.weight.clone();
        }
        // Transpose + quantize outside the lock (same discipline as
        // `gemm_kn`); the scale only depends on the values, not the layout.
        let wd = w.data();
        let mut t = vec![0.0f32; k * n];
        for j in 0..n {
            let wrow = &wd[j * k..(j + 1) * k];
            for (kk, &v) in wrow.iter().enumerate() {
                t[kk * n + j] = v;
            }
        }
        let (q, scale) = crate::kernels::quant::quantize_symmetric(&t);
        let weight = QuantWeight {
            data: Arc::new(q),
            scale,
        };
        self.insert_quant(&self.qkn, key, w, weight)
    }

    /// `w` quantized to i8 in its existing layout (conv weights, `transB=0`
    /// Gemm weights, MatMul right-hand sides), materialized on first use.
    pub fn quant_flat(&self, w: &Tensor<f32>) -> QuantWeight {
        let key = Key {
            ptr: w.data_ptr(),
            k: w.numel(),
            n: 0,
        };
        if let Some(e) = self.qflat.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return e.weight.clone();
        }
        let (q, scale) = crate::kernels::quant::quantize_symmetric(w.data());
        let weight = QuantWeight {
            data: Arc::new(q),
            scale,
        };
        self.insert_quant(&self.qflat, key, w, weight)
    }

    /// Shared insert-or-lose tail for the quant maps: re-check under the
    /// lock, count the loser of a first-call race as a hit.
    fn insert_quant(
        &self,
        map: &Mutex<HashMap<Key, QEntry>>,
        key: Key,
        w: &Tensor<f32>,
        weight: QuantWeight,
    ) -> QuantWeight {
        let mut entries = map.lock().expect("cache poisoned");
        if entries.len() >= MAX_ENTRIES {
            entries.clear();
        }
        match entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.races.fetch_add(1, Ordering::Relaxed);
                e.get().weight.clone()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                v.insert(QEntry {
                    _anchor: Arc::clone(w.data_arc()),
                    weight: weight.clone(),
                });
                weight
            }
        }
    }

    /// `(hits, misses)` so far — a warmed plan should be all hits.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// First-call races lost so far: lookups that packed a weight but found
    /// another worker's entry already inserted when they re-took the lock.
    /// Each such call is also counted as a hit, never as a miss.
    pub fn races(&self) -> u64 {
        self.races.load(Ordering::Relaxed)
    }

    /// Number of distinct i8-quantized weights currently materialized
    /// (both layouts).
    pub fn quant_len(&self) -> usize {
        self.qkn.lock().expect("cache poisoned").len()
            + self.qflat.lock().expect("cache poisoned").len()
    }

    /// Number of distinct packed weights currently materialized.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_and_shares() {
        let cache = PackedWeightCache::new();
        let w = Tensor::new(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let p1 = cache.gemm_kn(&w, 3, 2);
        // [2,3] transB → [3,2]: columns of w become rows
        assert_eq!(p1.as_slice(), &[1., 4., 2., 5., 3., 6.]);
        let p2 = cache.gemm_kn(&w, 3, 2);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clones_share_the_entry_but_fresh_buffers_do_not() {
        let cache = PackedWeightCache::new();
        let w = Tensor::new(vec![2, 2], vec![1., 2., 3., 4.]).unwrap();
        let w2 = w.clone(); // same buffer
        let p1 = cache.gemm_kn(&w, 2, 2);
        let p2 = cache.gemm_kn(&w2, 2, 2);
        assert!(Arc::ptr_eq(&p1, &p2));
        // same bytes, different allocation → distinct entry
        let w3 = Tensor::new(vec![2, 2], vec![1., 2., 3., 4.]).unwrap();
        let p3 = cache.gemm_kn(&w3, 2, 2);
        assert_eq!(p1.as_slice(), p3.as_slice());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn racing_first_calls_count_one_miss() {
        // Regression: `gemm_kn` used to bump `misses` unconditionally after
        // re-locking, so every worker racing the first call counted a miss
        // (and the stats claimed the weight was packed N times).
        let cache = Arc::new(PackedWeightCache::new());
        let w = crate::value::Value::random_f32(vec![32, 48], 5)
            .f32()
            .unwrap()
            .clone();
        let threads = 8u64;
        let barrier = Arc::new(std::sync::Barrier::new(threads as usize));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (cache, w, barrier) = (Arc::clone(&cache), w.clone(), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.gemm_kn(&w, 48, 32)
                })
            })
            .collect();
        let packs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for p in &packs {
            assert!(Arc::ptr_eq(&packs[0], p), "all callers share one buffer");
        }
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1, "racing workers must materialize the weight once");
        assert_eq!(hits, threads - 1);
        assert!(cache.races() <= hits, "races are a subset of hits");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn quant_entries_cached_and_race_safe() {
        let cache = Arc::new(PackedWeightCache::new());
        let w = crate::value::Value::random_f32(vec![16, 24], 9)
            .f32()
            .unwrap()
            .clone();
        let threads = 6u64;
        let barrier = Arc::new(std::sync::Barrier::new(threads as usize));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (cache, w, barrier) = (Arc::clone(&cache), w.clone(), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.quant_flat(&w)
                })
            })
            .collect();
        let qs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for q in &qs {
            assert!(Arc::ptr_eq(&qs[0].data, &q.data));
            assert_eq!(qs[0].scale, q.scale);
        }
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, threads - 1);
        assert_eq!(cache.quant_len(), 1);
        // the [k,n] map is independent of the flat map
        let kn = cache.quant_kn(&w, 24, 16);
        assert_eq!(kn.data.len(), w.numel());
        assert_eq!(cache.quant_len(), 2);
        assert_eq!(cache.len(), 0, "f32 map untouched");
    }

    #[test]
    fn cow_mutation_cannot_poison_a_cached_key() {
        let cache = PackedWeightCache::new();
        let w = Tensor::new(vec![1, 2], vec![7., 8.]).unwrap();
        let p1 = cache.gemm_kn(&w, 2, 1);
        // The cache anchors the buffer, so data_mut must copy-on-write and
        // the mutated tensor gets a *new* address → new entry, old intact.
        let mut w2 = w.clone();
        w2.data_mut()[0] = 0.0;
        assert_ne!(w2.data_ptr(), w.data_ptr());
        let p2 = cache.gemm_kn(&w2, 2, 1);
        assert_eq!(p1.as_slice(), &[7., 8.]);
        assert_eq!(p2.as_slice(), &[0., 8.]);
    }
}
