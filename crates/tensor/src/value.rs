//! Runtime values: a tensor of one of the IR's element types.

use crate::tensor::Tensor;
use crate::{exec_err, Result};
use ramiel_ir::tensor_data::Payload;
use ramiel_ir::{DType, TensorData};

/// A runtime tensor value of any supported dtype.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    F32(Tensor<f32>),
    I64(Tensor<i64>),
    Bool(Tensor<bool>),
}

impl Value {
    pub fn dtype(&self) -> DType {
        match self {
            Value::F32(_) => DType::F32,
            Value::I64(_) => DType::I64,
            Value::Bool(_) => DType::Bool,
        }
    }

    pub fn shape(&self) -> &[usize] {
        match self {
            Value::F32(t) => t.shape(),
            Value::I64(t) => t.shape(),
            Value::Bool(t) => t.shape(),
        }
    }

    pub fn numel(&self) -> usize {
        self.shape().iter().product()
    }

    /// Borrow as f32, or error with the op context.
    pub fn f32(&self) -> Result<&Tensor<f32>> {
        match self {
            Value::F32(t) => Ok(t),
            other => exec_err(format!("expected f32 tensor, got {:?}", other.dtype())),
        }
    }

    pub fn i64(&self) -> Result<&Tensor<i64>> {
        match self {
            Value::I64(t) => Ok(t),
            other => exec_err(format!("expected i64 tensor, got {:?}", other.dtype())),
        }
    }

    pub fn bool(&self) -> Result<&Tensor<bool>> {
        match self {
            Value::Bool(t) => Ok(t),
            other => exec_err(format!("expected bool tensor, got {:?}", other.dtype())),
        }
    }

    /// Build from an IR initializer payload.
    pub fn from_tensor_data(td: &TensorData) -> Result<Value> {
        Ok(match &td.payload {
            Payload::F32(v) => Value::F32(Tensor::new(td.shape.clone(), v.clone())?),
            Payload::I64(v) => Value::I64(Tensor::new(td.shape.clone(), v.clone())?),
            Payload::Bool(v) => Value::Bool(Tensor::new(td.shape.clone(), v.clone())?),
        })
    }

    /// Convert back into an IR constant payload (used by constant folding).
    pub fn to_tensor_data(&self) -> TensorData {
        match self {
            Value::F32(t) => TensorData {
                shape: t.shape().to_vec(),
                payload: Payload::F32(t.data().to_vec()),
            },
            Value::I64(t) => TensorData {
                shape: t.shape().to_vec(),
                payload: Payload::I64(t.data().to_vec()),
            },
            Value::Bool(t) => TensorData {
                shape: t.shape().to_vec(),
                payload: Payload::Bool(t.data().to_vec()),
            },
        }
    }

    /// Deterministic pseudo-random f32 value for a given shape — used by
    /// tests and example drivers to fabricate inputs.
    pub fn random_f32(shape: Vec<usize>, seed: u64) -> Value {
        let numel: usize = shape.iter().product();
        let mut state = seed ^ 0x5DEE_CE66_D1CE_4E5B;
        let data = (0..numel)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                ((z >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect();
        Value::F32(Tensor::new(shape, data).expect("numel matches by construction"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_tensor_data() {
        let v = Value::random_f32(vec![2, 3], 42);
        let td = v.to_tensor_data();
        let v2 = Value::from_tensor_data(&td).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn dtype_accessors_enforced() {
        let v = Value::I64(Tensor::new(vec![2], vec![1, 2]).unwrap());
        assert!(v.i64().is_ok());
        assert!(v.f32().is_err());
        assert_eq!(v.dtype(), DType::I64);
        assert_eq!(v.numel(), 2);
    }

    #[test]
    fn random_is_deterministic_and_seed_sensitive() {
        let a = Value::random_f32(vec![8], 1);
        let b = Value::random_f32(vec![8], 1);
        let c = Value::random_f32(vec![8], 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
