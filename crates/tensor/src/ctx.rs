//! Execution context: the intra-op parallelism knob.
//!
//! The paper varies PyTorch's OpenMP thread count (`NUM_THREADS=2/4`) as a
//! downstream optimization after Linear Clustering. Here the same knob is a
//! rayon thread pool attached to the context; heavy kernels (`Conv`,
//! `MatMul`, `Gemm`) split their outermost loop across it.

use crate::pack::PackedWeightCache;
use ramiel_ir::OpKind;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Allocation gauge for live activation bytes. Executors charge it when they
/// insert a value into an environment and discharge it when liveness analysis
/// evicts the value, so `peak_bytes` is the measured high-water mark the
/// static estimate in `ramiel-analyze` must upper-bound. Thread-safe: all
/// workers of one run share a gauge through the [`ExecCtx`].
#[derive(Debug, Default)]
pub struct MemGauge {
    live: AtomicI64,
    peak: AtomicI64,
}

impl MemGauge {
    pub fn new() -> Arc<MemGauge> {
        Arc::new(MemGauge::default())
    }

    /// Charge `bytes` of newly live data and update the high-water mark.
    pub fn alloc(&self, bytes: usize) {
        let now = self.live.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Discharge `bytes` that liveness analysis proved dead.
    pub fn free(&self, bytes: usize) {
        self.live.fetch_sub(bytes as i64, Ordering::Relaxed);
    }

    /// Currently charged bytes.
    pub fn live_bytes(&self) -> i64 {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark since construction or the last [`MemGauge::reset`].
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed).max(0) as u64
    }

    pub fn reset(&self) {
        self.live.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
    }
}

/// Pre-kernel hook: consulted by [`crate::eval_op`] before dispatching a
/// kernel. Returning `Some(msg)` fails the evaluation with that message —
/// this is how the runtime's fault injector makes an *injected* kernel error
/// travel the exact path a real kernel failure takes.
pub type KernelHook = Arc<dyn Fn(&OpKind) -> Option<String> + Send + Sync>;

/// Which kernel implementation family executes the heavy ops (`Conv`,
/// `MatMul`, `Gemm`); everything else always runs the scalar f32 kernels.
///
/// * [`ScalarF32`](KernelBackend::ScalarF32) — the reference scalar loops.
/// * [`SimdF32`](KernelBackend::SimdF32) — 8-lane unrolled f32 microkernels
///   (`kernels::simd`). Per output element the multiply-add chain is the
///   same ascending-`k` sequence as the scalar kernels, so results are
///   **bit-identical** to `ScalarF32` and the cross-executor equivalence
///   suites hold unchanged.
/// * [`QuantI8`](KernelBackend::QuantI8) — per-tensor symmetric i8
///   quantization (`kernels::quant`): weights are quantized once per plan,
///   activations at the kernel edge, accumulation is exact i32, outputs are
///   dequantized to f32. Numerically *close to* but not identical to f32;
///   it has its own tolerance-based conformance contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelBackend {
    #[default]
    ScalarF32,
    SimdF32,
    QuantI8,
}

impl KernelBackend {
    /// Stable CLI / metrics label.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::ScalarF32 => "scalar",
            KernelBackend::SimdF32 => "simd",
            KernelBackend::QuantI8 => "quant-i8",
        }
    }

    /// Parse a CLI spelling (`--backend <scalar|simd|quant-i8>`).
    pub fn parse(s: &str) -> Option<KernelBackend> {
        match s {
            "scalar" | "scalar-f32" | "f32" => Some(KernelBackend::ScalarF32),
            "simd" | "simd-f32" => Some(KernelBackend::SimdF32),
            "quant-i8" | "quant" | "i8" => Some(KernelBackend::QuantI8),
            _ => None,
        }
    }

    /// All backends, in the order benches and tables report them.
    pub fn all() -> [KernelBackend; 3] {
        [
            KernelBackend::ScalarF32,
            KernelBackend::SimdF32,
            KernelBackend::QuantI8,
        ]
    }
}

impl std::fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Intra-op pools by thread count, shared process-wide. `with_intra_op` used
/// to build a fresh rayon pool per call, so repeated runs (differential
/// tests, benches) spawned dozens of short-lived pools; pools are stateless
/// given a thread count, so one per count serves everyone.
static INTRA_OP_POOLS: OnceLock<Mutex<HashMap<usize, Arc<rayon::ThreadPool>>>> = OnceLock::new();

/// Per-executor kernel context.
#[derive(Clone, Default)]
pub struct ExecCtx {
    pool: Option<Arc<rayon::ThreadPool>>,
    kernel_hook: Option<KernelHook>,
    packed: Arc<PackedWeightCache>,
    mem: Option<Arc<MemGauge>>,
    backend: KernelBackend,
}

impl ExecCtx {
    /// Fully sequential context (intra-op parallelism disabled). This is the
    /// default inside cluster worker threads so inter-op and intra-op
    /// parallelism do not multiply unintentionally.
    pub fn sequential() -> Self {
        ExecCtx::default()
    }

    /// Context with an intra-op pool of `threads` workers, memoized per
    /// thread count. `threads <= 1` yields a sequential context.
    pub fn with_intra_op(threads: usize) -> Self {
        if threads <= 1 {
            return ExecCtx::sequential();
        }
        let pool = {
            let mut pools = INTRA_OP_POOLS
                .get_or_init(Default::default)
                .lock()
                .expect("intra-op pool registry poisoned");
            Arc::clone(pools.entry(threads).or_insert_with(|| {
                Arc::new(
                    rayon::ThreadPoolBuilder::new()
                        .num_threads(threads)
                        .thread_name(move |i| format!("intra-op-{threads}t-{i}"))
                        .build()
                        .expect("failed to build intra-op thread pool"),
                )
            }))
        };
        ExecCtx {
            pool: Some(pool),
            ..ExecCtx::default()
        }
    }

    /// Share an existing pool (lets several cluster workers draw from one
    /// bounded pool, mimicking a process-wide OpenMP runtime).
    pub fn with_pool(pool: Arc<rayon::ThreadPool>) -> Self {
        ExecCtx {
            pool: Some(pool),
            ..ExecCtx::default()
        }
    }

    /// Same context with a pre-kernel hook attached (fault injection). The
    /// packed-weight cache stays shared with the original context.
    pub fn with_kernel_hook(&self, hook: KernelHook) -> Self {
        ExecCtx {
            pool: self.pool.clone(),
            kernel_hook: Some(hook),
            packed: Arc::clone(&self.packed),
            mem: self.mem.clone(),
            backend: self.backend,
        }
    }

    /// Same context with an allocation gauge attached; executors report
    /// activation liveness to it (see [`MemGauge`]).
    pub fn with_mem_gauge(&self, gauge: Arc<MemGauge>) -> Self {
        ExecCtx {
            pool: self.pool.clone(),
            kernel_hook: self.kernel_hook.clone(),
            packed: Arc::clone(&self.packed),
            mem: Some(gauge),
            backend: self.backend,
        }
    }

    /// Same context with a different kernel backend. The packed-weight cache
    /// stays shared — f32-packed and i8-quantized entries live in separate
    /// maps, so switching back and forth never poisons either.
    pub fn with_backend(&self, backend: KernelBackend) -> Self {
        ExecCtx {
            pool: self.pool.clone(),
            kernel_hook: self.kernel_hook.clone(),
            packed: Arc::clone(&self.packed),
            mem: self.mem.clone(),
            backend,
        }
    }

    /// The kernel backend heavy ops dispatch on.
    #[inline]
    pub fn backend(&self) -> KernelBackend {
        self.backend
    }

    /// The attached allocation gauge, if any.
    pub fn mem_gauge(&self) -> Option<&Arc<MemGauge>> {
        self.mem.as_ref()
    }

    /// The per-plan packed-weight cache. Shared (not reset) by `clone` and
    /// `with_kernel_hook`, so every worker of one executor reuses the same
    /// packed buffers; independent `sequential()`/`with_intra_op()` contexts
    /// each start with an empty cache.
    pub fn packed(&self) -> &PackedWeightCache {
        &self.packed
    }

    /// Consult the kernel hook, if any. `Some(msg)` means the kernel layer
    /// must fail this evaluation with `msg`.
    #[inline]
    pub fn kernel_fault(&self, op: &OpKind) -> Option<String> {
        self.kernel_hook.as_ref().and_then(|h| h(op))
    }

    /// Number of intra-op threads (1 when sequential).
    pub fn intra_op_threads(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.current_num_threads())
    }

    /// Run `f` inside the intra-op pool if one is attached, so rayon
    /// parallel iterators inside kernels use it; otherwise run inline.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        match &self.pool {
            Some(pool) => pool.install(f),
            None => f(),
        }
    }

    /// True if kernels should bother splitting work.
    pub fn parallel(&self) -> bool {
        self.pool.is_some()
    }
}

impl std::fmt::Debug for ExecCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecCtx")
            .field("intra_op_threads", &self.intra_op_threads())
            .field("backend", &self.backend)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_has_one_thread() {
        let ctx = ExecCtx::sequential();
        assert_eq!(ctx.intra_op_threads(), 1);
        assert!(!ctx.parallel());
        assert_eq!(ctx.install(|| 41 + 1), 42);
    }

    #[test]
    fn pool_sizes_respected() {
        let ctx = ExecCtx::with_intra_op(3);
        assert_eq!(ctx.intra_op_threads(), 3);
        assert!(ctx.parallel());
        // installing runs on the pool
        let n = ctx.install(rayon::current_num_threads);
        assert_eq!(n, 3);
    }

    #[test]
    fn one_thread_degenerates_to_sequential() {
        let ctx = ExecCtx::with_intra_op(1);
        assert!(!ctx.parallel());
    }

    #[test]
    fn intra_op_pools_are_memoized_per_thread_count() {
        let a = ExecCtx::with_intra_op(5);
        let b = ExecCtx::with_intra_op(5);
        let (pa, pb) = (a.pool.unwrap(), b.pool.unwrap());
        assert!(Arc::ptr_eq(&pa, &pb), "same thread count must share a pool");
        let c = ExecCtx::with_intra_op(6);
        assert!(!Arc::ptr_eq(&pa, &c.pool.unwrap()));
    }

    #[test]
    fn mem_gauge_tracks_high_water() {
        let g = MemGauge::new();
        g.alloc(100);
        g.alloc(50);
        g.free(120);
        g.alloc(10);
        assert_eq!(g.live_bytes(), 40);
        assert_eq!(g.peak_bytes(), 150);
        g.reset();
        assert_eq!(g.peak_bytes(), 0);
        let ctx = ExecCtx::sequential().with_mem_gauge(Arc::clone(&g));
        ctx.mem_gauge().unwrap().alloc(7);
        assert_eq!(g.peak_bytes(), 7);
    }

    #[test]
    fn backend_defaults_to_scalar_and_threads_through_builders() {
        let ctx = ExecCtx::sequential();
        assert_eq!(ctx.backend(), KernelBackend::ScalarF32);
        let simd = ctx.with_backend(KernelBackend::SimdF32);
        assert_eq!(simd.backend(), KernelBackend::SimdF32);
        assert!(Arc::ptr_eq(&ctx.packed, &simd.packed), "cache stays shared");
        let hooked = simd.with_kernel_hook(Arc::new(|_| None));
        assert_eq!(hooked.backend(), KernelBackend::SimdF32);
        let gauged = simd.with_mem_gauge(MemGauge::new());
        assert_eq!(gauged.backend(), KernelBackend::SimdF32);
    }

    #[test]
    fn backend_parse_round_trips() {
        for b in KernelBackend::all() {
            assert_eq!(KernelBackend::parse(b.name()), Some(b));
        }
        assert_eq!(KernelBackend::parse("quant"), Some(KernelBackend::QuantI8));
        assert_eq!(KernelBackend::parse("avx-512"), None);
    }

    #[test]
    fn packed_cache_shared_by_clone_and_hook_but_not_across_contexts() {
        let a = ExecCtx::sequential();
        let b = a.clone();
        let hooked = a.with_kernel_hook(Arc::new(|_| None));
        assert!(Arc::ptr_eq(&a.packed, &b.packed));
        assert!(Arc::ptr_eq(&a.packed, &hooked.packed));
        let other = ExecCtx::sequential();
        assert!(!Arc::ptr_eq(&a.packed, &other.packed));
    }
}
