//! Execution context: the intra-op parallelism knob.
//!
//! The paper varies PyTorch's OpenMP thread count (`NUM_THREADS=2/4`) as a
//! downstream optimization after Linear Clustering. Here the same knob is a
//! rayon thread pool attached to the context; heavy kernels (`Conv`,
//! `MatMul`, `Gemm`) split their outermost loop across it.

use ramiel_ir::OpKind;
use std::sync::Arc;

/// Pre-kernel hook: consulted by [`crate::eval_op`] before dispatching a
/// kernel. Returning `Some(msg)` fails the evaluation with that message —
/// this is how the runtime's fault injector makes an *injected* kernel error
/// travel the exact path a real kernel failure takes.
pub type KernelHook = Arc<dyn Fn(&OpKind) -> Option<String> + Send + Sync>;

/// Per-executor kernel context.
#[derive(Clone, Default)]
pub struct ExecCtx {
    pool: Option<Arc<rayon::ThreadPool>>,
    kernel_hook: Option<KernelHook>,
}

impl ExecCtx {
    /// Fully sequential context (intra-op parallelism disabled). This is the
    /// default inside cluster worker threads so inter-op and intra-op
    /// parallelism do not multiply unintentionally.
    pub fn sequential() -> Self {
        ExecCtx {
            pool: None,
            kernel_hook: None,
        }
    }

    /// Context with an intra-op pool of `threads` workers. `threads <= 1`
    /// yields a sequential context.
    pub fn with_intra_op(threads: usize) -> Self {
        if threads <= 1 {
            return ExecCtx::sequential();
        }
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .thread_name(|i| format!("intra-op-{i}"))
            .build()
            .expect("failed to build intra-op thread pool");
        ExecCtx {
            pool: Some(Arc::new(pool)),
            kernel_hook: None,
        }
    }

    /// Share an existing pool (lets several cluster workers draw from one
    /// bounded pool, mimicking a process-wide OpenMP runtime).
    pub fn with_pool(pool: Arc<rayon::ThreadPool>) -> Self {
        ExecCtx {
            pool: Some(pool),
            kernel_hook: None,
        }
    }

    /// Same context with a pre-kernel hook attached (fault injection).
    pub fn with_kernel_hook(&self, hook: KernelHook) -> Self {
        ExecCtx {
            pool: self.pool.clone(),
            kernel_hook: Some(hook),
        }
    }

    /// Consult the kernel hook, if any. `Some(msg)` means the kernel layer
    /// must fail this evaluation with `msg`.
    #[inline]
    pub fn kernel_fault(&self, op: &OpKind) -> Option<String> {
        self.kernel_hook.as_ref().and_then(|h| h(op))
    }

    /// Number of intra-op threads (1 when sequential).
    pub fn intra_op_threads(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.current_num_threads())
    }

    /// Run `f` inside the intra-op pool if one is attached, so rayon
    /// parallel iterators inside kernels use it; otherwise run inline.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        match &self.pool {
            Some(pool) => pool.install(f),
            None => f(),
        }
    }

    /// True if kernels should bother splitting work.
    pub fn parallel(&self) -> bool {
        self.pool.is_some()
    }
}

impl std::fmt::Debug for ExecCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecCtx")
            .field("intra_op_threads", &self.intra_op_threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_has_one_thread() {
        let ctx = ExecCtx::sequential();
        assert_eq!(ctx.intra_op_threads(), 1);
        assert!(!ctx.parallel());
        assert_eq!(ctx.install(|| 41 + 1), 42);
    }

    #[test]
    fn pool_sizes_respected() {
        let ctx = ExecCtx::with_intra_op(3);
        assert_eq!(ctx.intra_op_threads(), 3);
        assert!(ctx.parallel());
        // installing runs on the pool
        let n = ctx.install(rayon::current_num_threads);
        assert_eq!(n, 3);
    }

    #[test]
    fn one_thread_degenerates_to_sequential() {
        let ctx = ExecCtx::with_intra_op(1);
        assert!(!ctx.parallel());
    }
}
