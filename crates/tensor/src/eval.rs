//! Single-node operator evaluation: the bridge from [`ramiel_ir::OpKind`] to
//! the kernels. Both the runtime executors and the constant-propagation pass
//! drive graphs through this one function, so folding and execution can never
//! disagree on semantics.

use crate::ctx::{ExecCtx, KernelBackend};
use crate::kernels::conv::{conv2d, ConvSpec};
use crate::kernels::elementwise as ew;
use crate::kernels::gemm::{gemm, matmul};
use crate::kernels::movement as mv;
use crate::kernels::norm;
use crate::kernels::pool;
use crate::kernels::quant;
use crate::kernels::reduce;
use crate::tensor::Tensor;
use crate::value::Value;
use crate::{exec_err, Result};
use ramiel_ir::OpKind;

fn want(inputs: &[Value], n: usize, op: &OpKind) -> Result<()> {
    if inputs.len() < n {
        return exec_err(format!(
            "{} expects at least {n} inputs, got {}",
            op.name(),
            inputs.len()
        ));
    }
    Ok(())
}

/// Extract a shape vector from a 1-D i64 tensor value.
fn shape_operand(v: &Value) -> Result<Vec<i64>> {
    Ok(v.i64()?.data().to_vec())
}

/// Dispatch a movement kernel over any dtype.
macro_rules! movement {
    ($val:expr, |$t:ident| $body:expr) => {
        match $val {
            Value::F32($t) => Ok(Value::F32($body?)),
            Value::I64($t) => Ok(Value::I64($body?)),
            Value::Bool($t) => Ok(Value::Bool($body?)),
        }
    };
}

/// Evaluate one operator application. `Constant` nodes are resolved by the
/// caller (the payload lives in the graph initializer table, not in the
/// inputs), so they are rejected here.
pub fn eval_op(ctx: &ExecCtx, op: &OpKind, inputs: &[Value]) -> Result<Vec<Value>> {
    // Fault-injection hook: an armed hook fails the evaluation here, at the
    // kernel boundary, so injected kernel errors exercise the same error
    // path as real ones.
    if let Some(msg) = ctx.kernel_fault(op) {
        return exec_err(msg);
    }
    let one = |v: Value| -> Result<Vec<Value>> { Ok(vec![v]) };
    match op {
        OpKind::Conv {
            kernel,
            stride,
            pads,
            groups,
        } => {
            want(inputs, 2, op)?;
            let spec = ConvSpec {
                kernel: *kernel,
                stride: *stride,
                pads: *pads,
                groups: *groups,
            };
            let bias = inputs.get(2).map(|b| b.f32()).transpose()?;
            // QuantI8 routes the heavy ops to the i8 kernels; Scalar/Simd
            // share the f32 kernels, which dispatch internally.
            let y = if ctx.backend() == KernelBackend::QuantI8 {
                quant::conv2d_q(ctx, inputs[0].f32()?, inputs[1].f32()?, bias, &spec)?
            } else {
                conv2d(ctx, inputs[0].f32()?, inputs[1].f32()?, bias, &spec)?
            };
            one(Value::F32(y))
        }
        OpKind::MatMul => {
            want(inputs, 2, op)?;
            let y = if ctx.backend() == KernelBackend::QuantI8 {
                quant::matmul_q(ctx, inputs[0].f32()?, inputs[1].f32()?)?
            } else {
                matmul(ctx, inputs[0].f32()?, inputs[1].f32()?)?
            };
            one(Value::F32(y))
        }
        OpKind::Gemm { trans_b } => {
            want(inputs, 2, op)?;
            let bias = inputs.get(2).map(|b| b.f32()).transpose()?;
            let y = if ctx.backend() == KernelBackend::QuantI8 {
                quant::gemm_q(ctx, inputs[0].f32()?, inputs[1].f32()?, bias, *trans_b)?
            } else {
                gemm(ctx, inputs[0].f32()?, inputs[1].f32()?, bias, *trans_b)?
            };
            one(Value::F32(y))
        }
        OpKind::Relu => unary(inputs, op, |v| v.max(0.0)),
        OpKind::LeakyRelu { alpha } => {
            let a = *alpha;
            unary(inputs, op, move |v| if v >= 0.0 { v } else { a * v })
        }
        OpKind::Sigmoid => unary(inputs, op, |v| 1.0 / (1.0 + (-v).exp())),
        OpKind::Tanh => unary(inputs, op, f32::tanh),
        OpKind::Gelu => unary(inputs, op, ew::gelu),
        OpKind::Erf => unary(inputs, op, ew::erf),
        OpKind::Sqrt => unary(inputs, op, f32::sqrt),
        OpKind::Exp => unary(inputs, op, f32::exp),
        OpKind::Neg => unary(inputs, op, |v| -v),
        OpKind::Clip { min, max } => {
            let (lo, hi) = (*min, *max);
            unary(inputs, op, move |v| v.clamp(lo, hi))
        }
        OpKind::Dropout | OpKind::Identity => {
            want(inputs, 1, op)?;
            one(inputs[0].clone())
        }
        OpKind::Add => binary(inputs, op, |a, b| a + b, |a, b| a + b),
        OpKind::Sub => binary(inputs, op, |a, b| a - b, |a, b| a - b),
        OpKind::Mul => binary(inputs, op, |a, b| a * b, |a, b| a * b),
        OpKind::Div => binary(inputs, op, |a, b| a / b, |a, b| a / b),
        OpKind::Pow => binary(inputs, op, f32::powf, |a, b| a.pow(b as u32)),
        OpKind::Equal => {
            want(inputs, 2, op)?;
            one(ew::equal(&inputs[0], &inputs[1])?)
        }
        OpKind::Where => {
            want(inputs, 3, op)?;
            one(Value::F32(ew::where_select(
                inputs[0].bool()?,
                inputs[1].f32()?,
                inputs[2].f32()?,
            )?))
        }
        OpKind::Softmax { axis } => {
            want(inputs, 1, op)?;
            one(Value::F32(norm::softmax(inputs[0].f32()?, *axis)?))
        }
        OpKind::BatchNorm { epsilon } => {
            want(inputs, 5, op)?;
            one(Value::F32(norm::batch_norm(
                inputs[0].f32()?,
                inputs[1].f32()?,
                inputs[2].f32()?,
                inputs[3].f32()?,
                inputs[4].f32()?,
                *epsilon,
            )?))
        }
        OpKind::LayerNorm { epsilon } => {
            want(inputs, 3, op)?;
            one(Value::F32(norm::layer_norm(
                inputs[0].f32()?,
                inputs[1].f32()?,
                inputs[2].f32()?,
                *epsilon,
            )?))
        }
        OpKind::ReduceMean { axes, keepdims } => {
            want(inputs, 1, op)?;
            one(Value::F32(reduce::reduce_mean(
                inputs[0].f32()?,
                axes,
                *keepdims,
            )?))
        }
        OpKind::MaxPool(spec) => {
            want(inputs, 1, op)?;
            one(Value::F32(pool::max_pool(inputs[0].f32()?, spec)?))
        }
        OpKind::AveragePool(spec) => {
            want(inputs, 1, op)?;
            one(Value::F32(pool::avg_pool(inputs[0].f32()?, spec)?))
        }
        OpKind::GlobalAveragePool => {
            want(inputs, 1, op)?;
            one(Value::F32(pool::global_avg_pool(inputs[0].f32()?)?))
        }
        OpKind::Concat { axis } => {
            want(inputs, 1, op)?;
            match &inputs[0] {
                Value::F32(_) => {
                    let ts: Result<Vec<&Tensor<f32>>> = inputs.iter().map(|v| v.f32()).collect();
                    one(Value::F32(mv::concat(&ts?, *axis)?))
                }
                Value::I64(_) => {
                    let ts: Result<Vec<&Tensor<i64>>> = inputs.iter().map(|v| v.i64()).collect();
                    one(Value::I64(mv::concat(&ts?, *axis)?))
                }
                Value::Bool(_) => {
                    let ts: Result<Vec<&Tensor<bool>>> = inputs.iter().map(|v| v.bool()).collect();
                    one(Value::Bool(mv::concat(&ts?, *axis)?))
                }
            }
        }
        OpKind::Split { axis, parts } => {
            want(inputs, 1, op)?;
            match &inputs[0] {
                Value::F32(t) => Ok(mv::split(t, *axis, parts)?
                    .into_iter()
                    .map(Value::F32)
                    .collect()),
                Value::I64(t) => Ok(mv::split(t, *axis, parts)?
                    .into_iter()
                    .map(Value::I64)
                    .collect()),
                Value::Bool(t) => Ok(mv::split(t, *axis, parts)?
                    .into_iter()
                    .map(Value::Bool)
                    .collect()),
            }
        }
        OpKind::Slice {
            axes,
            starts,
            ends,
            steps,
        } => {
            want(inputs, 1, op)?;
            movement!(&inputs[0], |t| mv::slice(t, axes, starts, ends, steps)).map(|v| vec![v])
        }
        OpKind::Gather { axis } => {
            want(inputs, 2, op)?;
            let idx = inputs[1].i64()?;
            movement!(&inputs[0], |t| mv::gather(t, idx, *axis)).map(|v| vec![v])
        }
        OpKind::Reshape => {
            want(inputs, 2, op)?;
            let spec = shape_operand(&inputs[1])?;
            let numel = inputs[0].numel();
            let shape = resolve_reshape(&spec, inputs[0].shape(), numel)?;
            movement!(&inputs[0], |t| t.reshaped(shape.clone())).map(|v| vec![v])
        }
        OpKind::Transpose { perm } => {
            want(inputs, 1, op)?;
            movement!(&inputs[0], |t| mv::transpose(t, perm)).map(|v| vec![v])
        }
        OpKind::Flatten { axis } => {
            want(inputs, 1, op)?;
            let shape = inputs[0].shape();
            let a = if *axis == shape.len() as isize {
                shape.len()
            } else {
                ramiel_ir::shape::norm_axis(*axis, shape.len())
                    .map_err(|e| crate::ExecError(e.to_string()))?
            };
            let lead: usize = shape[..a].iter().product();
            let tail: usize = shape[a..].iter().product();
            movement!(&inputs[0], |t| t.reshaped(vec![lead, tail])).map(|v| vec![v])
        }
        OpKind::Unsqueeze { axes } => {
            want(inputs, 1, op)?;
            let shape = unsqueeze_shape(inputs[0].shape(), axes)?;
            movement!(&inputs[0], |t| t.reshaped(shape.clone())).map(|v| vec![v])
        }
        OpKind::Squeeze { axes } => {
            want(inputs, 1, op)?;
            let shape = squeeze_shape(inputs[0].shape(), axes)?;
            movement!(&inputs[0], |t| t.reshaped(shape.clone())).map(|v| vec![v])
        }
        OpKind::Expand => {
            want(inputs, 2, op)?;
            let spec = shape_operand(&inputs[1])?;
            let target: Vec<usize> = spec.iter().map(|&d| d.max(0) as usize).collect();
            movement!(&inputs[0], |t| mv::expand(t, &target)).map(|v| vec![v])
        }
        OpKind::Resize { scale } => {
            want(inputs, 1, op)?;
            one(Value::F32(mv::resize_nearest(inputs[0].f32()?, *scale)?))
        }
        OpKind::Pad { pads } => {
            want(inputs, 1, op)?;
            movement!(&inputs[0], |t| mv::pad_spatial(t, *pads)).map(|v| vec![v])
        }
        OpKind::Cast { to } => {
            want(inputs, 1, op)?;
            one(mv::cast(&inputs[0], *to)?)
        }
        OpKind::Shape => {
            want(inputs, 1, op)?;
            let dims: Vec<i64> = inputs[0].shape().iter().map(|&d| d as i64).collect();
            let n = dims.len();
            one(Value::I64(Tensor::new(vec![n], dims)?))
        }
        OpKind::ConstantOfShape { value } => {
            want(inputs, 1, op)?;
            let spec = shape_operand(&inputs[0])?;
            let shape: Vec<usize> = spec.iter().map(|&d| d.max(0) as usize).collect();
            one(Value::F32(Tensor::full(shape, *value)))
        }
        OpKind::Constant => exec_err("Constant nodes are resolved from the initializer table"),
    }
}

/// [`eval_op`] with an in-place hint: the caller asserts that `inputs[slot]`
/// is dead after this op (its last consumer) and has dropped every
/// environment handle to it. If the buffer is also uniquely owned
/// (`Arc::get_mut` succeeds) and the op is an elementwise kernel that can
/// write its result over that operand, the output reuses the input buffer
/// with zero allocation. Any other case — shared buffer, non-elementwise op,
/// dtype or shape mismatch, armed fault hook — falls back to [`eval_op`], so
/// the hint is only ever an optimization, never a semantic change.
pub fn eval_op_inplace(
    ctx: &ExecCtx,
    op: &OpKind,
    mut inputs: Vec<Value>,
    slot: usize,
) -> Result<Vec<Value>> {
    if ctx.kernel_fault(op).is_none() {
        if let Some(out) = try_inplace(op, &mut inputs, slot) {
            return Ok(out);
        }
    }
    eval_op(ctx, op, &inputs)
}

/// The in-place fast paths. Closures here must mirror the [`eval_op`] arms
/// exactly — the differential suite holds both paths bit-identical.
fn try_inplace(op: &OpKind, inputs: &mut Vec<Value>, slot: usize) -> Option<Vec<Value>> {
    match op {
        OpKind::Relu => unary_inplace(inputs, slot, |v| v.max(0.0)),
        OpKind::LeakyRelu { alpha } => {
            let a = *alpha;
            unary_inplace(inputs, slot, move |v| if v >= 0.0 { v } else { a * v })
        }
        OpKind::Sigmoid => unary_inplace(inputs, slot, |v| 1.0 / (1.0 + (-v).exp())),
        OpKind::Tanh => unary_inplace(inputs, slot, f32::tanh),
        OpKind::Gelu => unary_inplace(inputs, slot, ew::gelu),
        OpKind::Erf => unary_inplace(inputs, slot, ew::erf),
        OpKind::Sqrt => unary_inplace(inputs, slot, f32::sqrt),
        OpKind::Exp => unary_inplace(inputs, slot, f32::exp),
        OpKind::Neg => unary_inplace(inputs, slot, |v| -v),
        OpKind::Clip { min, max } => {
            let (lo, hi) = (*min, *max);
            unary_inplace(inputs, slot, move |v| v.clamp(lo, hi))
        }
        OpKind::Add => binary_inplace(inputs, slot, |a, b| a + b),
        OpKind::Sub => binary_inplace(inputs, slot, |a, b| a - b),
        OpKind::Mul => binary_inplace(inputs, slot, |a, b| a * b),
        OpKind::Div => binary_inplace(inputs, slot, |a, b| a / b),
        OpKind::Pow => binary_inplace(inputs, slot, f32::powf),
        _ => None,
    }
}

fn unary_inplace(
    inputs: &mut Vec<Value>,
    slot: usize,
    f: impl Fn(f32) -> f32,
) -> Option<Vec<Value>> {
    if slot != 0 || inputs.len() != 1 {
        return None;
    }
    let Value::F32(t) = &mut inputs[0] else {
        return None;
    };
    for v in t.try_data_mut()?.iter_mut() {
        *v = f(*v);
    }
    Some(vec![inputs.swap_remove(0)])
}

fn binary_inplace(
    inputs: &mut Vec<Value>,
    slot: usize,
    f: impl Fn(f32, f32) -> f32,
) -> Option<Vec<Value>> {
    if slot > 1 || inputs.len() != 2 {
        return None;
    }
    let (lhs, rhs) = inputs.split_at_mut(1);
    let (Value::F32(a), Value::F32(b)) = (&mut lhs[0], &mut rhs[0]) else {
        return None;
    };
    // In-place only covers the same-shape case; broadcasts change the output
    // extent and must go through the allocating kernel.
    if a.shape() != b.shape() {
        return None;
    }
    if slot == 0 {
        let dst = a.try_data_mut()?;
        for (d, &y) in dst.iter_mut().zip(b.data()) {
            *d = f(*d, y);
        }
        Some(vec![inputs.swap_remove(0)])
    } else {
        let dst = b.try_data_mut()?;
        for (d, &x) in dst.iter_mut().zip(a.data()) {
            *d = f(x, *d);
        }
        Some(vec![inputs.swap_remove(1)])
    }
}

fn unary(inputs: &[Value], op: &OpKind, f: impl Fn(f32) -> f32) -> Result<Vec<Value>> {
    want(inputs, 1, op)?;
    Ok(vec![Value::F32(ew::unary_f32(inputs[0].f32()?, f))])
}

fn binary(
    inputs: &[Value],
    op: &OpKind,
    ff: impl Fn(f32, f32) -> f32,
    fi: impl Fn(i64, i64) -> i64,
) -> Result<Vec<Value>> {
    want(inputs, 2, op)?;
    match (&inputs[0], &inputs[1]) {
        (Value::F32(a), Value::F32(b)) => Ok(vec![Value::F32(ew::binary_f32(a, b, ff)?)]),
        (Value::I64(a), Value::I64(b)) => Ok(vec![Value::I64(ew::binary_i64(a, b, fi)?)]),
        _ => exec_err(format!("{} requires matching dtypes", op.name())),
    }
}

/// Resolve a reshape spec (with -1 / 0 conventions) against an input shape.
pub fn resolve_reshape(spec: &[i64], in_shape: &[usize], numel: usize) -> Result<Vec<usize>> {
    let mut shape = Vec::with_capacity(spec.len());
    let mut infer_at = None;
    for (i, &d) in spec.iter().enumerate() {
        match d {
            -1 => {
                if infer_at.is_some() {
                    return exec_err("Reshape allows a single -1");
                }
                infer_at = Some(i);
                shape.push(1);
            }
            0 => match in_shape.get(i) {
                Some(&v) => shape.push(v),
                None => return exec_err("Reshape 0-dim copies past input rank"),
            },
            d if d > 0 => shape.push(d as usize),
            _ => return exec_err("Reshape dims must be -1, 0 or positive"),
        }
    }
    let partial: usize = shape.iter().product();
    if let Some(i) = infer_at {
        if partial == 0 || !numel.is_multiple_of(partial) {
            return exec_err("Reshape cannot infer -1 dimension");
        }
        shape[i] = numel / partial;
    } else if partial != numel {
        return exec_err(format!(
            "Reshape element count mismatch: {numel} -> {partial}"
        ));
    }
    Ok(shape)
}

fn unsqueeze_shape(in_shape: &[usize], axes: &[isize]) -> Result<Vec<usize>> {
    let out_rank = in_shape.len() + axes.len();
    let mut at = vec![false; out_rank];
    for &a in axes {
        let ax = ramiel_ir::shape::norm_axis(a, out_rank)
            .map_err(|e| crate::ExecError(e.to_string()))?;
        at[ax] = true;
    }
    let mut it = in_shape.iter();
    Ok(at
        .iter()
        .map(|&ins| if ins { 1 } else { *it.next().unwrap() })
        .collect())
}

fn squeeze_shape(in_shape: &[usize], axes: &[isize]) -> Result<Vec<usize>> {
    let rank = in_shape.len();
    let mut drop = vec![false; rank];
    for &a in axes {
        let ax =
            ramiel_ir::shape::norm_axis(a, rank).map_err(|e| crate::ExecError(e.to_string()))?;
        if in_shape[ax] != 1 {
            return exec_err(format!("cannot squeeze non-unit axis {ax}"));
        }
        drop[ax] = true;
    }
    Ok(in_shape
        .iter()
        .enumerate()
        .filter(|(i, _)| !drop[*i])
        .map(|(_, &d)| d)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(shape: Vec<usize>, data: Vec<f32>) -> Value {
        Value::F32(Tensor::new(shape, data).unwrap())
    }

    #[test]
    fn relu_add_chain() {
        let ctx = ExecCtx::sequential();
        let x = f(vec![3], vec![-1., 0., 2.]);
        let r = eval_op(&ctx, &OpKind::Relu, &[x]).unwrap().remove(0);
        let y = f(vec![3], vec![1., 1., 1.]);
        let s = eval_op(&ctx, &OpKind::Add, &[r, y]).unwrap().remove(0);
        assert_eq!(s.f32().unwrap().data(), &[1., 1., 3.]);
    }

    #[test]
    fn shape_then_gather_then_reshape() {
        let ctx = ExecCtx::sequential();
        let x = f(vec![2, 6], vec![0.0; 12]);
        let s = eval_op(&ctx, &OpKind::Shape, std::slice::from_ref(&x))
            .unwrap()
            .remove(0);
        assert_eq!(s.i64().unwrap().data(), &[2, 6]);
        let idx = Value::I64(Tensor::new(vec![1], vec![1]).unwrap());
        let d = eval_op(&ctx, &OpKind::Gather { axis: 0 }, &[s, idx])
            .unwrap()
            .remove(0);
        assert_eq!(d.i64().unwrap().data(), &[6]);
        let spec = Value::I64(Tensor::new(vec![2], vec![3, -1]).unwrap());
        let r = eval_op(&ctx, &OpKind::Reshape, &[x, spec])
            .unwrap()
            .remove(0);
        assert_eq!(r.shape(), &[3, 4]);
    }

    #[test]
    fn constant_rejected_here() {
        let ctx = ExecCtx::sequential();
        assert!(eval_op(&ctx, &OpKind::Constant, &[]).is_err());
    }

    #[test]
    fn dropout_is_identity_at_inference() {
        let ctx = ExecCtx::sequential();
        let x = f(vec![2], vec![3., 4.]);
        let y = eval_op(&ctx, &OpKind::Dropout, std::slice::from_ref(&x))
            .unwrap()
            .remove(0);
        assert_eq!(x, y);
    }

    #[test]
    fn integer_add_supported() {
        let ctx = ExecCtx::sequential();
        let a = Value::I64(Tensor::new(vec![2], vec![1, 2]).unwrap());
        let b = Value::I64(Tensor::new(vec![2], vec![10, 20]).unwrap());
        let y = eval_op(&ctx, &OpKind::Add, &[a, b]).unwrap().remove(0);
        assert_eq!(y.i64().unwrap().data(), &[11, 22]);
    }

    #[test]
    fn mixed_dtype_binary_rejected() {
        let ctx = ExecCtx::sequential();
        let a = f(vec![1], vec![1.0]);
        let b = Value::I64(Tensor::new(vec![1], vec![1]).unwrap());
        assert!(eval_op(&ctx, &OpKind::Add, &[a, b]).is_err());
    }

    #[test]
    fn constant_of_shape_fills() {
        let ctx = ExecCtx::sequential();
        let spec = Value::I64(Tensor::new(vec![2], vec![2, 3]).unwrap());
        let y = eval_op(&ctx, &OpKind::ConstantOfShape { value: 0.5 }, &[spec])
            .unwrap()
            .remove(0);
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(y.f32().unwrap().data(), &[0.5; 6]);
    }

    #[test]
    fn flatten_matches_ir_shape_inference() {
        let ctx = ExecCtx::sequential();
        let x = f(vec![2, 3, 4], vec![0.0; 24]);
        let y = eval_op(&ctx, &OpKind::Flatten { axis: 1 }, &[x])
            .unwrap()
            .remove(0);
        assert_eq!(y.shape(), &[2, 12]);
    }

    #[test]
    fn inplace_unary_reuses_unique_buffer() {
        let ctx = ExecCtx::sequential();
        let x = f(vec![4], vec![-1., 2., -3., 4.]);
        let ptr = x.f32().unwrap().data_ptr();
        let y = eval_op_inplace(&ctx, &OpKind::Relu, vec![x], 0)
            .unwrap()
            .remove(0);
        assert_eq!(y.f32().unwrap().data(), &[0., 2., 0., 4.]);
        assert_eq!(y.f32().unwrap().data_ptr(), ptr, "must reuse the buffer");
    }

    #[test]
    fn inplace_falls_back_when_shared() {
        let ctx = ExecCtx::sequential();
        let x = f(vec![3], vec![-1., 0., 2.]);
        let keep = x.clone(); // second handle forces the copy path
        let ptr = keep.f32().unwrap().data_ptr();
        let y = eval_op_inplace(&ctx, &OpKind::Relu, vec![x], 0)
            .unwrap()
            .remove(0);
        assert_eq!(y.f32().unwrap().data(), &[0., 0., 2.]);
        assert_ne!(y.f32().unwrap().data_ptr(), ptr);
        assert_eq!(keep.f32().unwrap().data(), &[-1., 0., 2.], "untouched");
    }

    #[test]
    fn inplace_binary_both_slots_match_eval_op() {
        let ctx = ExecCtx::sequential();
        let mk = || {
            (
                f(vec![3], vec![1., 2., 3.]),
                f(vec![3], vec![10., 20., 30.]),
            )
        };
        for op in [OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Div] {
            let (a, b) = mk();
            let want = eval_op(&ctx, &op, &[a.clone(), b.clone()]).unwrap();
            for slot in 0..2 {
                let (a, b) = mk();
                let got = eval_op_inplace(&ctx, &op, vec![a, b], slot).unwrap();
                assert_eq!(got, want, "{op:?} slot {slot}");
            }
        }
    }

    #[test]
    fn inplace_broadcast_falls_back_correctly() {
        let ctx = ExecCtx::sequential();
        let a = f(vec![2, 2], vec![1., 2., 3., 4.]);
        let s = f(vec![], vec![10.]);
        let y = eval_op_inplace(&ctx, &OpKind::Add, vec![a, s], 0)
            .unwrap()
            .remove(0);
        assert_eq!(y.f32().unwrap().data(), &[11., 12., 13., 14.]);
    }

    #[test]
    fn unsqueeze_squeeze_eval() {
        let ctx = ExecCtx::sequential();
        let x = f(vec![3], vec![1., 2., 3.]);
        let u = eval_op(&ctx, &OpKind::Unsqueeze { axes: vec![0] }, &[x])
            .unwrap()
            .remove(0);
        assert_eq!(u.shape(), &[1, 3]);
        let s = eval_op(&ctx, &OpKind::Squeeze { axes: vec![0] }, &[u])
            .unwrap()
            .remove(0);
        assert_eq!(s.shape(), &[3]);
    }
}
