//! Property-based tests for the tensor kernels: each optimized kernel is
//! pinned against a straightforward reference implementation on random
//! shapes and data.

use proptest::prelude::*;
use ramiel_tensor::kernels::conv::{conv2d, conv2d_im2col, ConvSpec};
use ramiel_tensor::kernels::elementwise::binary_f32;
use ramiel_tensor::kernels::gemm::{gemm, matmul};
use ramiel_tensor::kernels::movement::{concat, split, transpose};
use ramiel_tensor::kernels::norm::softmax;
use ramiel_tensor::tensor::Tensor;
use ramiel_tensor::{ExecCtx, Value};

fn close(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(p, q)| (p - q).abs() <= tol * p.abs().max(1.0))
}

fn rand_t(shape: Vec<usize>, seed: u64) -> Tensor<f32> {
    Value::random_f32(shape, seed)
        .f32()
        .expect("f32 by construction")
        .clone()
}

/// Naive O(n³) reference matmul for 2-D operands.
fn reference_mm(a: &Tensor<f32>, b: &Tensor<f32>) -> Vec<f32> {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a.data()[i * k + kk] * b.data()[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_matches_reference(
        m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in any::<u64>()
    ) {
        let ctx = ExecCtx::sequential();
        let a = rand_t(vec![m, k], seed);
        let b = rand_t(vec![k, n], seed ^ 1);
        let fast = matmul(&ctx, &a, &b).unwrap();
        let slow = reference_mm(&a, &b);
        prop_assert!(close(fast.data(), &slow, 1e-4));
    }

    #[test]
    fn gemm_equals_matmul_plus_bias(
        m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in any::<u64>()
    ) {
        let ctx = ExecCtx::sequential();
        let x = rand_t(vec![m, k], seed);
        let w = rand_t(vec![k, n], seed ^ 2);
        let b = rand_t(vec![n], seed ^ 3);
        let y = gemm(&ctx, &x, &w, Some(&b), false).unwrap();
        let mut reference = reference_mm(&x, &w);
        for row in reference.chunks_mut(n) {
            for (o, &bv) in row.iter_mut().zip(b.data()) {
                *o += bv;
            }
        }
        prop_assert!(close(y.data(), &reference, 1e-4));
    }

    #[test]
    fn im2col_conv_matches_direct(
        cin_g in 1usize..4, cout_g in 1usize..4, groups in 1usize..3,
        k in prop::sample::select(vec![1usize, 3, 5]),
        stride in 1usize..3,
        h in 4usize..10, w in 4usize..10,
        seed in any::<u64>()
    ) {
        let ctx = ExecCtx::sequential();
        let (cin, cout) = (cin_g * groups, cout_g * groups);
        let pad = k / 2;
        let x = rand_t(vec![1, cin, h, w], seed);
        let wt = rand_t(vec![cout, cin_g, k, k], seed ^ 4);
        let spec = ConvSpec {
            kernel: (k, k),
            stride: (stride, stride),
            pads: (pad, pad),
            groups,
        };
        let a = conv2d(&ctx, &x, &wt, None, &spec).unwrap();
        let b = conv2d_im2col(&ctx, &x, &wt, None, &spec).unwrap();
        prop_assert_eq!(a.shape(), b.shape());
        prop_assert!(close(a.data(), b.data(), 1e-4));
    }

    #[test]
    fn binary_broadcast_matches_scalar_loop(
        rows in 1usize..6, cols in 1usize..6, seed in any::<u64>()
    ) {
        let a = rand_t(vec![rows, cols], seed);
        let row = rand_t(vec![cols], seed ^ 5);
        let fast = binary_f32(&a, &row, |x, y| x + y).unwrap();
        for i in 0..rows {
            for j in 0..cols {
                let expect = a.data()[i * cols + j] + row.data()[j];
                prop_assert_eq!(fast.data()[i * cols + j], expect);
            }
        }
    }

    #[test]
    fn softmax_is_a_distribution(
        rows in 1usize..6, cols in 1usize..8, seed in any::<u64>()
    ) {
        let x = rand_t(vec![rows, cols], seed);
        let y = softmax(&x, -1).unwrap();
        for row in y.data().chunks(cols) {
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn transpose_is_an_involution(
        a in 1usize..5, b in 1usize..5, c in 1usize..5, seed in any::<u64>()
    ) {
        let x = rand_t(vec![a, b, c], seed);
        let perm = vec![2, 0, 1];
        let inverse = vec![1, 2, 0];
        let y = transpose(&x, &perm).unwrap();
        let back = transpose(&y, &inverse).unwrap();
        prop_assert_eq!(x, back);
    }

    #[test]
    fn split_concat_roundtrip(
        outer in 1usize..5, p1 in 1usize..5, p2 in 1usize..5, seed in any::<u64>()
    ) {
        let x = rand_t(vec![outer, p1 + p2], seed);
        let parts = split(&x, 1, &[p1, p2]).unwrap();
        let refs: Vec<&Tensor<f32>> = parts.iter().collect();
        let back = concat(&refs, 1).unwrap();
        prop_assert_eq!(x, back);
    }

    #[test]
    fn intra_op_pool_agrees_with_sequential(
        m in 8usize..24, k in 8usize..24, n in 8usize..24, seed in any::<u64>()
    ) {
        let seq = ExecCtx::sequential();
        let par = ExecCtx::with_intra_op(2);
        let a = rand_t(vec![m, k], seed);
        let b = rand_t(vec![k, n], seed ^ 6);
        let y1 = matmul(&seq, &a, &b).unwrap();
        let y2 = matmul(&par, &a, &b).unwrap();
        prop_assert!(close(y1.data(), y2.data(), 1e-4));
    }
}

// Copy-on-write sharing properties: a clone is a refcount bump until
// written, and a write through one handle can never leak into — or read
// torn state from — any other handle on the same buffer.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cow_clone_mutation_never_aliases(
        len in 1usize..64, idx_seed in any::<u64>(), seed in any::<u64>()
    ) {
        let t = rand_t(vec![len], seed);
        let before: Vec<u32> = t.data().iter().map(|v| v.to_bits()).collect();

        let mut c = t.clone();
        prop_assert!(c.shares_data(&t), "clone must share until written");

        let i = (idx_seed as usize) % len;
        c.data_mut()[i] = f32::from_bits(t.data()[i].to_bits() ^ 1);
        prop_assert!(!c.shares_data(&t), "write must unshare the buffer");

        // The original is bit-for-bit untouched…
        let after: Vec<u32> = t.data().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(&before, &after);
        // …and the clone differs exactly at the written element.
        for (j, (p, q)) in t.data().iter().zip(c.data()).enumerate() {
            if j == i {
                prop_assert_ne!(p.to_bits(), q.to_bits());
            } else {
                prop_assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }

    #[test]
    fn cow_reshape_shares_and_unshares_like_clone(
        r in 1usize..8, cpick in 1usize..8, seed in any::<u64>()
    ) {
        let t = rand_t(vec![r, cpick], seed);
        let mut v = t.reshaped(vec![cpick * r]).unwrap();
        prop_assert!(v.data_arc().as_ptr() == t.data_arc().as_ptr());
        v.data_mut()[0] += 1.0;
        prop_assert!(v.data_arc().as_ptr() != t.data_arc().as_ptr());
        // the reshape write never reaches the original
        let flat: Vec<u32> = t.data().iter().map(|x| x.to_bits()).collect();
        let orig: Vec<u32> = rand_t(vec![r, cpick], seed).data().iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(flat, orig);
    }
}

// Quantization round-trip and SIMD bit-identity properties.
use ramiel_tensor::kernels::quant::{dequantize, quantize_symmetric};
use ramiel_tensor::KernelBackend;

/// Strategy mixing ordinary magnitudes with the awkward corners of f32:
/// ±0, subnormals, values straddling the subnormal boundary, and huge
/// finite values.
fn awkward_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        4 => -1e6f32..1e6f32,
        1 => Just(0.0f32),
        1 => Just(-0.0f32),
        1 => Just(f32::MIN_POSITIVE),          // smallest normal
        1 => Just(f32::MIN_POSITIVE / 2.0),    // subnormal
        1 => Just(-f32::MIN_POSITIVE / 4.0),   // negative subnormal
        1 => Just(f32::from_bits(1)),          // smallest subnormal
        1 => Just(3.4e38f32),
        1 => Just(-3.4e38f32),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `dequantize(quantize(x))` reconstructs every finite element within
    /// half a quantization step — including tensors that are all
    /// subnormal, all zero, or span the full f32 range.
    #[test]
    fn quantize_roundtrip_within_half_step(
        xs in prop::collection::vec(awkward_f32(), 0..64)
    ) {
        let (q, scale) = quantize_symmetric(&xs);
        prop_assert!(scale > 0.0 && scale.is_finite(), "scale {scale} degenerate");
        let back = dequantize(&q, scale);
        prop_assert_eq!(back.len(), xs.len());
        // Half a step, plus the sub-ulp rounding of the `q · scale`
        // multiply (bounded by eps · max_abs = eps · 127 · scale).
        let tol = scale * (0.5 + 127.0 * f32::EPSILON);
        for (i, (&x, &y)) in xs.iter().zip(&back).enumerate() {
            prop_assert!(
                (x - y).abs() <= tol,
                "index {i}: {x} -> code {} -> {y}, err {} > tol {tol} (scale {scale})",
                q[i], (x - y).abs()
            );
        }
    }

    /// Quantization is sign-faithful: ±0 code to exactly 0, and no code
    /// ever flips the sign of its input.
    #[test]
    fn quantize_preserves_zero_and_sign(
        xs in prop::collection::vec(awkward_f32(), 1..48)
    ) {
        let (q, scale) = quantize_symmetric(&xs);
        for (&x, &c) in xs.iter().zip(&q) {
            if x == 0.0 {
                prop_assert_eq!(c, 0, "±0 must code to 0");
            }
            if c != 0 {
                prop_assert_eq!(
                    (c > 0), x > 0.0,
                    "code {c} flips sign of input {x} (scale {scale})"
                );
            }
        }
    }

    /// The f32x8 SIMD microkernels are lane-unrolled but keep each output
    /// element's ascending-k accumulation chain, so they must agree with
    /// the scalar kernel *bit for bit* — on ragged shapes that exercise
    /// every tail path (partial 8-wide column panels, partial 4-row
    /// blocks, and the packed-panel path at larger sizes).
    #[test]
    fn simd_mm_bit_identical_to_scalar_on_ragged_shapes(
        m in 1usize..37, k in 1usize..41, n in 1usize..37, seed in any::<u64>()
    ) {
        let scalar = ExecCtx::sequential();
        let simd = scalar.with_backend(KernelBackend::SimdF32);
        let a = rand_t(vec![m, k], seed);
        let b = rand_t(vec![k, n], seed ^ 9);
        let ys = matmul(&scalar, &a, &b).unwrap();
        let yv = matmul(&simd, &a, &b).unwrap();
        for (i, (p, q)) in ys.data().iter().zip(yv.data()).enumerate() {
            prop_assert_eq!(
                p.to_bits(), q.to_bits(),
                "bit divergence at flat index {} of {}x{}x{}: {} vs {}",
                i, m, k, n, p, q
            );
        }
    }
}

/// The packed-panel SIMD path (large k·n) is also bit-identical — pinned
/// deterministically because proptest shrinks away from big shapes.
#[test]
fn simd_mm_bit_identical_on_packed_path() {
    let scalar = ExecCtx::sequential();
    let simd = scalar.with_backend(KernelBackend::SimdF32);
    // k·n = 512·384 = 196_608 ≥ PACK_MIN_ELEMS, with ragged m/n tails.
    let (m, k, n) = (9usize, 512usize, 384usize);
    let a = rand_t(vec![m, k], 1234);
    let b = rand_t(vec![k, n], 4321);
    let ys = matmul(&scalar, &a, &b).unwrap();
    let yv = matmul(&simd, &a, &b).unwrap();
    for (i, (p, q)) in ys.data().iter().zip(yv.data()).enumerate() {
        assert_eq!(
            p.to_bits(),
            q.to_bits(),
            "bit divergence at flat index {i}: {p} vs {q}"
        );
    }
}
