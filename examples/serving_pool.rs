//! Serving with a standing cluster pool.
//!
//! The paper's generated code forks long-lived Python processes once and
//! streams inferences through them. [`ramiel_runtime::ClusterPool`] is the
//! same shape in-process: workers spawn once, weights are converted and
//! shared once, and each request flows through the standing cluster
//! workers. This example compares request latency against
//! spawn-threads-per-inference and validates every response.
//!
//! ```sh
//! cargo run --release --example serving_pool
//! ```

use ramiel::{compile, PipelineOptions};
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_runtime::{run_parallel, run_sequential, synth_inputs, ClusterPool};
use ramiel_tensor::ExecCtx;
use std::time::Instant;

fn main() {
    let compiled = compile(
        build(ModelKind::Googlenet, &ModelConfig::full()),
        &PipelineOptions::default(),
    )
    .expect("pipeline");
    println!(
        "GoogleNet: {} nodes across {} standing cluster workers",
        compiled.graph.num_nodes(),
        compiled.clustering.num_clusters()
    );

    let ctx = ExecCtx::sequential();
    let requests: Vec<_> = (0..16u64)
        .map(|s| synth_inputs(&compiled.graph, s))
        .collect();

    // golden responses from the reference interpreter
    let golden: Vec<_> = requests
        .iter()
        .map(|r| run_sequential(&compiled.graph, r, &ctx).expect("sequential"))
        .collect();

    // strategy 1: spawn threads per request
    let t = Instant::now();
    for (i, r) in requests.iter().enumerate() {
        let out = run_parallel(&compiled.graph, &compiled.clustering, r, &ctx).expect("spawned");
        assert_eq!(out, golden[i], "request {i}");
    }
    let spawn_ms = t.elapsed().as_secs_f64() * 1e3 / requests.len() as f64;

    // strategy 2: standing pool
    let mut pool =
        ClusterPool::new(&compiled.graph, &compiled.clustering, &ctx).expect("pool spawn");
    let t = Instant::now();
    for (i, r) in requests.iter().enumerate() {
        let out = pool.run(r).expect("pool run");
        assert_eq!(out, golden[i], "request {i}");
    }
    let pool_ms = t.elapsed().as_secs_f64() * 1e3 / requests.len() as f64;

    println!("spawn-per-request: {spawn_ms:.2} ms/request");
    println!(
        "standing pool:     {pool_ms:.2} ms/request ({:.0}% of spawn cost)",
        100.0 * pool_ms / spawn_ms
    );
    println!("all {} responses matched the reference ✓", requests.len());
}
