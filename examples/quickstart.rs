//! Quickstart: compile SqueezeNet with Ramiel, look at the clusters, run
//! the graph sequentially and in parallel, and print the generated
//! parallel Python code's first lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ramiel::{compile, PipelineOptions};
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_runtime::{run_parallel, run_sequential, synth_inputs};
use ramiel_tensor::ExecCtx;
use std::time::Instant;

fn main() {
    // 1. Build (or load) a model. The zoo mirrors the paper's eight models.
    let graph = build(ModelKind::Squeezenet, &ModelConfig::full());
    println!(
        "SqueezeNet: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // 2. Compile: distance pass → linear clustering → cluster merging →
    //    parallel code generation.
    let compiled = compile(graph, &PipelineOptions::default()).expect("pipeline succeeds");
    println!(
        "clusters: {} before merging → {} after (potential parallelism {:.2}x, compile {:?})",
        compiled.report.clusters_before_merge,
        compiled.report.clusters_after_merge,
        compiled.report.parallelism.parallelism,
        compiled.compile_time,
    );

    // 3. Execute on the built-in runtime: sequential baseline vs one thread
    //    per cluster.
    let inputs = synth_inputs(&compiled.graph, 7);
    let ctx = ExecCtx::sequential();

    let t = Instant::now();
    let seq = run_sequential(&compiled.graph, &inputs, &ctx).expect("sequential run");
    let seq_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let par =
        run_parallel(&compiled.graph, &compiled.clustering, &inputs, &ctx).expect("parallel run");
    let par_ms = t.elapsed().as_secs_f64() * 1e3;

    assert_eq!(
        seq.keys().collect::<Vec<_>>(),
        par.keys().collect::<Vec<_>>()
    );
    println!("sequential: {seq_ms:.2} ms   parallel: {par_ms:.2} ms");

    // 4. The generated, readable PyTorch+Python module:
    println!("\n--- parallel.py (first 25 lines) ---");
    for line in compiled.parallel_code.lines().take(25) {
        println!("{line}");
    }
}
