//! Constant propagation + DCE on BERT (paper Section III-C, Fig. 6,
//! Table III).
//!
//! A BERT export is full of `Shape → Gather → Concat → Reshape` chains and
//! constant arithmetic. Pruning folds them away, which both shrinks the
//! graph and collapses the cluster count — the paper's "horizontal branch
//! reduction". The pruned graph must still compute the same function, which
//! this example verifies by running both versions.
//!
//! ```sh
//! cargo run --release --example bert_pruning
//! ```

use ramiel::{compile, PipelineOptions};
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_runtime::{run_sequential, synth_inputs};
use ramiel_tensor::{ExecCtx, Value};

fn main() {
    // Moderate BERT so the demo runs in a second or two.
    let cfg = ModelConfig {
        depth_pct: 50, // 6 encoder layers
        ..ModelConfig::full()
    };

    let plain = compile(build(ModelKind::Bert, &cfg), &PipelineOptions::default())
        .expect("baseline pipeline");
    let pruned = compile(
        build(ModelKind::Bert, &cfg),
        &PipelineOptions {
            prune: true,
            ..Default::default()
        },
    )
    .expect("pruned pipeline");

    println!(
        "BERT nodes:    {} → {} after const-prop + DCE ({} folded)",
        plain.graph.num_nodes(),
        pruned.graph.num_nodes(),
        plain.graph.num_nodes() - pruned.graph.num_nodes()
    );
    println!(
        "BERT clusters: {} → {}",
        plain.report.clusters_after_merge, pruned.report.clusters_after_merge
    );

    // Equivalence: identical outputs on the same inputs.
    let inputs = synth_inputs(&plain.graph, 2024);
    let ctx = ExecCtx::sequential();
    let a = run_sequential(&plain.graph, &inputs, &ctx).expect("plain run");
    let b = run_sequential(&pruned.graph, &inputs, &ctx).expect("pruned run");
    let mut max_err = 0.0f32;
    for (name, va) in &a {
        if let (Value::F32(x), Value::F32(y)) = (va, &b[name]) {
            for (p, q) in x.data().iter().zip(y.data()) {
                max_err = max_err.max((p - q).abs());
            }
        }
    }
    println!("max |Δ| between plain and pruned outputs: {max_err:.2e}");
    assert!(max_err < 1e-4, "pruning must preserve semantics");
    println!("pruning preserved the model's outputs ✓");
}
