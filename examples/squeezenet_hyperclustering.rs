//! Hyperclustering and switched hyperclustering on SqueezeNet
//! (paper Section III-E, Figs. 8/9/13/14).
//!
//! With batch size > 1 the slack a cluster spends waiting on messages can
//! be filled with other samples' work. This example executes batches 2/4/8
//! through plain and switched hyperclusters, checks results against the
//! per-sample sequential baseline, and reports simulated load balance.
//!
//! ```sh
//! cargo run --release --example squeezenet_hyperclustering
//! ```

use ramiel_cluster::{cluster_graph, hypercluster, switched_hypercluster, StaticCost};
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_runtime::{run_hyper, run_sequential, simulate_hyper, synth_inputs, Env, SimConfig};
use ramiel_tensor::ExecCtx;
use std::time::Instant;

fn main() {
    let graph = build(ModelKind::Squeezenet, &ModelConfig::full());
    let clustering = cluster_graph(&graph, &StaticCost);
    println!(
        "SqueezeNet: {} nodes, {} merged clusters",
        graph.num_nodes(),
        clustering.num_clusters()
    );

    let ctx = ExecCtx::sequential();
    let sim_cfg = SimConfig::default();

    for batch in [2usize, 4, 8] {
        let inputs: Vec<Env> = (0..batch).map(|b| synth_inputs(&graph, b as u64)).collect();

        // sequential baseline: run the batch one sample at a time
        let t = Instant::now();
        let seq_outs: Vec<Env> = inputs
            .iter()
            .map(|inp| run_sequential(&graph, inp, &ctx).expect("sequential run"))
            .collect();
        let seq_ms = t.elapsed().as_secs_f64() * 1e3;

        for (label, hc) in [
            ("plain   ", hypercluster(&clustering, batch)),
            ("switched", switched_hypercluster(&clustering, batch)),
        ] {
            let t = Instant::now();
            let outs = run_hyper(&graph, &hc, &inputs, &ctx).expect("hyper run");
            let ms = t.elapsed().as_secs_f64() * 1e3;
            // correctness: every sample matches its sequential result
            for (o, s) in outs.iter().zip(&seq_outs) {
                assert_eq!(o.keys().collect::<Vec<_>>(), s.keys().collect::<Vec<_>>());
            }
            let sim = simulate_hyper(&graph, &hc, &StaticCost, &sim_cfg).expect("simulate");
            println!(
                "batch {batch:2} {label}: wall {ms:7.2} ms (seq {seq_ms:7.2} ms)  \
                 simulated makespan {:6}  slack {:4.0}%",
                sim.makespan,
                100.0 * sim.slack_fraction()
            );
        }
    }
    println!("\nall hyperclustered batches matched their sequential baselines ✓");
}
