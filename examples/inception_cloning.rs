//! Task cloning on Inception V3 (paper Section III-D / Fig. 7 / Fig. 12).
//!
//! Inception's four-branch blocks all hang off a single producer; cloning
//! the cheap fan-out nodes gives every branch a private copy, cutting
//! cross-cluster messages. This example compares cluster structure and
//! simulated makespan with and without cloning.
//!
//! ```sh
//! cargo run --release --example inception_cloning
//! ```

use ramiel::{compile, PipelineOptions};
use ramiel_cluster::StaticCost;
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_passes::CloneConfig;
use ramiel_runtime::{simulate_clustering, simulate_sequential, SimConfig};

fn main() {
    let cfg = ModelConfig::full();
    let sim_cfg = SimConfig::default();

    let baseline = compile(
        build(ModelKind::InceptionV3, &cfg),
        &PipelineOptions::default(),
    )
    .expect("baseline pipeline");
    let cloned = compile(
        build(ModelKind::InceptionV3, &cfg),
        &PipelineOptions {
            cloning: Some(CloneConfig::default()),
            ..Default::default()
        },
    )
    .expect("cloning pipeline");

    for (label, c) in [("LC", &baseline), ("LC + cloning", &cloned)] {
        let sim = simulate_clustering(&c.graph, &c.clustering, &StaticCost, &sim_cfg)
            .expect("simulation");
        let seq = simulate_sequential(&c.graph, &StaticCost, 1);
        println!(
            "{label:14} nodes {:4}  clusters {:2}  cross-edges {:3}  simulated speedup {:.2}x  slack {:.0}%",
            c.graph.num_nodes(),
            c.report.clusters_after_merge,
            c.report.cross_cluster_edges,
            seq as f64 / sim.makespan as f64,
            100.0 * sim.slack_fraction(),
        );
    }

    let fewer_edges = cloned.report.cross_cluster_edges <= baseline.report.cross_cluster_edges;
    println!(
        "\ncloning {} cross-cluster messages ({} → {})",
        if fewer_edges {
            "reduced"
        } else {
            "did not reduce"
        },
        baseline.report.cross_cluster_edges,
        cloned.report.cross_cluster_edges
    );
}
