#!/usr/bin/env bash
# Benchmark trajectory: folds every BENCH_<date>.json snapshot at the repo
# root into BENCHMARKS.md, a tracked markdown table of headline numbers
# (per-model parallel speedup geomean, in-place peak-memory reduction,
# zero-copy byte ratio, serve throughput gain). Run it after scripts/bench.sh
# so the history stays reviewable in the repo instead of buried in JSON.
#
# Usage: scripts/bench_table.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release -p ramiel-bench --bin bench_table"
cargo build --release --offline -p ramiel-bench --bin bench_table

echo "==> bench_table --out BENCHMARKS.md"
./target/release/bench_table --out BENCHMARKS.md

cat BENCHMARKS.md
