#!/usr/bin/env bash
# Repo CI gate: formatting, lints, and the full test suite.
#
# Everything runs --offline against the vendored dependency stubs in
# vendor/ — CI hosts need no network and no crates.io index.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "==> cargo test"
cargo test --offline

# Liveness gate: the differential + chaos suites exercise every executor's
# failure paths (worker panics, dropped messages, timeouts). Their contract
# is bounded termination, so a hang IS the regression — run them again
# standalone under a hard wall-clock limit that turns a wedge into a
# failing exit code instead of a stuck CI job.
echo "==> chaos + differential suites (10 min wall-clock cap)"
timeout --kill-after=30s 600s \
    cargo test --offline -p ramiel --test differential --test chaos

# Scheduling-conformance gate for the work-stealing executor. Its schedule
# is decided at runtime (readiness + steal order), so conformance is argued
# by adversarial sampling: a seeded StealChaos adversary perturbs stalls and
# steal order and every sampled interleaving must be bit-identical to
# sequential AND terminate. The vendored proptest RNG is name-seeded, so the
# seed set is deterministic in CI; the budget is pinned here (250 cases x 4
# models ≥ 1000 interleavings) and can be raised for local soak runs by
# exporting RAMIEL_CONFORMANCE_CASES before invoking this script.
echo "==> steal conformance gate (seeded, ${RAMIEL_CONFORMANCE_CASES:-250} cases)"
RAMIEL_CONFORMANCE_CASES="${RAMIEL_CONFORMANCE_CASES:-250}" \
    timeout --kill-after=30s 600s \
    cargo test --offline -p ramiel --test steal_conformance

# Kernel-backend conformance gate. The f32 SIMD backend is covered by the
# differential suite above (it is bit-identical to scalar by construction,
# so the 6-executor matrix exercises it unchanged); the i8 quantized
# backend has a different contract — tolerance-close to f32, bit-identical
# *across executors* — pinned by its own suite on all 8 model generators.
# Same hard timeout discipline: a wedged executor under QuantI8 is a
# failing exit code, not a stuck job.
echo "==> quant backend conformance gate (8 models x executors)"
timeout --kill-after=30s 600s \
    cargo test --offline -p ramiel --test quant_conformance

# Observability smoke: `ramiel profile` runs the model on all four executors
# and validates the merged Chrome/Perfetto trace before writing it — a
# malformed trace (or any executor divergence) is a failing exit code. Same
# hard timeout discipline as the chaos gate.
echo "==> ramiel profile smoke (trace validity gate)"
timeout --kill-after=30s 600s \
    cargo run --offline -p ramiel --bin ramiel -- \
    profile squeezenet --tiny --out target/ci-profile
test -s target/ci-profile/squeezenet-trace.json

# Static-analysis gate: lifetime, peak-memory, and happens-before channel
# analysis over every built-in model's default schedule. --deny-warnings
# turns any RA-coded warning (e.g. a channel-capacity overrun) into exit 1
# and any race/deadlock finding into exit 2, so a pipeline regression that
# produces an unsound schedule fails CI here before it flakes at runtime.
echo "==> ramiel analyze gate (all models, warnings denied)"
timeout --kill-after=30s 600s \
    cargo run --offline -p ramiel --bin ramiel -- \
    analyze all --tiny --deny-warnings > target/ci-analyze.log
grep -q "peak memory:" target/ci-analyze.log

# Serving smoke: boot `ramiel serve` on a real TCP socket, then drive it
# with `ramiel request` — ping, a handful of batched inferences, a stats
# snapshot, the telemetry verbs, and a graceful shutdown. The `metrics` op
# must return Prometheus exposition carrying the per-request latency
# histograms and the steal-pool counters; the `trace` op's Chrome trace is
# validated client-side (the CLI exits nonzero on a malformed trace); and
# one frame of `ramiel top` must render from the same endpoint. The server
# process must exit 0 on its own after the shutdown op (drain, not kill),
# all under the same hard timeout so a wedged accept loop or un-drained
# lane fails CI instead of hanging it.
echo "==> ramiel serve smoke (TCP round-trip gate)"
cargo build --offline -p ramiel --bin ramiel
SERVE_PORT=7979
timeout --kill-after=30s 600s \
    target/debug/ramiel serve squeezenet --tiny --port "$SERVE_PORT" \
    > target/serve-smoke.log 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q "listening on" target/serve-smoke.log 2>/dev/null && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat target/serve-smoke.log; exit 1; }
    sleep 0.2
done
grep -q "listening on" target/serve-smoke.log
timeout 60s target/debug/ramiel request --port "$SERVE_PORT" --op ping
timeout 60s target/debug/ramiel request --port "$SERVE_PORT" \
    --op infer_synth --count 4 > /dev/null
timeout 60s target/debug/ramiel request --port "$SERVE_PORT" --op stats
timeout 60s target/debug/ramiel request --port "$SERVE_PORT" \
    --op metrics > target/serve-metrics.txt
grep -q "ramiel_request_latency_ns_bucket" target/serve-metrics.txt
grep -q "ramiel_steal_tasks_total" target/serve-metrics.txt
timeout 60s target/debug/ramiel request --port "$SERVE_PORT" \
    --op trace > target/serve-trace.json
timeout 60s target/debug/ramiel top --port "$SERVE_PORT" --frames 1
timeout 60s target/debug/ramiel request --port "$SERVE_PORT" --op shutdown
wait "$SERVE_PID"

# ONNX ingestion gates. Import smoke: the checked-in golden fixtures must
# import through the full validate/verify pipeline (`ramiel check` compiles
# and statically verifies the schedule), the deliberately clipped fixture
# must fail with a structured ONNX-WIRE error, and a CLI export→import
# round trip must hold. The 8-model bit-identical round-trip matrix and the
# truncation/corruption sweeps run as test suites under the same timeout
# discipline as the other gates.
echo "==> onnx import/round-trip gates (8-model matrix + golden fixtures)"
timeout --kill-after=30s 600s \
    cargo test --offline -p ramiel --test onnx_roundtrip --test onnx_golden
timeout 60s target/debug/ramiel check tests/fixtures/squeezenet_tiny.onnx
if timeout 60s target/debug/ramiel check tests/fixtures/truncated.onnx \
    2> target/ci-onnx-err.log; then
    echo "truncated.onnx unexpectedly imported"; exit 1
fi
grep -q "ONNX-WIRE" target/ci-onnx-err.log
timeout 60s target/debug/ramiel export bert target/ci-bert.onnx --tiny
timeout 60s target/debug/ramiel check target/ci-bert.onnx

# Registry round-trip gate: serve the fixture dir over loopback HTTP with
# `ramiel fileserver`, pull it through the content-addressed cache with a
# sha256 pin (a wrong pin must refuse with RG-CHECKSUM and cache nothing),
# then hot-swap the pulled model into a *running* `ramiel serve` via the
# `load` op and verify the plan version bump through `stats`.
echo "==> registry round-trip gate (loopback HTTP, pinned pull, hot swap)"
RCACHE=target/ci-registry-cache
rm -rf "$RCACHE"
FS_PORT=7980
timeout --kill-after=30s 600s \
    target/debug/ramiel fileserver tests/fixtures --port "$FS_PORT" \
    > target/ci-fileserver.log 2>&1 &
FS_PID=$!
for _ in $(seq 1 100); do
    grep -q "fileserver on" target/ci-fileserver.log 2>/dev/null && break
    kill -0 "$FS_PID" 2>/dev/null || { cat target/ci-fileserver.log; exit 1; }
    sleep 0.2
done
PIN=$(sha256sum tests/fixtures/squeezenet_tiny.onnx | cut -d' ' -f1)
MODEL_URL="http://127.0.0.1:$FS_PORT/squeezenet_tiny.onnx"
timeout 60s target/debug/ramiel pull "$MODEL_URL" --sha256 "$PIN" --cache "$RCACHE"
BAD_PIN=$(printf 'a%.0s' $(seq 64))
if timeout 60s target/debug/ramiel pull "$MODEL_URL" --sha256 "$BAD_PIN" \
    --cache "$RCACHE" 2> target/ci-pull-err.log; then
    echo "mismatched pin was not refused"; exit 1
fi
grep -q "RG-CHECKSUM" target/ci-pull-err.log
test ! -e "$RCACHE/sha256/$BAD_PIN"

SWAP_PORT=7981
timeout --kill-after=30s 600s \
    target/debug/ramiel serve squeezenet --tiny --port "$SWAP_PORT" \
    --cache "$RCACHE" > target/ci-swap.log 2>&1 &
SWAP_PID=$!
for _ in $(seq 1 100); do
    grep -q "listening on" target/ci-swap.log 2>/dev/null && break
    kill -0 "$SWAP_PID" 2>/dev/null || { cat target/ci-swap.log; exit 1; }
    sleep 0.2
done
timeout 60s target/debug/ramiel request --port "$SWAP_PORT" \
    --op load --source "$MODEL_URL" --sha256 "$PIN" > target/ci-load.json
grep -q "\"sha256\":\"$PIN\"" target/ci-load.json
timeout 60s target/debug/ramiel request --port "$SWAP_PORT" \
    --op stats > target/ci-swap-stats.json
grep -q '"versions":{"squeezenet":2}' target/ci-swap-stats.json
timeout 60s target/debug/ramiel request --port "$SWAP_PORT" \
    --op infer_synth > /dev/null
if timeout 60s target/debug/ramiel request --port "$SWAP_PORT" \
    --op load --source "$MODEL_URL" --sha256 "$BAD_PIN" > target/ci-load-bad.json; then
    echo "hot swap with mismatched pin was not refused"; exit 1
fi
grep -q "RG-CHECKSUM" target/ci-load-bad.json
timeout 60s target/debug/ramiel request --port "$SWAP_PORT" \
    --op stats > target/ci-swap-stats2.json
grep -q '"versions":{"squeezenet":2}' target/ci-swap-stats2.json
timeout 60s target/debug/ramiel request --port "$SWAP_PORT" --op shutdown
wait "$SWAP_PID"
kill "$FS_PID" 2>/dev/null || true
wait "$FS_PID" 2>/dev/null || true

# Bench guards, release profile: bench_json exits nonzero if any of its
# embedded regression guards trip — notably the batch-1 work-stealing guard
# (stealing must beat sequential on every model; min-of-iters on both sides
# so scheduler noise can't decide it), the SIMD backend guard (f32x8
# microkernels >= 1.3x scalar on BERT's dominant Gemm shapes, interleaved
# median so host frequency swings hit all backends alike), plus the
# memory-soundness, zero-copy, and serve-throughput guards. The JSON
# itself is a throwaway here; the dated snapshots come from
# scripts/bench.sh.
echo "==> bench guards (stealing at batch 1, SIMD >= 1.3x, memory, zero-copy, serve)"
cargo build --release --offline -p ramiel-bench --bin bench_json
timeout --kill-after=30s 600s \
    ./target/release/bench_json target/ci-bench.json --iters 3

echo "CI green."
