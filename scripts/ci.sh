#!/usr/bin/env bash
# Repo CI gate: formatting, lints, and the full test suite.
#
# Everything runs --offline against the vendored dependency stubs in
# vendor/ — CI hosts need no network and no crates.io index.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "==> cargo test"
cargo test --offline

echo "CI green."
