#!/usr/bin/env bash
# Benchmark summary: runs the quick measured sweep (sequential vs parallel
# per model, disabled-obs overhead guard, profile-guided reclustering, and
# the zero-copy clone/channel microbench with its bytes-copied guard — the
# binary exits nonzero if channel sends start deep-copying payloads again)
# and writes BENCH_<date>.json at the repo root.
#
# Usage: scripts/bench.sh [--full] [--iters N]
#   --full     full-size models instead of the tiny configs
#   --iters N  timing iterations per measurement (default 3)
#
# Offline like everything else here: vendored deps only, release profile so
# the numbers mean something.
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_$(date +%Y%m%d).json"
echo "==> cargo build --release -p ramiel-bench --bin bench_json"
cargo build --release --offline -p ramiel-bench --bin bench_json

echo "==> bench_json $out $*"
./target/release/bench_json "$out" "$@"

echo "==> summary"
cat "$out"
echo
echo "wrote $out"
