//! The static peak-memory estimate is a *true upper bound*, and in-place
//! buffer reuse never changes results.
//!
//! Two contracts from `ramiel-analyze` / the reuse rewrite:
//!
//! 1. For every built-in model and every executor, the measured high-water
//!    mark of an allocation-tracking [`MemGauge`] never exceeds
//!    `estimate_memory`'s static bound — when the analysis view matches the
//!    executor's real replay policy (in-order for the sequential walk and
//!    `ClusterPool`, first-ready for `run_parallel` / `run_hyper` /
//!    `HyperPool`, whose workers may legally reorder around a blocked op).
//! 2. Running with `reuse: false` (no in-place rewriting, no eviction) is
//!    bit-identical to the default `reuse: true` path on every executor:
//!    in-place kernels write the same values the allocating kernels do.

use ramiel::analyze::memory::estimate_memory;
use ramiel_cluster::{
    cluster_graph, clustering_view, hyper_view, hypercluster, stealing_view, switched_hypercluster,
    StaticCost,
};
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_runtime::{
    run_hyper, run_hyper_opts, run_hyper_stealing_opts, run_parallel, run_parallel_opts,
    run_sequential, run_sequential_opts, run_stealing, run_stealing_opts, synth_inputs,
    ClusterPool, Env, HyperPool, PlannedBatch, RunOptions,
};
use ramiel_tensor::{ExecCtx, MemGauge, Value};
use ramiel_verify::{ExecPolicy, ScheduleView};
use std::sync::Arc;

fn gauge_ctx() -> (Arc<MemGauge>, ExecCtx) {
    let gauge = MemGauge::new();
    let ctx = ExecCtx::sequential().with_mem_gauge(gauge.clone());
    (gauge, ctx)
}

fn assert_bound(model: &str, executor: &str, estimate: u64, gauge: &MemGauge) {
    let measured = gauge.peak_bytes();
    assert!(
        measured <= estimate,
        "{model}/{executor}: measured peak {measured} B exceeds static estimate {estimate} B"
    );
    assert_eq!(
        gauge.live_bytes(),
        0,
        "{model}/{executor}: gauge leaked live bytes after the run"
    );
}

/// Contract 1 over the whole 8-model × 5-executor matrix.
#[test]
fn estimate_upper_bounds_measured_peak_on_every_executor() {
    let cfg = ModelConfig::tiny();
    for kind in ModelKind::all() {
        let model = kind.name();
        let g = build(kind, &cfg);
        let clustering = cluster_graph(&g, &StaticCost);
        let inputs = synth_inputs(&g, 42);

        // sequential: single worker, the executor's own topological order
        let order = ramiel_ir::topo::topo_sort(&g).unwrap();
        let view = ScheduleView::single_batch(vec![order], ExecPolicy::InOrder);
        let (est, _) = estimate_memory(&g, &view);
        let (gauge, ctx) = gauge_ctx();
        run_sequential(&g, &inputs, &ctx).unwrap();
        assert_bound(model, "sequential", est.peak_bytes, &gauge);

        // run_parallel: cluster-per-worker, first-ready-first replay
        let mut view = clustering_view(&clustering);
        view.policy = ExecPolicy::FirstReady;
        let (est, _) = estimate_memory(&g, &view);
        let (gauge, ctx) = gauge_ctx();
        run_parallel(&g, &clustering, &inputs, &ctx).unwrap();
        assert_bound(model, "parallel", est.peak_bytes, &gauge);

        // ClusterPool: strict in-order per job
        let view = clustering_view(&clustering);
        let (est, _) = estimate_memory(&g, &view);
        let (gauge, ctx) = gauge_ctx();
        let mut pool = ClusterPool::new(&g, &clustering, &ctx).unwrap();
        pool.run(&inputs).unwrap();
        pool.run(&synth_inputs(&g, 43)).unwrap();
        drop(pool);
        assert_bound(model, "pool", est.peak_bytes, &gauge);

        // work stealing: no static schedule, so the bound comes from the
        // estimate-only stealing view (first-ready resident sum — sound for
        // any interleaving the pool picks)
        let (est, _) = estimate_memory(&g, &stealing_view(&g, 1));
        assert!(!est.exact, "stealing view must be estimate-only");
        let (gauge, ctx) = gauge_ctx();
        run_stealing(&g, &clustering, &inputs, &ctx).unwrap();
        assert_bound(model, "stealing", est.peak_bytes, &gauge);

        // hyperclustered batch executors, plain and switched, batch 4
        let batch_inputs: Vec<Env> = (0..4).map(|b| synth_inputs(&g, 100 + b as u64)).collect();
        for (label, hc) in [
            ("hyper", hypercluster(&clustering, 4)),
            ("hyper-switched", switched_hypercluster(&clustering, 4)),
        ] {
            let mut view = hyper_view(&hc);
            view.policy = ExecPolicy::FirstReady;
            let (est, _) = estimate_memory(&g, &view);
            let (gauge, ctx) = gauge_ctx();
            run_hyper(&g, &hc, &batch_inputs, &ctx).unwrap();
            assert_bound(model, label, est.peak_bytes, &gauge);

            let (gauge, ctx) = gauge_ctx();
            let mut hpool = HyperPool::new(&g, hc.hyperclusters.len(), &ctx).unwrap();
            let plan = Arc::new(PlannedBatch::new(&g, hc).unwrap());
            hpool
                .run_batch(&plan, &Arc::new(batch_inputs.clone()))
                .unwrap();
            drop(hpool);
            assert_bound(model, &format!("{label}-pool"), est.peak_bytes, &gauge);
        }

        // batched stealing under the batch-4 estimate-only view
        let (est, _) = estimate_memory(&g, &stealing_view(&g, 4));
        let hc = switched_hypercluster(&clustering, 4);
        let (gauge, ctx) = gauge_ctx();
        run_hyper_stealing_opts(&g, &hc, &batch_inputs, &ctx, &RunOptions::default()).unwrap();
        assert_bound(model, "hyper-stealing", est.peak_bytes, &gauge);
    }
}

/// First `(tensor, reason)` where two envs differ in exact f32 bit
/// patterns (or any non-f32 value differs at all).
fn first_bit_divergence(expect: &Env, got: &Env) -> Option<(String, String)> {
    for (name, va) in expect {
        let Some(vb) = got.get(name) else {
            return Some((name.clone(), "missing from output".into()));
        };
        match (va, vb) {
            (Value::F32(x), Value::F32(y)) => {
                if x.shape() != y.shape() {
                    return Some((
                        name.clone(),
                        format!("shape {:?} vs {:?}", x.shape(), y.shape()),
                    ));
                }
                for (i, (p, q)) in x.data().iter().zip(y.data()).enumerate() {
                    if p.to_bits() != q.to_bits() {
                        return Some((
                            name.clone(),
                            format!("bits differ at flat index {i}: {p} vs {q}"),
                        ));
                    }
                }
            }
            (va, vb) => {
                if va != vb {
                    return Some((name.clone(), "non-f32 outputs differ".into()));
                }
            }
        }
    }
    None
}

fn assert_bits(expect: &Env, got: &Env, model: &str, executor: &str) {
    if let Some((tensor, why)) = first_bit_divergence(expect, got) {
        panic!("{model}/{executor}: reuse changed output `{tensor}`: {why}");
    }
    assert_eq!(expect.len(), got.len(), "{model}/{executor}: output count");
}

/// Contract 2: `reuse: true` (default, in-place + eviction) is bit-identical
/// to `reuse: false` on every executor and every model.
#[test]
fn in_place_reuse_is_bit_identical_on_every_executor() {
    let cfg = ModelConfig::tiny();
    let ctx = ExecCtx::sequential();
    let on = RunOptions::default();
    let off = RunOptions::default().reuse(false);
    for kind in ModelKind::all() {
        let model = kind.name();
        let g = build(kind, &cfg);
        let clustering = cluster_graph(&g, &StaticCost);
        let inputs = synth_inputs(&g, 7);

        let base = run_sequential_opts(&g, &inputs, &ctx, &off).unwrap();
        let seq = run_sequential_opts(&g, &inputs, &ctx, &on).unwrap();
        assert_bits(&base, &seq, model, "sequential");

        for (opts, tag) in [(&off, "off"), (&on, "on")] {
            let par = run_parallel_opts(&g, &clustering, &inputs, &ctx, opts).unwrap();
            assert_bits(&base, &par, model, &format!("parallel[reuse={tag}]"));

            let mut pool = ClusterPool::with_options(&g, &clustering, &ctx, opts).unwrap();
            let pooled = pool.run(&inputs).unwrap();
            assert_bits(&base, &pooled, model, &format!("pool[reuse={tag}]"));

            let stolen = run_stealing_opts(&g, &clustering, &inputs, &ctx, opts).unwrap();
            assert_bits(&base, &stolen, model, &format!("stealing[reuse={tag}]"));
        }

        let batch_inputs: Vec<Env> = (0..3).map(|b| synth_inputs(&g, 7 + b as u64)).collect();
        let baseline: Vec<Env> = batch_inputs
            .iter()
            .map(|inp| run_sequential_opts(&g, inp, &ctx, &off).unwrap())
            .collect();
        let hc = switched_hypercluster(&clustering, 3);
        for (opts, tag) in [(&off, "off"), (&on, "on")] {
            let outs = run_hyper_opts(&g, &hc, &batch_inputs, &ctx, opts).unwrap();
            for (b, out) in outs.iter().enumerate() {
                assert_bits(
                    &baseline[b],
                    out,
                    model,
                    &format!("hyper[reuse={tag}] b{b}"),
                );
            }

            let mut hpool =
                HyperPool::with_options(&g, hc.hyperclusters.len(), &ctx, opts).unwrap();
            let plan = Arc::new(PlannedBatch::new(&g, hc.clone()).unwrap());
            let outs = hpool
                .run_batch(&plan, &Arc::new(batch_inputs.clone()))
                .unwrap();
            for (b, out) in outs.iter().enumerate() {
                assert_bits(
                    &baseline[b],
                    out,
                    model,
                    &format!("hyper-pool[reuse={tag}] b{b}"),
                );
            }

            let outs = run_hyper_stealing_opts(&g, &hc, &batch_inputs, &ctx, opts).unwrap();
            for (b, out) in outs.iter().enumerate() {
                assert_bits(
                    &baseline[b],
                    out,
                    model,
                    &format!("hyper-stealing[reuse={tag}] b{b}"),
                );
            }
        }
    }
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The bound holds for arbitrary input seeds, not just the fixed
        /// ones above: payload values can never change liveness.
        #[test]
        fn estimate_bounds_measured_peak_for_any_seed(
            seed in any::<u64>(),
            use_bert in any::<bool>(),
        ) {
            let kind = if use_bert {
                ModelKind::Bert
            } else {
                ModelKind::Squeezenet
            };
            let g = build(kind, &ModelConfig::tiny());
            let clustering = cluster_graph(&g, &StaticCost);
            let inputs = synth_inputs(&g, seed);

            let order = ramiel_ir::topo::topo_sort(&g).unwrap();
            let view = ScheduleView::single_batch(vec![order], ExecPolicy::InOrder);
            let (est, _) = estimate_memory(&g, &view);
            let (gauge, ctx) = gauge_ctx();
            run_sequential(&g, &inputs, &ctx).unwrap();
            prop_assert!(gauge.peak_bytes() <= est.peak_bytes);

            let mut view = clustering_view(&clustering);
            view.policy = ExecPolicy::FirstReady;
            let (est, _) = estimate_memory(&g, &view);
            let (gauge, ctx) = gauge_ctx();
            run_parallel(&g, &clustering, &inputs, &ctx).unwrap();
            prop_assert!(gauge.peak_bytes() <= est.peak_bytes);

            let (est, _) = estimate_memory(&g, &stealing_view(&g, 1));
            let (gauge, ctx) = gauge_ctx();
            run_stealing(&g, &clustering, &inputs, &ctx).unwrap();
            prop_assert!(gauge.peak_bytes() <= est.peak_bytes);
        }
    }
}
