//! Cross-crate integration tests: the full Ramiel pipeline on every model,
//! checking structural invariants after each stage.

use ramiel::{compile, HyperMode, PipelineOptions};
use ramiel_cluster::StaticCost;
use ramiel_ir::validate::validate;
use ramiel_models::{build, ModelConfig, ModelKind};

#[test]
fn pipeline_invariants_hold_for_every_model() {
    let cfg = ModelConfig::tiny();
    for kind in ModelKind::all() {
        let g = build(kind, &cfg);
        let c = compile(g, &PipelineOptions::all_optimizations())
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        validate(&c.graph).unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        c.clustering
            .check_partition(&c.graph)
            .unwrap_or_else(|e| panic!("{}: partition: {e}", kind.name()));
        c.clustering
            .check_internal_order(&c.graph)
            .unwrap_or_else(|e| panic!("{}: order: {e}", kind.name()));
        assert!(
            c.report.clusters_after_merge <= c.report.clusters_before_merge,
            "{}: merging must not increase cluster count",
            kind.name()
        );
    }
}

#[test]
fn full_scale_pipeline_on_all_models() {
    // Paper-faithful topology (full block counts); pipeline only, no
    // execution, so this stays fast even for 1400-node NASNet.
    let cfg = ModelConfig::full();
    for kind in ModelKind::all() {
        let g = build(kind, &cfg);
        let nodes = g.num_nodes();
        let c = compile(g, &PipelineOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        assert_eq!(c.report.nodes_before, nodes);
        assert!(c.report.clusters_after_merge >= 1);
        // generated code mentions every cluster
        for ci in 0..c.report.clusters_after_merge {
            assert!(
                c.parallel_code.contains(&format!("def cluster_{ci}(")),
                "{}: missing cluster {ci} in codegen",
                kind.name()
            );
        }
    }
}

#[test]
fn pruning_then_clustering_reduces_both_nodes_and_clusters_on_yolo() {
    let cfg = ModelConfig::full();
    let plain = compile(build(ModelKind::YoloV5, &cfg), &PipelineOptions::default()).unwrap();
    let pruned = compile(
        build(ModelKind::YoloV5, &cfg),
        &PipelineOptions {
            prune: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(pruned.graph.num_nodes() < plain.graph.num_nodes());
    assert!(pruned.report.clusters_after_merge <= plain.report.clusters_after_merge);
}

#[test]
fn hyperclustering_covers_all_batch_elements() {
    let cfg = ModelConfig::tiny();
    for batch in [2usize, 4, 8, 12] {
        for mode in [HyperMode::Plain, HyperMode::Switched] {
            let c = compile(
                build(ModelKind::Squeezenet, &cfg),
                &PipelineOptions {
                    batch,
                    hyper: mode,
                    ..Default::default()
                },
            )
            .unwrap();
            let hc = c.hyper.expect("hyperclustering on");
            hc.check_coverage(c.graph.num_nodes())
                .unwrap_or_else(|e| panic!("batch {batch} {mode:?}: {e}"));
        }
    }
}

#[test]
fn model_roundtrip_through_model_file() {
    let g = build(ModelKind::Googlenet, &ModelConfig::tiny());
    let json = ramiel_ir::model_file::to_json(&g).unwrap();
    let g2 = ramiel_ir::model_file::from_json(&json).unwrap();
    assert_eq!(g, g2);
    // compiled results identical
    let c1 = compile(g, &PipelineOptions::default()).unwrap();
    let c2 = compile(g2, &PipelineOptions::default()).unwrap();
    assert_eq!(c1.clustering, c2.clustering);
    assert_eq!(c1.parallel_code, c2.parallel_code);
}

#[test]
fn dsc_scheduler_is_a_valid_alternative() {
    use ramiel::Scheduler;
    use ramiel_runtime::{run_parallel, run_sequential, synth_inputs};
    use ramiel_tensor::ExecCtx;
    let cfg = ModelConfig::tiny();
    for kind in ModelKind::all() {
        let c = compile(
            build(kind, &cfg),
            &PipelineOptions {
                scheduler: Scheduler::Dsc,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        c.clustering
            .check_partition(&c.graph)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        c.clustering
            .check_internal_order(&c.graph)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
    }
    // DSC schedules execute correctly too
    let c = compile(
        build(ModelKind::Googlenet, &cfg),
        &PipelineOptions {
            scheduler: Scheduler::Dsc,
            ..Default::default()
        },
    )
    .unwrap();
    let inputs = synth_inputs(&c.graph, 77);
    let ctx = ExecCtx::sequential();
    let seq = run_sequential(&c.graph, &inputs, &ctx).unwrap();
    let par = run_parallel(&c.graph, &c.clustering, &inputs, &ctx).unwrap();
    assert_eq!(
        seq.keys().collect::<Vec<_>>(),
        par.keys().collect::<Vec<_>>()
    );
}

#[test]
fn text_format_roundtrips_the_whole_zoo() {
    let cfg = ModelConfig::tiny();
    for kind in ModelKind::all() {
        let g = build(kind, &cfg);
        let text = ramiel_ir::text_format::to_text(&g);
        let g2 = ramiel_ir::text_format::from_text(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        assert_eq!(g, g2, "{}", kind.name());
    }
}

#[test]
fn compile_is_deterministic() {
    let cfg = ModelConfig::tiny();
    for kind in [ModelKind::Squeezenet, ModelKind::NasNet, ModelKind::Bert] {
        let c1 = compile(build(kind, &cfg), &PipelineOptions::all_optimizations()).unwrap();
        let c2 = compile(build(kind, &cfg), &PipelineOptions::all_optimizations()).unwrap();
        assert_eq!(c1.clustering, c2.clustering, "{}", kind.name());
        assert_eq!(c1.parallel_code, c2.parallel_code, "{}", kind.name());
        assert_eq!(c1.distances, c2.distances, "{}", kind.name());
    }
}

#[test]
fn cluster_counts_shrink_like_table_ii() {
    // Table II: merging collapses cluster counts dramatically (9→2 for
    // SqueezeNet, 30→4 GoogleNet, 76→5 BERT, 244→67 NASNet). Exact values
    // depend on the export; we check the qualitative collapse (≥2x).
    let cfg = ModelConfig::full();
    for kind in [
        ModelKind::Squeezenet,
        ModelKind::Googlenet,
        ModelKind::InceptionV3,
        ModelKind::Bert,
        ModelKind::NasNet,
    ] {
        let c = compile(build(kind, &cfg), &PipelineOptions::default()).unwrap();
        assert!(
            c.report.clusters_after_merge * 2 <= c.report.clusters_before_merge,
            "{}: {} → {} is not a ≥2x reduction",
            kind.name(),
            c.report.clusters_before_merge,
            c.report.clusters_after_merge
        );
    }
}

#[test]
fn distance_strictly_decreases_along_edges_for_all_models() {
    let cfg = ModelConfig::tiny();
    for kind in ModelKind::all() {
        let g = build(kind, &cfg);
        let dist = ramiel_cluster::distance_to_end(&g, &StaticCost);
        let adj = g.adjacency();
        for u in 0..g.num_nodes() {
            for &v in &adj.succs[u] {
                assert!(dist[u] > dist[v], "{}: {u}->{v}", kind.name());
            }
        }
    }
}
