//! Observability invariants: whatever graph we execute, the profile and the
//! exported Chrome/Perfetto trace must be internally consistent.
//!
//! Properties (random layered DAGs × random batch sizes):
//! - spans on every `(pid, tid)` track are well-nested (checked by the
//!   exporter's own validator),
//! - every scheduled node appears exactly `batch` times in the profile,
//! - per worker, busy time + recorded slack never exceeds the worker's wall
//!   span.
//!
//! Plus a golden end-to-end test: compile + all four executors onto one
//! trace, which must parse and reference only declared pids/tids.

use proptest::prelude::*;
use ramiel::obs::{validate_chrome_trace, Obs};
use ramiel_cluster::{cluster_graph, hypercluster, switched_hypercluster, StaticCost};
use ramiel_models::synthetic;
use ramiel_runtime::{run_hyper_profiled_opts, synth_inputs, ProfileDb, RunOptions};
use ramiel_tensor::ExecCtx;

fn graph_strategy() -> impl Strategy<Value = ramiel_ir::Graph> {
    (any::<u64>(), 1usize..5, 1usize..4, 1usize..3).prop_map(|(seed, layers, width, lookback)| {
        synthetic::layered_random(seed, layers, width, lookback)
    })
}

fn profiled_hyper_run(g: &ramiel_ir::Graph, batch: usize, switched: bool, obs: &Obs) -> ProfileDb {
    let clustering = cluster_graph(g, &StaticCost);
    let hc = if switched {
        switched_hypercluster(&clustering, batch)
    } else {
        hypercluster(&clustering, batch)
    };
    let inputs: Vec<_> = (0..batch).map(|b| synth_inputs(g, b as u64)).collect();
    let opts = RunOptions::default().obs(obs.clone());
    let (_, db) = run_hyper_profiled_opts(g, &hc, &inputs, &ExecCtx::sequential(), &opts)
        .expect("hyper run succeeds");
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_node_appears_exactly_batch_times(
        g in graph_strategy(),
        batch in 1usize..4,
        switched in any::<bool>(),
    ) {
        let db = profiled_hyper_run(&g, batch, switched, &Obs::disabled());
        let mut seen = vec![0usize; g.num_nodes()];
        for r in db.records() {
            prop_assert!(r.node < g.num_nodes(), "record names unknown node {}", r.node);
            seen[r.node] += 1;
        }
        for (node, &count) in seen.iter().enumerate() {
            prop_assert_eq!(
                count, batch,
                "node {} recorded {} times, want batch {}", node, count, batch
            );
        }
    }

    #[test]
    fn busy_plus_slack_fits_in_the_worker_wall_span(
        g in graph_strategy(),
        batch in 1usize..4,
    ) {
        let db = profiled_hyper_run(&g, batch, false, &Obs::disabled());
        prop_assert_eq!(db.worker_spans().len(), db.workers());
        for span in db.worker_spans() {
            let wall = span.end_ns.saturating_sub(span.start_ns);
            let (mut busy, mut slack) = (0u64, 0u64);
            for r in db.records().iter().filter(|r| r.worker == span.worker) {
                prop_assert!(
                    r.start_ns >= span.start_ns && r.end_ns <= span.end_ns,
                    "op record [{}, {}] escapes worker {} span [{}, {}]",
                    r.start_ns, r.end_ns, span.worker, span.start_ns, span.end_ns
                );
                busy += r.end_ns.saturating_sub(r.start_ns);
                slack += r.slack_after_ns;
            }
            prop_assert!(
                busy + slack <= wall,
                "worker {}: busy {} + slack {} exceeds wall {}",
                span.worker, busy, slack, wall
            );
        }
    }

    #[test]
    fn exported_trace_is_well_nested_and_valid(
        g in graph_strategy(),
        batch in 1usize..3,
    ) {
        let obs = Obs::enabled();
        obs.name_process("hyper executor");
        let db = profiled_hyper_run(&g, batch, false, &obs);
        db.export_to_obs(&obs, &g);
        let stats = validate_chrome_trace(&obs.to_chrome_trace())
            .expect("trace must validate (well-nesting included)");
        // one span per op record, plus any slack slices the exporter adds
        prop_assert!(stats.complete_spans >= db.records().len());
    }
}

/// Golden path: compile stages + all four executors merged onto one trace.
#[test]
fn full_profile_trace_parses_and_references_valid_tracks() {
    use ramiel::models::{build, ModelConfig, ModelKind};
    use ramiel::{compile_with_obs, PipelineOptions};
    use ramiel_runtime::{
        run_parallel_profiled_opts, run_sequential_profiled, ClusterPool, RunOptions,
    };

    let obs = Obs::enabled();
    obs.with_pid(1).name_process("compile pipeline");
    obs.with_pid(2).name_process("sequential executor");
    obs.with_pid(3).name_process("parallel executor");
    obs.with_pid(4).name_process("hypercluster executor");
    obs.with_pid(5).name_process("cluster pool");

    let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
    let c = compile_with_obs(g, &PipelineOptions::default(), &obs.with_pid(1)).unwrap();
    let ctx = ExecCtx::sequential();
    let inputs = synth_inputs(&c.graph, 42);

    let (_, seq_db) = run_sequential_profiled(
        &c.graph,
        &inputs,
        &ctx,
        &RunOptions::default().obs(obs.with_pid(2)),
    )
    .unwrap();
    seq_db.export_to_obs(&obs.with_pid(2), &c.graph);

    let (_, par_db) = run_parallel_profiled_opts(
        &c.graph,
        &c.clustering,
        &inputs,
        &ctx,
        &RunOptions::default().obs(obs.with_pid(3)),
    )
    .unwrap();
    par_db.export_to_obs(&obs.with_pid(3), &c.graph);

    let hc = hypercluster(&c.clustering, 2);
    let batch_inputs = vec![synth_inputs(&c.graph, 1), synth_inputs(&c.graph, 2)];
    let (_, hyper_db) = run_hyper_profiled_opts(
        &c.graph,
        &hc,
        &batch_inputs,
        &ctx,
        &RunOptions::default().obs(obs.with_pid(4)),
    )
    .unwrap();
    hyper_db.export_to_obs(&obs.with_pid(4), &c.graph);

    let mut pool = ClusterPool::with_options(
        &c.graph,
        &c.clustering,
        &ctx,
        &RunOptions::default().obs(obs.with_pid(5)),
    )
    .unwrap();
    let (_, pool_db) = pool.run_profiled(&inputs).unwrap();
    pool_db.export_to_obs(&obs.with_pid(5), &c.graph);
    drop(pool);

    let trace = obs.to_chrome_trace();
    let stats = validate_chrome_trace(&trace).expect("merged trace validates");
    assert!(stats.complete_spans > 0, "no spans in trace");
    assert!(stats.metadata > 0, "no track metadata in trace");
    assert!(
        stats.named_processes >= 5,
        "expected all five processes named, got {}",
        stats.named_processes
    );

    // Every executor's op records made it in: each executed node appears in
    // the JSON by name at least once per executor process.
    let n0 = &c.graph.nodes[0].name;
    assert!(
        trace.contains(n0.as_str()),
        "node `{n0}` missing from trace"
    );
}

/// Injected faults surface as structured instant events on the trace.
#[test]
fn injected_faults_become_trace_instants() {
    use ramiel_runtime::{run_hyper_opts, Fault, FaultInjector, FaultKind, FaultPlan, RunOptions};

    let g = synthetic::fork_join(3, 2, 2);
    let clustering = cluster_graph(&g, &StaticCost);
    let hc = hypercluster(&clustering, 1);
    let inj = FaultInjector::new(FaultPlan {
        seed: 0,
        faults: vec![Fault {
            node: 1,
            batch: 0,
            exec_index: 0,
            kind: FaultKind::RecvDelay { millis: 1 },
        }],
    });
    let obs = Obs::enabled();
    obs.name_process("hyper executor");
    let opts = RunOptions::with_injector(inj).obs(obs.clone());
    let inputs = vec![synth_inputs(&g, 7)];
    run_hyper_opts(&g, &hc, &inputs, &ExecCtx::sequential(), &opts).unwrap();

    let events = obs.events();
    assert!(
        events
            .iter()
            .any(|e| e.cat == "fault" && e.name == "fault:recv-delay"),
        "expected a fault:recv-delay instant, got {:?}",
        events.iter().map(|e| &e.name).collect::<Vec<_>>()
    );
    validate_chrome_trace(&obs.to_chrome_trace()).unwrap();
}

/// Disabled observability stays silent end-to-end — the near-zero-cost path.
#[test]
fn disabled_obs_records_nothing() {
    let g = synthetic::chain(5);
    let obs = Obs::disabled();
    let db = profiled_hyper_run(&g, 2, false, &obs);
    assert!(!db.records().is_empty(), "profiling still works");
    assert!(obs.is_empty(), "disabled obs must not record events");
    assert_eq!(obs.now_ns(), 0, "disabled obs has no timeline");
}
