//! Operator coverage: every `OpKind` variant must flow through the whole
//! stack — shape inference, sequential execution, clustering, parallel
//! execution, Python lowering and the text format — from a single graph
//! that uses all of them.

use ramiel::{compile, PipelineOptions};
use ramiel_ir::{DType, Graph, GraphBuilder, OpKind, PoolSpec, TensorData};
use ramiel_runtime::{run_parallel, run_sequential, synth_inputs};
use ramiel_tensor::ExecCtx;

/// Build one graph that exercises every operator variant.
fn kitchen_sink() -> Graph {
    let mut b = GraphBuilder::new("kitchen_sink");
    let x = b.input("x", DType::F32, vec![1, 4, 8, 8]);
    let ids = b.input("ids", DType::I64, vec![1, 4]);

    // conv family
    let c = b.conv(&x, 4, 8, (3, 3), (1, 1), (1, 1), 1);
    let cg = b.conv(&c, 8, 8, (3, 3), (1, 1), (1, 1), 8); // depthwise
    let bn = b.batch_norm(&cg, 8);

    // activations
    let mut t = bn;
    for (name, op) in [
        ("relu", OpKind::Relu),
        ("lrelu", OpKind::LeakyRelu { alpha: 0.1 }),
        ("sig", OpKind::Sigmoid),
        ("tanh", OpKind::Tanh),
        ("gelu", OpKind::Gelu),
        ("erf", OpKind::Erf),
        ("exp", OpKind::Exp),
        ("neg", OpKind::Neg),
        (
            "clip",
            OpKind::Clip {
                min: -1.0,
                max: 1.0,
            },
        ),
        ("sqrtabs", OpKind::Mul), // placeholder replaced below
    ] {
        if name == "sqrtabs" {
            // sqrt needs non-negative input: square first
            let sq = b.op("square", op, vec![t.clone(), t.clone()]);
            t = b.op("sqrt", OpKind::Sqrt, vec![sq]);
        } else {
            t = b.op(name, op, vec![t]);
        }
    }
    let drop = b.op("drop", OpKind::Dropout, vec![t.clone()]);
    let ident = b.op("ident", OpKind::Identity, vec![drop]);

    // binary + where/equal
    let sum = b.op("add", OpKind::Add, vec![ident.clone(), t.clone()]);
    let dif = b.op("sub", OpKind::Sub, vec![sum.clone(), t.clone()]);
    let prd = b.op("mul", OpKind::Mul, vec![dif, sum.clone()]);
    let one = b.const_scalar("one", 1.0);
    let quo = b.op("div", OpKind::Div, vec![prd, one.clone()]);
    let two = b.const_scalar("two", 2.0);
    let pw = b.op("pow", OpKind::Pow, vec![quo.clone(), two]);
    let eq = b.op("eq", OpKind::Equal, vec![quo.clone(), pw.clone()]);
    let sel = b.op("where", OpKind::Where, vec![eq, quo.clone(), pw]);

    // pooling + norm + reduce
    let mp = b.op(
        "mp",
        OpKind::MaxPool(PoolSpec {
            kernel: (2, 2),
            stride: (2, 2),
            pads: (0, 0),
            ceil_mode: false,
        }),
        vec![sel.clone()],
    );
    let ap = b.op(
        "ap",
        OpKind::AveragePool(PoolSpec {
            kernel: (2, 2),
            stride: (2, 2),
            pads: (0, 0),
            ceil_mode: true,
        }),
        vec![sel.clone()],
    );
    let cat = b.op("cat", OpKind::Concat { axis: 1 }, vec![mp, ap]);
    let parts = b.op_multi(
        "split",
        OpKind::Split {
            axis: 1,
            parts: vec![8, 8],
        },
        vec![cat.clone()],
    );
    let sm = b.op(
        "softmax",
        OpKind::Softmax { axis: 1 },
        vec![parts[0].clone()],
    );
    let rm = b.op(
        "rmean",
        OpKind::ReduceMean {
            axes: vec![2, 3],
            keepdims: false,
        },
        vec![sm],
    );
    let gap = b.op("gap", OpKind::GlobalAveragePool, vec![parts[1].clone()]);
    let flat = b.op("flatten", OpKind::Flatten { axis: 1 }, vec![gap]);

    // movement ops
    let sl = b.op(
        "slice",
        OpKind::Slice {
            axes: vec![1],
            starts: vec![0],
            ends: vec![4],
            steps: vec![2],
        },
        vec![rm.clone()],
    );
    let usq = b.op("unsq", OpKind::Unsqueeze { axes: vec![0] }, vec![sl]);
    let sq = b.op("sq", OpKind::Squeeze { axes: vec![0] }, vec![usq]);
    let tr = b.op("tr", OpKind::Transpose { perm: vec![1, 0] }, vec![sq]);
    let spec = b.init("rs_spec", TensorData::vec_i64(vec![1, -1]));
    let rs = b.op("reshape", OpKind::Reshape, vec![tr, spec]);
    let ex_spec = b.init("ex_spec", TensorData::vec_i64(vec![3, 2]));
    let ex = b.op("expand", OpKind::Expand, vec![rs, ex_spec]);

    // shape-computation chain + cast
    let sh = b.op("shape", OpKind::Shape, vec![ex.clone()]);
    let shf = b.op("cast", OpKind::Cast { to: DType::F32 }, vec![sh]);

    // layernorm on a 2-D tensor (trailing dim 2)
    let lng = b.weight("ln_g", vec![2], ramiel_ir::builder::Init::Const(1.0));
    let lnb = b.weight("ln_b", vec![2], ramiel_ir::builder::Init::Const(0.0));
    let ln = b.op(
        "layernorm",
        OpKind::LayerNorm { epsilon: 1e-5 },
        vec![ex, lng, lnb],
    );

    // matmul / gemm path
    let w1 = b.weight("w1", vec![2, 3], ramiel_ir::builder::Init::Uniform(0.1));
    let mm = b.op("matmul", OpKind::MatMul, vec![ln, w1]);
    let gm = b.linear(&mm.clone(), 3, 3); // Gemm trans_b

    // gather with runtime indices, pad, resize, constant-of-shape
    let emb = b.weight("emb", vec![64, 3], ramiel_ir::builder::Init::Uniform(0.1));
    let ga = b.op("gather", OpKind::Gather { axis: 0 }, vec![emb, ids]);
    let cshape = b.init("cshape", TensorData::vec_i64(vec![1, 4, 3]));
    let cos = b.op("cos", OpKind::ConstantOfShape { value: 0.25 }, vec![cshape]);
    let gsum = b.op("gadd", OpKind::Add, vec![ga, cos]);
    let pad = b.op("pad", OpKind::Pad { pads: (1, 1, 0, 0) }, vec![cat.clone()]);
    let rz = b.op("resize", OpKind::Resize { scale: (2, 2) }, vec![pad]);
    let rz_gap = b.op("rz_gap", OpKind::GlobalAveragePool, vec![rz]);

    // a Constant node
    let cname = b.fresh("constnode");
    let cout = format!("{cname}:0");
    b.init(&cout, TensorData::scalar_f32(3.5));
    b.graph_mut()
        .push_node(cname, OpKind::Constant, vec![], vec![cout.clone()]);
    let final_mix = b.op("final_mul", OpKind::Mul, vec![gm.clone(), cout]);

    b.output(&final_mix);
    b.output(&gsum);
    b.output(&shf);
    b.output(&rz_gap);
    b.output(&flat);
    b.finish().expect("kitchen sink builds")
}

/// OpKinds exercised by the kitchen-sink graph, by ONNX-style name.
fn used_ops(g: &Graph) -> std::collections::HashSet<&'static str> {
    g.nodes.iter().map(|n| n.op.name()).collect()
}

#[test]
fn kitchen_sink_covers_every_operator() {
    let g = kitchen_sink();
    let used = used_ops(&g);
    // every OpKind variant name must appear
    let all = [
        "Conv",
        "MatMul",
        "Gemm",
        "Relu",
        "LeakyRelu",
        "Sigmoid",
        "Tanh",
        "Gelu",
        "Erf",
        "Sqrt",
        "Exp",
        "Neg",
        "Clip",
        "Dropout",
        "Identity",
        "Add",
        "Sub",
        "Mul",
        "Div",
        "Pow",
        "Equal",
        "Where",
        "Softmax",
        "BatchNormalization",
        "LayerNormalization",
        "ReduceMean",
        "MaxPool",
        "AveragePool",
        "GlobalAveragePool",
        "Concat",
        "Split",
        "Slice",
        "Gather",
        "Reshape",
        "Transpose",
        "Flatten",
        "Unsqueeze",
        "Squeeze",
        "Expand",
        "Resize",
        "Pad",
        "Cast",
        "Constant",
        "Shape",
        "ConstantOfShape",
    ];
    for op in all {
        assert!(used.contains(op), "kitchen sink is missing {op}");
    }
}

#[test]
fn kitchen_sink_runs_sequentially_and_in_parallel() {
    let g = kitchen_sink();
    let inputs = synth_inputs(&g, 3);
    let ctx = ExecCtx::sequential();
    let seq = run_sequential(&g, &inputs, &ctx).expect("sequential");
    let c = compile(g, &PipelineOptions::default()).expect("pipeline");
    let par = run_parallel(&c.graph, &c.clustering, &inputs, &ctx).expect("parallel");
    assert_eq!(seq, par);
}

#[test]
fn kitchen_sink_survives_pruning_and_codegen() {
    let g = kitchen_sink();
    let inputs = synth_inputs(&g, 4);
    let ctx = ExecCtx::sequential();
    let baseline = run_sequential(&g, &inputs, &ctx).expect("sequential");
    let c = compile(g, &PipelineOptions::all_optimizations()).expect("pipeline");
    let after = run_sequential(&c.graph, &inputs, &ctx).expect("pruned sequential");
    // pruning folds the Shape/Cast chain; compare surviving outputs by name
    for (name, v) in &after {
        if let Some(orig) = baseline.get(name) {
            assert_eq!(orig, v, "{name}");
        }
    }
    assert!(c.parallel_code.contains("def cluster_0("));
}

#[test]
fn kitchen_sink_text_roundtrip() {
    let g = kitchen_sink();
    let text = ramiel_ir::text_format::to_text(&g);
    let g2 = ramiel_ir::text_format::from_text(&text).expect("parse back");
    assert_eq!(g, g2);
}
