//! Chaos suite: deterministic fault injection against the supervised
//! runtime.
//!
//! The liveness/correctness contract under test: for *any* seeded
//! [`FaultPlan`], a supervised run **terminates** (bounded recv timeouts,
//! no hangs) and either returns outputs identical to the fault-free
//! sequential baseline or a structured [`RuntimeError`] — never a bare
//! panic escaping to the caller. Golden scenarios then pin the exact error
//! code each fault kind surfaces as.

use proptest::prelude::*;
use ramiel_cluster::{cluster_graph, Clustering, StaticCost};
use ramiel_models::synthetic;
use ramiel_runtime::{
    run_parallel_opts, run_sequential, run_sequential_opts, run_stealing_opts,
    run_stealing_supervised_opts, run_supervised, synth_inputs, FaultInjector, FaultKind,
    FaultPlan, RunOptions, RuntimeError, SupervisorConfig,
};
use ramiel_tensor::ExecCtx;
use std::sync::Arc;
use std::time::Duration;

/// Suppress backtrace spam from *expected* injected panics (they are caught
/// and converted to errors; the default hook would still print them).
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info
                .payload()
                .downcast_ref::<ramiel_runtime::fault::InjectedPanic>()
                .is_some()
            {
                return;
            }
            prev(info);
        }));
    });
}

fn one_fault(node: usize, exec_index: u32, kind: FaultKind) -> Arc<FaultInjector> {
    FaultInjector::new(FaultPlan {
        seed: 0,
        faults: vec![ramiel_runtime::Fault {
            node,
            batch: 0,
            exec_index,
            kind,
        }],
    })
}

/// A node whose output crosses a cluster boundary (so dropping its message
/// starves a peer), if the clustering has one.
fn cross_cluster_producer(g: &ramiel_ir::Graph, clustering: &Clustering) -> Option<usize> {
    let assign = clustering.assignment();
    let adj = g.adjacency();
    for node in &g.nodes {
        let me = assign[&node.id];
        for inp in &node.inputs {
            if let Some(&p) = adj.producer_of.get(inp) {
                if assign[&p] != me {
                    return Some(p);
                }
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any seeded fault plan, on any small graph: the supervised run
    /// terminates with either the correct answer or a structured error.
    #[test]
    fn supervised_runs_terminate_correct_or_structured(
        gseed in any::<u64>(),
        fseed in any::<u64>(),
        layers in 2usize..6,
        width in 1usize..5,
        nfaults in 0usize..5,
    ) {
        quiet_injected_panics();
        let g = synthetic::layered_random(gseed, layers, width, 2);
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        let inputs = synth_inputs(&g, gseed ^ 0x9e37);
        let baseline = run_sequential(&g, &inputs, &ctx).unwrap();

        let plan = FaultPlan::random(fseed, g.num_nodes(), 1, nfaults);
        let inj = FaultInjector::new(plan);
        let cfg = SupervisorConfig {
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            fallback: true,
            // Short enough that dropped messages resolve quickly, long
            // enough that injected delays (≤ ~30ms) never false-positive.
            recv_timeout: Some(Duration::from_secs(2)),
            ..Default::default()
        };
        let (res, report) = run_supervised(&g, &clustering, &inputs, &ctx, Some(inj), &cfg);
        prop_assert!(report.attempts >= 1);
        match res {
            Ok(out) => prop_assert_eq!(out, baseline, "fault-free result must match baseline"),
            Err(e) => {
                // structured, attributable failure — never a bare panic
                let code = e.code();
                prop_assert!(
                    ["RT-KERNEL", "RT-CHANNEL", "RT-PANIC", "RT-TIMEOUT", "RT-INJECT", "RT-SETUP"]
                        .contains(&code),
                    "unknown error code {code}: {e}"
                );
            }
        }
    }

    /// The same liveness/correctness contract for the work-stealing
    /// executor: any seeded fault plan through the supervised stealing path
    /// terminates with the baseline answer or a structured error — no hung
    /// workers, no escaped panics, even though the schedule itself is
    /// decided at runtime.
    #[test]
    fn supervised_stealing_runs_terminate_correct_or_structured(
        gseed in any::<u64>(),
        fseed in any::<u64>(),
        layers in 2usize..6,
        width in 1usize..5,
        nfaults in 0usize..5,
    ) {
        quiet_injected_panics();
        let g = synthetic::layered_random(gseed, layers, width, 2);
        let clustering = cluster_graph(&g, &StaticCost);
        let ctx = ExecCtx::sequential();
        let inputs = synth_inputs(&g, gseed ^ 0x9e37);
        let baseline = run_sequential(&g, &inputs, &ctx).unwrap();

        let plan = FaultPlan::random(fseed, g.num_nodes(), 1, nfaults);
        let opts = RunOptions::with_injector(FaultInjector::new(plan));
        let cfg = SupervisorConfig {
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            fallback: true,
            recv_timeout: Some(Duration::from_secs(2)),
            ..Default::default()
        };
        let (res, report) =
            run_stealing_supervised_opts(&g, &clustering, &inputs, &ctx, &opts, &cfg);
        prop_assert!(report.attempts >= 1);
        match res {
            Ok(out) => prop_assert_eq!(out, baseline, "fault-free result must match baseline"),
            Err(e) => {
                let code = e.code();
                prop_assert!(
                    ["RT-KERNEL", "RT-CHANNEL", "RT-PANIC", "RT-TIMEOUT", "RT-INJECT", "RT-SETUP"]
                        .contains(&code),
                    "unknown error code {code}: {e}"
                );
            }
        }
    }

    /// The injector itself is deterministic: the same plan fires the same
    /// faults (same nodes, same kinds, same execution indices) on repeated
    /// runs. Exercised on the sequential executor, whose execution order is
    /// fixed — under the *parallel* executor a fatal fault aborts the run
    /// while peer workers race toward their own planned faults, so which
    /// subset fires there is legitimately scheduling-dependent (the
    /// liveness/correctness property above is the contract for that case).
    #[test]
    fn fault_plans_fire_deterministically(fseed in any::<u64>(), nfaults in 1usize..5) {
        quiet_injected_panics();
        let g = synthetic::layered_random(7, 4, 3, 2);
        let ctx = ExecCtx::sequential();
        let inputs = synth_inputs(&g, 1);
        let run = || {
            let inj = FaultInjector::new(FaultPlan::random(fseed, g.num_nodes(), 1, nfaults));
            let opts = RunOptions::with_injector(inj.clone());
            // An injected WorkerPanic unwinds out of the sequential executor
            // by design; the fired log is recorded before the panic.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_sequential_opts(&g, &inputs, &ctx, &opts)
            }));
            inj.fired()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b, "same plan must fire identically");
    }
}

// ---- golden scenarios: exact code per fault kind --------------------------

#[test]
fn golden_injected_kernel_error_is_rt_inject_with_node() {
    let g = synthetic::fork_join(3, 2, 2);
    let clustering = cluster_graph(&g, &StaticCost);
    let inputs = synth_inputs(&g, 2);
    let opts = RunOptions::with_injector(one_fault(2, 0, FaultKind::KernelError))
        .recv_timeout(Duration::from_secs(5));
    let err =
        run_parallel_opts(&g, &clustering, &inputs, &ExecCtx::sequential(), &opts).unwrap_err();
    assert_eq!(err.code(), "RT-INJECT");
    assert!(
        matches!(
            err,
            RuntimeError::Injected {
                node: 2,
                kind: FaultKind::KernelError,
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn golden_injected_panic_is_rt_inject_not_a_crash() {
    quiet_injected_panics();
    let g = synthetic::fork_join(3, 2, 2);
    let clustering = cluster_graph(&g, &StaticCost);
    let inputs = synth_inputs(&g, 3);
    let opts = RunOptions::with_injector(one_fault(1, 0, FaultKind::WorkerPanic))
        .recv_timeout(Duration::from_secs(5));
    let err =
        run_parallel_opts(&g, &clustering, &inputs, &ExecCtx::sequential(), &opts).unwrap_err();
    assert_eq!(err.code(), "RT-INJECT");
    assert!(
        matches!(
            err,
            RuntimeError::Injected {
                node: 1,
                kind: FaultKind::WorkerPanic,
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn golden_dropped_cross_cluster_message_is_rt_timeout() {
    // Find a producer whose tensor crosses clusters; dropping its sends
    // starves the consumer, which must surface a bounded RT-TIMEOUT (not a
    // hang).
    let g = synthetic::fork_join(4, 3, 2);
    let clustering = cluster_graph(&g, &StaticCost);
    let producer = cross_cluster_producer(&g, &clustering)
        .expect("fork-join clustering has cross-cluster edges");
    let inputs = synth_inputs(&g, 4);
    let opts = RunOptions::with_injector(one_fault(producer, 0, FaultKind::DropMessage))
        .recv_timeout(Duration::from_millis(200));
    let start = std::time::Instant::now();
    let err =
        run_parallel_opts(&g, &clustering, &inputs, &ExecCtx::sequential(), &opts).unwrap_err();
    assert_eq!(err.code(), "RT-TIMEOUT", "{err}");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "timeout must be bounded, took {:?}",
        start.elapsed()
    );
}

#[test]
fn golden_supervised_retry_then_success() {
    // Fault keyed to the first execution only: the supervised retry must
    // converge to the correct answer on attempt 2 without falling back.
    let g = synthetic::fork_join(4, 3, 2);
    let clustering = cluster_graph(&g, &StaticCost);
    let ctx = ExecCtx::sequential();
    let inputs = synth_inputs(&g, 5);
    let expect = run_sequential(&g, &inputs, &ctx).unwrap();
    let cfg = SupervisorConfig {
        max_retries: 2,
        backoff_base: Duration::from_millis(1),
        fallback: false,
        recv_timeout: Some(Duration::from_secs(5)),
        ..Default::default()
    };
    let (res, report) = run_supervised(
        &g,
        &clustering,
        &inputs,
        &ctx,
        Some(one_fault(0, 0, FaultKind::KernelError)),
        &cfg,
    );
    assert_eq!(res.unwrap(), expect);
    assert_eq!(report.attempts, 2);
    assert!(!report.fell_back);
    assert_eq!(report.errors.len(), 1);
    assert_eq!(report.errors[0].code(), "RT-INJECT");
    assert_eq!(report.faults_fired.len(), 1);
}

// ---- golden scenarios: the work-stealing executor -------------------------

#[test]
fn golden_stealing_supervised_retry_then_success() {
    // Same convergence contract as the channel executor: a first-execution
    // fault is absorbed by one retry, no fallback needed.
    let g = synthetic::fork_join(4, 3, 2);
    let clustering = cluster_graph(&g, &StaticCost);
    let ctx = ExecCtx::sequential();
    let inputs = synth_inputs(&g, 5);
    let expect = run_sequential(&g, &inputs, &ctx).unwrap();
    let opts = RunOptions::with_injector(one_fault(0, 0, FaultKind::KernelError));
    let cfg = SupervisorConfig {
        max_retries: 2,
        backoff_base: Duration::from_millis(1),
        fallback: false,
        recv_timeout: Some(Duration::from_secs(5)),
        ..Default::default()
    };
    let (res, report) = run_stealing_supervised_opts(&g, &clustering, &inputs, &ctx, &opts, &cfg);
    assert_eq!(res.unwrap(), expect);
    assert_eq!(report.attempts, 2);
    assert!(!report.fell_back);
    assert_eq!(report.errors[0].code(), "RT-INJECT");
}

#[test]
fn golden_stealing_fallback_isolates_the_failure() {
    quiet_injected_panics();
    // Zero retries: the injected panic exhausts the retry budget on attempt
    // one and the supervisor degrades to the sequential fallback, which
    // still produces the right answer (the fault was keyed to execution 0
    // and has already fired).
    let g = synthetic::fork_join(4, 3, 2);
    let clustering = cluster_graph(&g, &StaticCost);
    let ctx = ExecCtx::sequential();
    let inputs = synth_inputs(&g, 6);
    let expect = run_sequential(&g, &inputs, &ctx).unwrap();
    let opts = RunOptions::with_injector(one_fault(1, 0, FaultKind::WorkerPanic));
    let cfg = SupervisorConfig {
        max_retries: 0,
        backoff_base: Duration::from_millis(1),
        fallback: true,
        recv_timeout: Some(Duration::from_secs(5)),
        ..Default::default()
    };
    let (res, report) = run_stealing_supervised_opts(&g, &clustering, &inputs, &ctx, &opts, &cfg);
    assert_eq!(res.unwrap(), expect);
    assert!(report.fell_back, "fallback should have engaged");
    assert_eq!(report.errors[0].code(), "RT-INJECT");
}

#[test]
fn golden_stealing_injected_stall_is_a_bounded_rt_timeout() {
    // A stall far past recv_timeout must surface as RT-TIMEOUT within a
    // small multiple of the timeout — the caller is freed even though it
    // participates in execution itself (no hung workers, no hung caller).
    let g = synthetic::fork_join(4, 3, 2);
    let clustering = cluster_graph(&g, &StaticCost);
    let inputs = synth_inputs(&g, 7);
    let opts = RunOptions::with_injector(one_fault(0, 0, FaultKind::RecvDelay { millis: 3000 }))
        .recv_timeout(Duration::from_millis(150));
    let start = std::time::Instant::now();
    let err =
        run_stealing_opts(&g, &clustering, &inputs, &ExecCtx::sequential(), &opts).unwrap_err();
    assert_eq!(err.code(), "RT-TIMEOUT", "{err}");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "stealing timeout must be bounded, took {:?}",
        start.elapsed()
    );
}
