//! Semantic-equivalence tests: every transformation and every execution
//! strategy must compute the same function as the plain sequential
//! interpreter.

use ramiel::{compile, PipelineOptions};
use ramiel_cluster::{cluster_graph, hypercluster, switched_hypercluster, StaticCost};
use ramiel_models::{build, synthetic, ModelConfig, ModelKind};
use ramiel_passes::CloneConfig;
use ramiel_runtime::{run_hyper, run_parallel, run_sequential, synth_inputs, Env};
use ramiel_tensor::{ExecCtx, Value};

fn assert_close(a: &Env, b: &Env, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: output count");
    for (k, va) in a {
        match (va, &b[k]) {
            (Value::F32(x), Value::F32(y)) => {
                assert_eq!(x.shape(), y.shape(), "{what}: {k} shape");
                for (p, q) in x.data().iter().zip(y.data()) {
                    let same = (p.is_nan() && q.is_nan())
                        || p == q
                        || (p - q).abs() <= 1e-4 * p.abs().max(1.0);
                    assert!(same, "{what}: {k}: {p} vs {q}");
                }
            }
            (va, vb) => assert_eq!(va, vb, "{what}: {k}"),
        }
    }
}

#[test]
fn optimized_pipeline_preserves_model_semantics() {
    // prune + clone must not change what any model computes
    let cfg = ModelConfig::tiny();
    let ctx = ExecCtx::sequential();
    for kind in ModelKind::all() {
        let original = build(kind, &cfg);
        let inputs = synth_inputs(&original, 99);
        let baseline = run_sequential(&original, &inputs, &ctx)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        let c = compile(original, &PipelineOptions::all_optimizations()).unwrap();
        let optimized = run_sequential(&c.graph, &inputs, &ctx)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        // prune may rename an output only if it was an identity; our models
        // keep output names stable
        assert_close(&baseline, &optimized, kind.name());
    }
}

#[test]
fn parallel_execution_of_optimized_graphs_matches_sequential() {
    let cfg = ModelConfig::tiny();
    let ctx = ExecCtx::sequential();
    for kind in ModelKind::all() {
        let c = compile(build(kind, &cfg), &PipelineOptions::all_optimizations()).unwrap();
        let inputs = synth_inputs(&c.graph, 123);
        let seq = run_sequential(&c.graph, &inputs, &ctx).unwrap();
        let par = run_parallel(&c.graph, &c.clustering, &inputs, &ctx)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        assert_close(&seq, &par, kind.name());
    }
}

#[test]
fn intra_op_parallelism_does_not_change_results() {
    let g = build(ModelKind::InceptionV3, &ModelConfig::tiny());
    let clustering = cluster_graph(&g, &StaticCost);
    let inputs = synth_inputs(&g, 31);
    let seq = run_sequential(&g, &inputs, &ExecCtx::sequential()).unwrap();
    for threads in [2usize, 4] {
        let ctx = ExecCtx::with_intra_op(threads);
        let s = run_sequential(&g, &inputs, &ctx).unwrap();
        assert_close(&seq, &s, "intra-op sequential");
        let p = run_parallel(&g, &clustering, &inputs, &ctx).unwrap();
        assert_close(&seq, &p, "intra-op parallel");
    }
}

#[test]
fn hyperclustering_matches_per_sample_baseline_on_models() {
    let cfg = ModelConfig::tiny();
    let ctx = ExecCtx::sequential();
    for kind in [
        ModelKind::Squeezenet,
        ModelKind::Googlenet,
        ModelKind::YoloV5,
    ] {
        let g = build(kind, &cfg);
        let clustering = cluster_graph(&g, &StaticCost);
        for batch in [2usize, 3] {
            let inputs: Vec<Env> = (0..batch)
                .map(|b| synth_inputs(&g, 7 * b as u64 + 1))
                .collect();
            for (label, hc) in [
                ("plain", hypercluster(&clustering, batch)),
                ("switched", switched_hypercluster(&clustering, batch)),
            ] {
                let outs = run_hyper(&g, &hc, &inputs, &ctx)
                    .unwrap_or_else(|e| panic!("{} {label} b{batch}: {e}", kind.name()));
                for (b, inp) in inputs.iter().enumerate() {
                    let seq = run_sequential(&g, inp, &ctx).unwrap();
                    assert_close(&seq, &outs[b], &format!("{} {label}", kind.name()));
                }
            }
        }
    }
}

#[test]
fn random_layered_graphs_survive_the_whole_stack() {
    let ctx = ExecCtx::sequential();
    for seed in 0..8u64 {
        let g = synthetic::layered_random(seed, 6, 4, 2);
        let inputs = synth_inputs(&g, seed);
        let baseline = run_sequential(&g, &inputs, &ctx).unwrap();

        let c = compile(
            g,
            &PipelineOptions {
                prune: true,
                cloning: Some(CloneConfig::default()),
                ..Default::default()
            },
        )
        .unwrap();
        let par = run_parallel(&c.graph, &c.clustering, &inputs, &ctx)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_close(&baseline, &par, &format!("seed {seed}"));
    }
}
