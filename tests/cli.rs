//! End-to-end tests of the `ramiel` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn ramiel_bin() -> PathBuf {
    // target/<profile>/ramiel next to the test executable
    let mut path = std::env::current_exe().expect("test exe path");
    path.pop(); // deps/
    path.pop(); // debug|release/
    path.push(format!("ramiel{}", std::env::consts::EXE_SUFFIX));
    path
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(ramiel_bin())
        .args(args)
        .output()
        .expect("spawn ramiel binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn models_lists_all_eight() {
    let (ok, stdout, _) = run(&["models"]);
    assert!(ok);
    for name in [
        "Squeezenet",
        "Googlenet",
        "Inception V3",
        "Inception V4",
        "Yolo V5",
        "BERT",
        "Retinanet",
        "NASNet",
    ] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn report_prints_table1_columns() {
    let (ok, stdout, _) = run(&["report"]);
    assert!(ok);
    assert!(stdout.contains("Wt.NodeCost"));
    assert!(stdout.contains("Parallelism"));
    assert!(stdout.contains("NASNet"));
}

#[test]
fn compile_writes_artifacts() {
    let dir = std::env::temp_dir().join(format!("ramiel_cli_{}", std::process::id()));
    let dir_s = dir.to_str().expect("utf8 temp dir");
    let (ok, stdout, stderr) = run(&[
        "compile",
        "squeezenet",
        "--tiny",
        "--prune",
        "--clone",
        "--out",
        dir_s,
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("clusters:"));
    for artifact in [
        "parallel.py",
        "sequential.py",
        "clusters.dot",
        "report.json",
    ] {
        assert!(dir.join(artifact).exists(), "missing {artifact}");
    }
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(dir.join("report.json")).unwrap()).unwrap();
    assert_eq!(report["model"], "Squeezenet");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_executes_both_modes() {
    let (ok, stdout, stderr) = run(&["run", "squeezenet", "--tiny", "--iters", "1"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("sequential:"));
    assert!(stdout.contains("parallel"));
    assert!(stdout.contains("ms/iter"));
}

#[test]
fn profile_emits_valid_trace_and_reports() {
    let dir = std::env::temp_dir().join(format!("ramiel_cli_prof_{}", std::process::id()));
    let dir_s = dir.to_str().expect("utf8 temp dir");
    let (ok, stdout, stderr) = run(&["profile", "squeezenet", "--tiny", "--out", dir_s]);
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("cost-model prediction accuracy"),
        "{stdout}"
    );
    assert!(stdout.contains("profile-guided reclustering"), "{stdout}");
    assert!(stdout.contains("trace summary"), "{stdout}");
    let trace_path = dir.join("squeezenet-trace.json");
    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    // the binary validates before writing; double-check the artifact parses
    // and carries the executor tracks
    let parsed: serde_json::Value = serde_json::from_str(&trace).expect("trace parses");
    let events = parsed["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    for name in [
        "compile pipeline",
        "sequential executor",
        "parallel executor",
        "hypercluster executor",
        "cluster pool",
    ] {
        assert!(trace.contains(name), "missing process `{name}` in trace");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn export_then_compile_from_file() {
    let path = std::env::temp_dir().join(format!("ramiel_cli_model_{}.json", std::process::id()));
    let path_s = path.to_str().expect("utf8 path");
    let (ok, _, stderr) = run(&["export", "googlenet", path_s, "--tiny"]);
    assert!(ok, "stderr: {stderr}");
    let (ok, stdout, stderr) = run(&["compile", path_s]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("Googlenet"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn simulate_prints_speedup() {
    let (ok, stdout, stderr) = run(&["simulate", "googlenet", "--tiny"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("simulated speedup"));
    assert!(stdout.contains("slack fraction"));
}

#[test]
fn compile_with_batch_writes_hyper_module() {
    let dir = std::env::temp_dir().join(format!("ramiel_cli_hyper_{}", std::process::id()));
    let dir_s = dir.to_str().expect("utf8 temp dir");
    let (ok, _, stderr) = run(&[
        "compile",
        "squeezenet",
        "--tiny",
        "--batch",
        "4",
        "--switched",
        "--out",
        dir_s,
    ]);
    assert!(ok, "stderr: {stderr}");
    let hyper = std::fs::read_to_string(dir.join("hyper.py")).expect("hyper.py written");
    assert!(hyper.contains("SWITCHED"));
    assert!(hyper.contains("def hypercluster_0("));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_verifies_compiled_schedules() {
    let (ok, stdout, stderr) = run(&["check", "squeezenet", "--tiny"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("ok ("), "unexpected output:\n{stdout}");
    assert!(stdout.contains("0 errors"), "unexpected output:\n{stdout}");

    // Batched switched hyperclustering goes through the first-ready policy.
    let (ok, stdout, stderr) = run(&[
        "check",
        "squeezenet",
        "--tiny",
        "--batch",
        "4",
        "--switched",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("0 errors"), "unexpected output:\n{stdout}");
}

#[test]
fn check_deny_warnings_fails_on_findings() {
    // The default LC+merge clustering of googlenet produces a benign
    // quotient-cycle warning (RV0202); --deny-warnings must promote it to a
    // failing exit code while the default mode tolerates it.
    let (ok, _, _) = run(&["check", "googlenet", "--tiny"]);
    assert!(ok);
    let (ok, stdout, _) = run(&["check", "googlenet", "--tiny", "--deny-warnings"]);
    assert!(!ok);
    assert!(stdout.contains("RV0202"), "expected RV0202 in:\n{stdout}");
}

#[test]
fn unknown_args_fail_cleanly() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
    let (ok, _, stderr) = run(&["compile", "squeezenet", "--bogus"]);
    assert!(!ok);
    assert!(stderr.contains("--bogus") || stderr.contains("unknown"));
    let (ok, _, stderr) = run(&["compile", "not-a-model"]);
    assert!(!ok);
    assert!(stderr.contains("not a built-in model"));
}
