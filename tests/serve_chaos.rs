//! Chaos suite for the serving layer: deterministic fault injection under
//! concurrent load.
//!
//! Contract: with any seeded [`FaultPlan`] wired into the server, (1) the
//! server stays live — every submitted request gets an answer within a
//! bounded time, (2) each answer is either bit-identical to the fault-free
//! sequential baseline or a structured error (SV-*/RT-* code), never a
//! bare panic or a hang, and (3) once the plan's faults are spent the
//! server keeps serving correct results.

use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_runtime::{run_sequential, synth_inputs, FaultInjector, FaultPlan, SupervisorConfig};
use ramiel_serve::{PlanSpec, ServeConfig, ServeError, ServeExecutor, Server};
use ramiel_tensor::ExecCtx;
use std::sync::Arc;
use std::time::Duration;

/// Suppress backtrace spam from *expected* injected panics (they are caught
/// by the pool workers / fallback path; the default hook would still print).
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info
                .payload()
                .downcast_ref::<ramiel_runtime::fault::InjectedPanic>()
                .is_some()
            {
                return;
            }
            prev(info);
        }));
    });
}

fn chaos_server_with(
    g: &ramiel_ir::Graph,
    fseed: u64,
    nfaults: usize,
    executor: ServeExecutor,
) -> Server {
    let plan = FaultPlan::random(fseed, g.num_nodes(), 1, nfaults);
    Server::new(ServeConfig {
        max_batch: 4,
        max_delay: Duration::from_millis(2),
        injector: Some(FaultInjector::new(plan)),
        supervisor: SupervisorConfig {
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            fallback: true,
            ..Default::default()
        },
        // Bounded: a dropped cross-cluster message must surface RT-TIMEOUT
        // quickly instead of stalling the lane.
        recv_timeout: Some(Duration::from_millis(500)),
        executor,
        ..ServeConfig::default()
    })
}

fn chaos_server(g: &ramiel_ir::Graph, fseed: u64, nfaults: usize) -> Server {
    chaos_server_with(g, fseed, nfaults, ServeExecutor::Hyper)
}

#[test]
fn server_survives_fault_plans_under_concurrent_load() {
    quiet_injected_panics();
    let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
    let baseline_ctx = ExecCtx::sequential();

    // Several plans, including fault-heavy ones; each gets a fresh server.
    for fseed in [3u64, 17, 99] {
        let server = Arc::new(chaos_server(&g, fseed, 4));
        server.load("sq", PlanSpec::new(g.clone())).unwrap();

        let mut handles = Vec::new();
        for t in 0..6u64 {
            let server = Arc::clone(&server);
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                let ctx = ExecCtx::sequential();
                for i in 0..3u64 {
                    let seed = t * 100 + i;
                    let inputs = synth_inputs(&g, seed);
                    let ticket = match server.submit("sq", inputs.clone()) {
                        Ok(t) => t,
                        Err(e) => {
                            // Admission-level shedding is a legal outcome.
                            assert!(e.code().starts_with("SV-"), "{e}");
                            continue;
                        }
                    };
                    // Liveness: bounded wait, never a hang.
                    match ticket.wait_timeout(Duration::from_secs(60)) {
                        Ok(out) => {
                            let seq = run_sequential(&g, &inputs, &ctx).unwrap();
                            assert_eq!(seq, out, "plan {fseed} thread {t} req {i} diverged");
                        }
                        Err(ServeError::Runtime(e)) => {
                            let code = e.code();
                            assert!(
                                [
                                    "RT-KERNEL",
                                    "RT-CHANNEL",
                                    "RT-PANIC",
                                    "RT-TIMEOUT",
                                    "RT-INJECT",
                                    "RT-SETUP"
                                ]
                                .contains(&code),
                                "unstructured failure {code}: {e}"
                            );
                        }
                        Err(e) => panic!("plan {fseed}: unexpected serve error {e}"),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        // The plan's faults are keyed to first executions; after the storm
        // the same server must still produce correct answers.
        let inputs = synth_inputs(&g, 4242);
        let out = server.infer("sq", inputs.clone()).unwrap();
        let seq = run_sequential(&g, &inputs, &baseline_ctx).unwrap();
        assert_eq!(seq, out, "plan {fseed}: server did not recover");

        // Shutdown after chaos must still drain cleanly (no deadlock).
        server.shutdown();
        let s = server.stats();
        assert!(s.completed >= 1, "plan {fseed}: nothing completed");
    }
}

/// Post-storm recovery under the work-stealing executor: a fault-heavy
/// plan is absorbed (retry → fallback, never a hang), and once spent the
/// same lane — whose shared stealing pool survived every failed job —
/// keeps serving bit-correct answers through drain.
#[test]
fn stealing_server_recovers_after_fault_storm() {
    quiet_injected_panics();
    let g = build(ModelKind::Googlenet, &ModelConfig::tiny());
    let baseline_ctx = ExecCtx::sequential();
    for fseed in [5u64, 23] {
        let server = Arc::new(chaos_server_with(&g, fseed, 4, ServeExecutor::Stealing));
        server.load("gn", PlanSpec::new(g.clone())).unwrap();

        let mut handles = Vec::new();
        for t in 0..4u64 {
            let server = Arc::clone(&server);
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                let ctx = ExecCtx::sequential();
                for i in 0..3u64 {
                    let inputs = synth_inputs(&g, t * 100 + i);
                    let ticket = match server.submit("gn", inputs.clone()) {
                        Ok(t) => t,
                        Err(e) => {
                            assert!(e.code().starts_with("SV-"), "{e}");
                            continue;
                        }
                    };
                    match ticket.wait_timeout(Duration::from_secs(60)) {
                        Ok(out) => {
                            let seq = run_sequential(&g, &inputs, &ctx).unwrap();
                            assert_eq!(seq, out, "plan {fseed} thread {t} req {i} diverged");
                        }
                        Err(ServeError::Runtime(e)) => {
                            let code = e.code();
                            assert!(
                                [
                                    "RT-KERNEL",
                                    "RT-CHANNEL",
                                    "RT-PANIC",
                                    "RT-TIMEOUT",
                                    "RT-INJECT",
                                    "RT-SETUP"
                                ]
                                .contains(&code),
                                "unstructured failure {code}: {e}"
                            );
                        }
                        Err(e) => panic!("plan {fseed}: unexpected serve error {e}"),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        // Faults are keyed to first executions; post-storm the stealing
        // lane must serve correct answers again.
        let inputs = synth_inputs(&g, 9999);
        let out = server.infer("gn", inputs.clone()).unwrap();
        let seq = run_sequential(&g, &inputs, &baseline_ctx).unwrap();
        assert_eq!(seq, out, "plan {fseed}: stealing server did not recover");

        server.shutdown();
        let s = server.stats();
        assert!(s.completed >= 1, "plan {fseed}: nothing completed");
    }
}

#[test]
fn fallback_isolates_poisoned_batches() {
    quiet_injected_panics();
    // A worker panic on the first execution forces the batch down the
    // retry → sequential-fallback path; the response must still be correct.
    let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
    let server = chaos_server(&g, 7, 3);
    server.load("sq", PlanSpec::new(g.clone())).unwrap();
    let ctx = ExecCtx::sequential();
    let mut structured_failures = 0;
    for seed in 0..8u64 {
        let inputs = synth_inputs(&g, seed);
        match server.infer("sq", inputs.clone()) {
            Ok(out) => {
                let seq = run_sequential(&g, &inputs, &ctx).unwrap();
                assert_eq!(seq, out, "seed {seed}");
            }
            Err(ServeError::Runtime(_)) => structured_failures += 1,
            Err(e) => panic!("unexpected serve error: {e}"),
        }
    }
    let s = server.stats();
    assert_eq!(s.completed + structured_failures, 8);
    // The storm must have exercised the supervisor path at least once
    // (retry or fallback) — otherwise the plan fired nothing and the test
    // proves nothing.
    assert!(
        s.retries + s.fallbacks > 0 || structured_failures > 0,
        "fault plan never fired"
    );
}
