//! Registry + hot-swap integration tests: content-addressed pulls over
//! `file://` and loopback `http://`, sha256 pinning (including the
//! refuse-before-cache contract on mismatch), manifest provenance, and
//! checksum-pinned hot swap into a live `Server` with an observable plan
//! version bump — the programmatic twin of ci.sh's registry gate.

use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_serve::{sha256, PlanSpec, Registry, RegistryError, ServeConfig, Server};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Unique scratch dir per test so parallel tests don't share caches.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ramiel-registry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Export a tiny model into `dir` and return (path, bytes, sha256 hex).
fn fixture_model(dir: &Path) -> (PathBuf, Vec<u8>, String) {
    let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
    let bytes = ramiel_onnx::export_model(&g);
    let path = dir.join("model.onnx");
    std::fs::write(&path, &bytes).unwrap();
    let digest = sha256::hex_digest(&bytes);
    (path, bytes, digest)
}

#[test]
fn file_pull_is_content_addressed_and_manifested() {
    let dir = scratch("file-pull");
    let (path, bytes, digest) = fixture_model(&dir);
    let registry = Registry::new(dir.join("cache"));

    let pulled = registry
        .pull(&format!("file://{}", path.display()), None)
        .unwrap();
    assert_eq!(pulled.sha256, digest);
    assert_eq!(pulled.bytes, bytes.len() as u64);
    assert!(!pulled.cache_hit);
    assert_eq!(std::fs::read(&pulled.path).unwrap(), bytes);
    // Blob lands under <root>/sha256/<hex>.
    assert!(pulled.path.ends_with(PathBuf::from("sha256").join(&digest)));

    // Manifest records provenance for the digest.
    let manifest = registry.manifest().unwrap();
    let entry = manifest.get(&digest).expect("manifest entry");
    assert!(entry.source.ends_with("model.onnx"));
    assert_eq!(entry.bytes, bytes.len() as u64);
}

#[test]
fn pinned_pull_hits_the_cache_without_refetching() {
    let dir = scratch("pin-hit");
    let (path, _, digest) = fixture_model(&dir);
    let registry = Registry::new(dir.join("cache"));
    let url = format!("file://{}", path.display());

    registry.pull(&url, Some(&digest)).unwrap();
    // Delete the source: a pinned re-pull must be served from cache alone.
    std::fs::remove_file(&path).unwrap();
    let again = registry.pull(&url, Some(&digest)).unwrap();
    assert!(again.cache_hit);
    assert_eq!(again.sha256, digest);
}

#[test]
fn checksum_mismatch_refuses_before_caching() {
    let dir = scratch("pin-miss");
    let (path, _, digest) = fixture_model(&dir);
    let registry = Registry::new(dir.join("cache"));
    let wrong = "a".repeat(64);

    let err = registry
        .pull(&format!("file://{}", path.display()), Some(&wrong))
        .unwrap_err();
    match &err {
        RegistryError::Checksum { expected, actual } => {
            assert_eq!(expected, &wrong);
            assert_eq!(actual, &digest);
        }
        other => panic!("expected RG-CHECKSUM, got {other:?}"),
    }
    assert_eq!(err.code(), "RG-CHECKSUM");
    // Nothing cached under either digest.
    assert!(registry.lookup(&digest).is_none());
    assert!(registry.lookup(&wrong).is_none());
}

#[test]
fn malformed_pin_and_unknown_scheme_are_structured() {
    let dir = scratch("bad-inputs");
    let registry = Registry::new(dir.join("cache"));
    // A malformed pin is a bad argument (RG-SCHEME), not a digest mismatch:
    // RG-CHECKSUM is reserved for bytes that hash to the wrong value.
    let err = registry
        .pull("file:///nope", Some("not-a-digest"))
        .unwrap_err();
    assert_eq!(err.code(), "RG-SCHEME");
    assert!(
        err.to_string().contains("not-a-digest"),
        "pin not named: {err}"
    );
    let err = registry.pull("ftp://host/model.onnx", None).unwrap_err();
    assert_eq!(err.code(), "RG-SCHEME");
    let err = registry.pull("https://host/model.onnx", None).unwrap_err();
    assert_eq!(err.code(), "RG-SCHEME"); // no TLS stack — must say so, not hang
    let err = registry
        .pull(
            &format!("file://{}", dir.join("absent.onnx").display()),
            None,
        )
        .unwrap_err();
    assert_eq!(err.code(), "RG-IO");
}

#[test]
fn http_pull_round_trips_over_loopback() {
    let dir = scratch("http-pull");
    let (_, bytes, digest) = fixture_model(&dir);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let root = dir.clone();
    std::thread::spawn(move || {
        let _ = ramiel_serve::registry::serve_dir(listener, root);
    });

    let registry = Registry::new(dir.join("cache"));
    let url = format!("http://{addr}/model.onnx");
    let pulled = registry.pull(&url, Some(&digest)).unwrap();
    assert_eq!(pulled.sha256, digest);
    assert_eq!(std::fs::read(&pulled.path).unwrap(), bytes);

    let err = registry
        .pull(&format!("http://{addr}/missing.onnx"), None)
        .unwrap_err();
    assert_eq!(err.code(), "RG-HTTP");
}

#[test]
fn hot_swap_bumps_the_plan_version_and_serves_the_new_graph() {
    let dir = scratch("hot-swap");
    let (path, _, digest) = fixture_model(&dir);
    let registry = Registry::new(dir.join("cache"));

    let server = Arc::new(Server::new(ServeConfig::default()));
    let g0 = build(ModelKind::Squeezenet, &ModelConfig::tiny());
    let v0 = server.load("m", PlanSpec::new(g0)).unwrap().version;

    // Pull with the correct pin, import, hot-swap under the same lane name.
    let pulled = registry
        .pull(&format!("file://{}", path.display()), Some(&digest))
        .unwrap();
    let graph = ramiel_onnx::load_model(&pulled.path).unwrap();
    let v1 = server.load("m", PlanSpec::new(graph)).unwrap().version;
    assert!(v1 > v0, "hot swap must bump the plan version ({v0} → {v1})");
    assert_eq!(server.model_versions().get("m"), Some(&v1));

    // The swapped-in plan answers inferences.
    let plan = server.plan("m").unwrap();
    let env = ramiel_runtime::synth_inputs(&plan.graph, 3);
    let out = server.submit("m", env).unwrap().wait().unwrap();
    assert!(!out.is_empty());

    // A mismatched pin refuses before any graph reaches the server: the
    // version must not move.
    let err = registry
        .pull(&format!("file://{}", path.display()), Some(&"b".repeat(64)))
        .unwrap_err();
    assert_eq!(err.code(), "RG-CHECKSUM");
    assert_eq!(server.model_versions().get("m"), Some(&v1));
}

#[test]
fn sha256_matches_the_nist_vector_through_the_public_api() {
    // Belt and braces at the integration level; the full vector suite lives
    // in the crate's unit tests.
    assert_eq!(
        sha256::hex_digest(b"abc"),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    );
}
