//! Property + golden tests for the static schedule verifier.
//!
//! Property side: every schedule the pipeline can legitimately produce over
//! random DAGs — linear clustering, LC + merging, post-pass clusterings, and
//! both hypercluster variants — must verify with zero errors. Golden side:
//! hand-corrupted schedules must be rejected with the *specific* diagnostic
//! codes documented in `ramiel::verify::codes`; these are regression tests
//! for violation classes that previously surfaced only as a runtime recv
//! timeout (or not at all).

use proptest::prelude::*;
use ramiel::verify::{codes, verify, ExecPolicy, ScheduleView, Severity};
use ramiel_cluster::{
    cluster_graph, clustering_view, distance_to_end, hyper_view, hypercluster, linear_clustering,
    merge_clusters_fixpoint, switched_hypercluster, StaticCost,
};
use ramiel_ir::{DType, Graph, GraphBuilder, OpKind};
use ramiel_models::synthetic;

fn graph_strategy() -> impl Strategy<Value = Graph> {
    (any::<u64>(), 1usize..8, 1usize..6, 1usize..4).prop_map(|(seed, layers, width, lookback)| {
        synthetic::layered_random(seed, layers, width, lookback)
    })
}

/// Codes of error-severity findings, for readable failure messages.
fn error_codes(graph: &Graph, view: &ScheduleView) -> Vec<&'static str> {
    let report = verify(graph, Some(view));
    report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.code)
        .collect()
}

fn has_code(graph: &Graph, view: &ScheduleView, code: &str) -> bool {
    verify(graph, Some(view))
        .diagnostics
        .iter()
        .any(|d| d.code == code)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Raw linear clustering and the merged fixpoint both verify clean.
    #[test]
    fn lc_and_merged_verify_error_free(g in graph_strategy()) {
        let dist = distance_to_end(&g, &StaticCost);
        let lc = linear_clustering(&g, &dist);
        prop_assert_eq!(error_codes(&g, &clustering_view(&lc)), Vec::<&str>::new());
        let merged = merge_clusters_fixpoint(&lc, &dist);
        prop_assert_eq!(error_codes(&g, &clustering_view(&merged)), Vec::<&str>::new());
    }

    /// Clusterings over pruned + cloned graphs verify clean too — the passes
    /// must not manufacture schedules the verifier rejects.
    #[test]
    fn post_pass_clusterings_verify_error_free(g in graph_strategy()) {
        let mut g = g;
        ramiel_passes::prune(&mut g).unwrap();
        ramiel_passes::clone_nodes(
            &mut g,
            &StaticCost,
            &ramiel_passes::CloneConfig::default(),
        )
        .unwrap();
        let clustering = cluster_graph(&g, &StaticCost);
        prop_assert_eq!(error_codes(&g, &clustering_view(&clustering)), Vec::<&str>::new());
    }

    /// Plain and switched hyperclusterings verify clean for every batch size.
    #[test]
    fn hyper_views_verify_error_free(g in graph_strategy(), batch in 2usize..6) {
        let clustering = cluster_graph(&g, &StaticCost);
        let plain = hypercluster(&clustering, batch);
        prop_assert_eq!(error_codes(&g, &hyper_view(&plain)), Vec::<&str>::new());
        let switched = switched_hypercluster(&clustering, batch);
        prop_assert_eq!(error_codes(&g, &hyper_view(&switched)), Vec::<&str>::new());
    }
}

// ---- golden corruption tests ------------------------------------------------

/// in → a → {p, q} → j, node ids 0..=3.
fn diamond() -> Graph {
    let mut b = GraphBuilder::new("diamond");
    let x = b.input("x", DType::F32, vec![4]);
    let a = b.op("a", OpKind::Relu, vec![x]);
    let p = b.op("p", OpKind::Relu, vec![a.clone()]);
    let q = b.op("q", OpKind::Relu, vec![a]);
    let j = b.op("j", OpKind::Add, vec![p, q]);
    b.output(&j);
    b.finish().unwrap()
}

#[test]
fn swapped_in_cluster_order_is_rejected() {
    let g = diamond();
    // j scheduled before its operand p on the same worker: order violation,
    // schedule-graph cycle, and a provable execution stall, each with its own
    // code so the report names the bug three complementary ways.
    let v = ScheduleView::single_batch(vec![vec![0, 3, 1], vec![2]], ExecPolicy::InOrder);
    for code in [
        codes::ORDER_VIOLATION,
        codes::SCHEDULE_CYCLE,
        codes::CHANNEL_DEADLOCK,
    ] {
        assert!(has_code(&g, &v, code), "expected {code}");
    }
}

#[test]
fn cross_cluster_wait_cycle_is_rejected() {
    let g = diamond();
    // Worker 0 runs p then waits for q's consumer output; worker 1 runs j
    // (needs p AND q) before q — the two workers wait on each other.
    let v = ScheduleView::single_batch(vec![vec![0, 1], vec![3, 2]], ExecPolicy::InOrder);
    assert!(has_code(&g, &v, codes::SCHEDULE_CYCLE));
    assert!(has_code(&g, &v, codes::CHANNEL_DEADLOCK));
}

#[test]
fn missing_and_duplicate_nodes_are_rejected() {
    let g = diamond();
    let missing = ScheduleView::single_batch(vec![vec![0, 1, 3]], ExecPolicy::InOrder);
    assert!(has_code(&g, &missing, codes::OP_MISSING));

    let duplicated =
        ScheduleView::single_batch(vec![vec![0, 1, 2], vec![2, 3]], ExecPolicy::InOrder);
    assert!(has_code(&g, &duplicated, codes::OP_DUPLICATE));

    let unknown = ScheduleView::single_batch(vec![vec![0, 1, 2, 3, 9]], ExecPolicy::InOrder);
    assert!(has_code(&g, &unknown, codes::OP_UNKNOWN));
}

#[test]
fn coverage_errors_gate_deeper_checks() {
    let g = diamond();
    // Missing node 2 also breaks j's operands, but the verifier must report
    // the root cause (coverage) without cascading cycle/deadlock noise.
    let v = ScheduleView::single_batch(vec![vec![0, 1, 3]], ExecPolicy::InOrder);
    let report = verify(&g, Some(&v));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == codes::OP_MISSING));
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.code != codes::CHANNEL_DEADLOCK && d.code != codes::SCHEDULE_CYCLE));
}

#[test]
fn valid_handwritten_schedule_passes() {
    let g = diamond();
    let v = ScheduleView::single_batch(vec![vec![0, 1, 3], vec![2]], ExecPolicy::InOrder);
    let report = verify(&g, Some(&v));
    assert!(
        !report.has_errors(),
        "unexpected errors:\n{}",
        report.render()
    );
}
