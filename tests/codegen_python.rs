//! Validates the paper's "readable and executable" codegen claim: every
//! generated module must be syntactically valid Python (checked with the
//! host's `python3 -m py_compile` when available, skipped otherwise) and
//! structurally consistent with the clustering it was generated from.

use ramiel::{compile, PipelineOptions};
use ramiel_models::{build, ModelConfig, ModelKind};
use std::io::Write;
use std::process::Command;

fn python3() -> Option<&'static str> {
    static AVAILABLE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    let ok = *AVAILABLE.get_or_init(|| {
        Command::new("python3")
            .arg("--version")
            .output()
            .map(|o| o.status.success())
            .unwrap_or(false)
    });
    ok.then_some("python3")
}

/// Compile a code string with CPython; panics with the compiler's stderr on
/// a syntax error.
fn assert_valid_python(code: &str, what: &str) {
    let Some(py) = python3() else {
        eprintln!("python3 not available; skipping syntax check for {what}");
        return;
    };
    let dir = std::env::temp_dir().join(format!("ramiel_codegen_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{}.py", what.replace(' ', "_")));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(code.as_bytes()).expect("write code");
    drop(f);
    let out = Command::new(py)
        .args(["-m", "py_compile"])
        .arg(&path)
        .output()
        .expect("run python3");
    assert!(
        out.status.success(),
        "{what}: generated Python does not compile:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn generated_parallel_python_compiles_for_every_model() {
    let cfg = ModelConfig::tiny();
    for kind in ModelKind::all() {
        let c = compile(build(kind, &cfg), &PipelineOptions::default()).unwrap();
        assert_valid_python(&c.parallel_code, &format!("{}_parallel", kind.name()));
    }
}

#[test]
fn generated_sequential_python_compiles_for_every_model() {
    let cfg = ModelConfig::tiny();
    for kind in ModelKind::all() {
        let c = compile(build(kind, &cfg), &PipelineOptions::default()).unwrap();
        assert_valid_python(&c.sequential_code, &format!("{}_sequential", kind.name()));
    }
}

#[test]
fn optimized_codegen_also_compiles() {
    let c = compile(
        build(ModelKind::YoloV5, &ModelConfig::tiny()),
        &PipelineOptions::all_optimizations(),
    )
    .unwrap();
    assert_valid_python(&c.parallel_code, "yolo_optimized_parallel");
}

#[test]
fn generated_hypercluster_python_compiles() {
    use ramiel::HyperMode;
    for (mode, batch) in [(HyperMode::Plain, 4), (HyperMode::Switched, 3)] {
        let c = compile(
            build(ModelKind::Squeezenet, &ModelConfig::tiny()),
            &PipelineOptions {
                batch,
                hyper: mode,
                ..Default::default()
            },
        )
        .unwrap();
        let code = c.hyper_code.expect("hyper code generated");
        assert_valid_python(&code, &format!("squeezenet_hyper_{mode:?}_{batch}"));
    }
}

#[test]
fn puts_and_gets_match_cross_cluster_edge_count() {
    // structural consistency: the number of distinct (tensor, consumer)
    // queue keys equals both the puts and the gets emitted
    let cfg = ModelConfig::tiny();
    for kind in [ModelKind::Squeezenet, ModelKind::NasNet] {
        let c = compile(build(kind, &cfg), &PipelineOptions::default()).unwrap();
        let puts = c.parallel_code.matches(".put(").count();
        let gets = c.parallel_code.matches(".get()").count();
        let keys = c
            .parallel_code
            .lines()
            .skip_while(|l| !l.starts_with("MESSAGE_KEYS"))
            .take_while(|l| !l.starts_with(']'))
            .filter(|l| l.trim_start().starts_with('('))
            .count();
        assert_eq!(puts, gets, "{}", kind.name());
        assert_eq!(puts, keys, "{}", kind.name());
    }
}

#[test]
fn generated_code_references_every_graph_input_and_output() {
    let c = compile(
        build(ModelKind::Bert, &ModelConfig::tiny()),
        &PipelineOptions::default(),
    )
    .unwrap();
    for inp in &c.graph.inputs {
        assert!(
            c.parallel_code.contains(&format!("inputs['{}']", inp.name)),
            "missing input {}",
            inp.name
        );
    }
    for out in &c.graph.outputs {
        assert!(
            c.parallel_code.contains(&format!("results['{out}']")),
            "missing output {out}"
        );
    }
}
