//! Property-based tests over randomly generated dataflow graphs: the
//! clustering algorithms' invariants must hold on *every* DAG, not just the
//! model zoo.

use proptest::prelude::*;
use ramiel_cluster::{
    cluster_graph, distance_to_end, hypercluster, linear_clustering, merge_clusters_fixpoint,
    switched_hypercluster, StaticCost,
};
use ramiel_models::synthetic;
use ramiel_runtime::{
    run_parallel, run_sequential, simulate_clustering, simulate_sequential, synth_inputs, SimConfig,
};
use ramiel_tensor::{ExecCtx, Value};

fn graph_strategy() -> impl Strategy<Value = ramiel_ir::Graph> {
    (any::<u64>(), 1usize..8, 1usize..6, 1usize..4).prop_map(|(seed, layers, width, lookback)| {
        synthetic::layered_random(seed, layers, width, lookback)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 1's contract: clusters partition the node set and every
    /// cluster is a linear path of the graph.
    #[test]
    fn lc_produces_a_partition_of_linear_paths(g in graph_strategy()) {
        let dist = distance_to_end(&g, &StaticCost);
        let lc = linear_clustering(&g, &dist);
        lc.check_partition(&g).unwrap();
        lc.check_internal_order(&g).unwrap();
        let adj = g.adjacency();
        for cl in &lc.clusters {
            for w in cl.nodes.windows(2) {
                prop_assert!(adj.succs[w[0]].contains(&w[1]), "not a path edge: {w:?}");
            }
        }
    }

    /// Algorithms 2–3: merging preserves the partition, never increases the
    /// cluster count, keeps execution order valid, and reaches a fixpoint.
    #[test]
    fn merging_preserves_partition_and_reaches_fixpoint(g in graph_strategy()) {
        let dist = distance_to_end(&g, &StaticCost);
        let lc = linear_clustering(&g, &dist);
        let merged = merge_clusters_fixpoint(&lc, &dist);
        merged.check_partition(&g).unwrap();
        merged.check_internal_order(&g).unwrap();
        prop_assert!(merged.num_clusters() <= lc.num_clusters());
        let (again, changed) = ramiel_cluster::merge_clusters_once(&merged, &dist);
        prop_assert!(!changed);
        prop_assert_eq!(again, merged);
    }

    /// The distance pass is a strict potential: it decreases along every
    /// dependence edge by at least cost + edge weight.
    #[test]
    fn distance_is_a_strict_potential(g in graph_strategy()) {
        let dist = distance_to_end(&g, &StaticCost);
        let adj = g.adjacency();
        for u in 0..g.num_nodes() {
            for &v in &adj.succs[u] {
                prop_assert!(dist[u] > dist[v]);
            }
        }
    }

    /// Parallel execution over the merged clustering computes exactly what
    /// the sequential interpreter computes.
    #[test]
    fn parallel_equals_sequential(g in graph_strategy(), seed in any::<u64>()) {
        let clustering = cluster_graph(&g, &StaticCost);
        let inputs = synth_inputs(&g, seed);
        let ctx = ExecCtx::sequential();
        let seq = run_sequential(&g, &inputs, &ctx).unwrap();
        let par = run_parallel(&g, &clustering, &inputs, &ctx).unwrap();
        prop_assert_eq!(seq.len(), par.len());
        for (k, va) in &seq {
            match (va, &par[k]) {
                (Value::F32(x), Value::F32(y)) => {
                    prop_assert_eq!(x.shape(), y.shape());
                    for (p, q) in x.data().iter().zip(y.data()) {
                        prop_assert!(
                            (p.is_nan() && q.is_nan())
                                || p == q
                                || (p - q).abs() <= 1e-4 * p.abs().max(1.0)
                        );
                    }
                }
                (va, vb) => prop_assert_eq!(va, vb),
            }
        }
    }

    /// The simulator conserves work: total busy time equals the sequential
    /// cost, and the makespan is bounded by it on both sides.
    #[test]
    fn simulator_conserves_work(g in graph_strategy()) {
        let clustering = cluster_graph(&g, &StaticCost);
        let sim = simulate_clustering(&g, &clustering, &StaticCost, &SimConfig::default()).unwrap();
        let seq = simulate_sequential(&g, &StaticCost, 1);
        prop_assert_eq!(sim.busy.iter().sum::<u64>(), seq);
        prop_assert!(sim.makespan <= seq + g.num_edges() as u64);
        // makespan at least the critical path over the clustering
        let max_busy = *sim.busy.iter().max().unwrap();
        prop_assert!(sim.makespan >= max_busy);
    }

    /// Hyperclusterings cover every (batch, node) pair exactly once, for
    /// both variants and arbitrary batch sizes.
    #[test]
    fn hyperclusters_cover_every_sample(g in graph_strategy(), batch in 1usize..6) {
        let clustering = cluster_graph(&g, &StaticCost);
        hypercluster(&clustering, batch).check_coverage(g.num_nodes()).unwrap();
        switched_hypercluster(&clustering, batch).check_coverage(g.num_nodes()).unwrap();
    }

    /// Pruning + cloning keep graphs valid and semantics intact on random
    /// DAGs.
    #[test]
    fn passes_preserve_semantics(g in graph_strategy(), seed in any::<u64>()) {
        let inputs = synth_inputs(&g, seed);
        let ctx = ExecCtx::sequential();
        let baseline = run_sequential(&g, &inputs, &ctx).unwrap();

        let mut optimized = g.clone();
        ramiel_passes::prune(&mut optimized).unwrap();
        ramiel_passes::clone_nodes(
            &mut optimized,
            &StaticCost,
            &ramiel_passes::CloneConfig::default(),
        )
        .unwrap();
        ramiel_ir::validate::validate(&optimized).unwrap();
        let after = run_sequential(&optimized, &inputs, &ctx).unwrap();
        for (k, va) in &baseline {
            match (va, &after[k]) {
                (Value::F32(x), Value::F32(y)) => {
                    for (p, q) in x.data().iter().zip(y.data()) {
                        prop_assert!(
                            (p.is_nan() && q.is_nan())
                                || p == q
                                || (p - q).abs() <= 1e-4 * p.abs().max(1.0)
                        );
                    }
                }
                (va, vb) => prop_assert_eq!(va, vb),
            }
        }
    }
}
