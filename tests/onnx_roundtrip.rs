//! ONNX round-trip: every paper topology must survive
//! export → `.onnx` bytes → import *bit-identically* — the same validated
//! `Graph` value and, consequently, the same `run_sequential` outputs.
//!
//! Bit-identity is the strong form of the importer/exporter contract:
//! initializers travel as raw little-endian bytes, float attributes as
//! fixed32 bit patterns, and `value_info` is re-derived by shape inference
//! on import (every generator graph passed through the same inference), so
//! nothing is allowed to drift.

use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_onnx::{export_model, import_model, round_trip};
use ramiel_runtime::{run_sequential, synth_inputs};
use ramiel_tensor::{ExecCtx, Value};

#[test]
fn all_eight_topologies_round_trip_bit_identically() {
    let cfg = ModelConfig::tiny();
    for kind in ModelKind::all() {
        let original = build(kind, &cfg);
        let back = round_trip(&original)
            .unwrap_or_else(|e| panic!("{}: round trip failed: {e}", kind.name()));
        assert_eq!(
            original,
            back,
            "{}: graph drifted through ONNX",
            kind.name()
        );
    }
}

#[test]
fn round_trip_preserves_run_sequential_outputs() {
    // Redundant with bit-identity in principle; kept as the semantic
    // backstop the acceptance criteria name, and exact (==, not approx)
    // because the graphs are equal values.
    let cfg = ModelConfig::tiny();
    let ctx = ExecCtx::sequential();
    for kind in ModelKind::all() {
        let original = build(kind, &cfg);
        let back = round_trip(&original).unwrap();
        let inputs = synth_inputs(&original, 7);
        let a = run_sequential(&original, &inputs, &ctx).unwrap();
        let b = run_sequential(&back, &inputs, &ctx).unwrap();
        assert_eq!(a.len(), b.len(), "{}", kind.name());
        for (k, va) in &a {
            match (va, &b[k]) {
                (Value::F32(x), Value::F32(y)) => {
                    assert_eq!(x.shape(), y.shape(), "{}: {k}", kind.name());
                    assert_eq!(
                        x.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        y.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "{}: {k}",
                        kind.name()
                    );
                }
                (va, vb) => assert_eq!(va, vb, "{}: {k}", kind.name()),
            }
        }
    }
}

#[test]
fn full_size_models_round_trip_too() {
    // The paper-faithful block counts exercise deeper op mixes (e.g. the
    // full NASNet cell stacking) than the tiny configs.
    let cfg = ModelConfig::full();
    for kind in ModelKind::all() {
        let original = build(kind, &cfg);
        let back = round_trip(&original)
            .unwrap_or_else(|e| panic!("{}: round trip failed: {e}", kind.name()));
        assert_eq!(original, back, "{}", kind.name());
    }
}

#[test]
fn export_is_deterministic() {
    let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
    assert_eq!(export_model(&g), export_model(&g));
}

#[test]
fn imported_graph_is_verifier_clean_by_construction() {
    // import_model runs validate + infer_shapes + verify_graph; a second
    // verification pass over the result must stay clean.
    let g = build(ModelKind::Bert, &ModelConfig::tiny());
    let back = import_model(&export_model(&g)).unwrap();
    let diags = ramiel_verify::verify_graph(&back);
    assert!(
        diags
            .iter()
            .all(|d| d.severity != ramiel_verify::Severity::Error),
        "verifier errors on reimported graph: {diags:?}"
    );
}
