//! Profile-guided cost feedback (the paper's Fig. 10 loop): run → Profile
//! DB → `MeasuredCost` → recluster. These tests fabricate the measurements
//! so the loop is deterministic — the point is that *when* the static cost
//! model is wrong about a graph, replaying measured times into LC produces a
//! different and better schedule.

use ramiel::cluster::{
    cluster_graph, distance_to_end, linear_clustering, merge_clusters_fixpoint, Clustering,
    CostModel, MeasuredCost, StaticCost,
};
use ramiel::ir::{DType, Graph, GraphBuilder, OpKind};
use ramiel::runtime::{simulate_clustering, SimConfig, SimResult};

/// Three parallel chains between a fork and a join, with op kinds chosen so
/// StaticCost misjudges them badly:
///
/// - chain A: 4 MatMuls — statically huge (40 each), measured cheap;
/// - chain B: 4 Relus — statically trivial (1 each), measured dominant;
/// - chain C: 4 convs 3×3 — statically and measurably medium.
fn misjudged_graph() -> Graph {
    let mut b = GraphBuilder::new("misjudged");
    let x = b.input("x", DType::F32, vec![8, 8]);
    let img = b.input("img", DType::F32, vec![1, 4, 8, 8]);

    let mut a = x.clone();
    for i in 0..4 {
        a = b.op(&format!("mm{i}"), OpKind::MatMul, vec![a, x.clone()]);
    }
    let mut r = x.clone();
    for i in 0..4 {
        r = b.op(&format!("relu{i}"), OpKind::Relu, vec![r]);
    }
    let mut c = img;
    for i in 0..4 {
        c = b.conv(&c, 4, 4, (3, 3), (1, 1), (1, 1), 1);
        let _ = i;
    }
    let gap = b.op("gap", OpKind::GlobalAveragePool, vec![c]);
    let flat = b.op("flat", OpKind::Flatten { axis: 1 }, vec![gap]);
    let join = b.op("join", OpKind::Add, vec![a, r]);
    b.output(&join);
    b.output(&flat);
    b.finish().unwrap()
}

/// Measured nanoseconds contradicting StaticCost: MatMul 1µs, Relu 40µs,
/// conv 8µs (median → 1µs/unit, so units are: MatMul 1, Relu 40, Conv 8).
fn fabricated_samples(g: &Graph) -> Vec<(usize, u64)> {
    g.nodes
        .iter()
        .map(|n| {
            let ns = match &n.op {
                OpKind::MatMul => 1_000,
                OpKind::Relu => 40_000,
                OpKind::Conv { .. } => 8_000,
                _ => 1_000,
            };
            (n.id, ns)
        })
        .collect()
}

fn lc_merge(g: &Graph, cost: &dyn CostModel) -> Clustering {
    let dist = distance_to_end(g, cost);
    merge_clusters_fixpoint(&linear_clustering(g, &dist), &dist)
}

fn sim(g: &Graph, clustering: &Clustering, cost: &dyn CostModel) -> SimResult {
    let cfg = SimConfig {
        comm_latency: 8,
        dispatch_overhead: 0,
    };
    simulate_clustering(g, clustering, cost, &cfg).unwrap()
}

/// Canonical form for comparing clusterings independent of cluster order.
fn canonical(c: &Clustering) -> Vec<Vec<usize>> {
    let mut sets: Vec<Vec<usize>> = c
        .clusters
        .iter()
        .map(|cl| {
            let mut v = cl.nodes.clone();
            v.sort_unstable();
            v
        })
        .collect();
    sets.sort();
    sets
}

#[test]
fn measured_cost_reclustering_changes_and_improves_the_schedule() {
    let g = misjudged_graph();
    let static_clustering = lc_merge(&g, &StaticCost);
    let measured = MeasuredCost::from_node_ns(&g, &fabricated_samples(&g));
    let tuned_clustering = lc_merge(&g, &measured);

    assert_ne!(
        canonical(&static_clustering),
        canonical(&tuned_clustering),
        "measured costs must steer LC to a different partition"
    );

    // Ground truth is the measured model: the schedule LC built *from* it
    // must beat the schedule built from the misjudged static weights.
    let base = sim(&g, &static_clustering, &measured);
    let tuned = sim(&g, &tuned_clustering, &measured);
    assert!(
        tuned.makespan < base.makespan,
        "profile-guided makespan {} must beat static-guided {}",
        tuned.makespan,
        base.makespan
    );
}

#[test]
fn measured_cost_agrees_with_itself_on_a_round_trip() {
    // Reclustering twice from the same profile is a fixpoint: same partition.
    let g = misjudged_graph();
    let measured = MeasuredCost::from_node_ns(&g, &fabricated_samples(&g));
    let once = lc_merge(&g, &measured);
    let twice = lc_merge(&g, &measured);
    assert_eq!(canonical(&once), canonical(&twice));
}

#[test]
fn profile_db_feeds_measured_cost_end_to_end() {
    // Full loop on a real model with real (noisy) timings: the derived cost
    // model must price every node, and the reclustered schedule must still
    // pass the partition check and simulate to a finite makespan.
    use ramiel::models::{build, ModelConfig, ModelKind};
    use ramiel::runtime::{run_parallel_profiled, run_sequential, synth_inputs};
    use ramiel::tensor::ExecCtx;

    let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
    let clustering = cluster_graph(&g, &StaticCost);
    let ctx = ExecCtx::sequential();
    let inputs = synth_inputs(&g, 5);
    let expect = run_sequential(&g, &inputs, &ctx).unwrap();
    let (out, db) = run_parallel_profiled(&g, &clustering, &inputs, &ctx).unwrap();
    assert_eq!(out, expect);

    let measured = db.measured_cost(&g);
    assert_eq!(
        measured.sampled_nodes(),
        g.num_nodes(),
        "every node ran once, so every node must carry a sample"
    );
    for n in &g.nodes {
        assert!(measured.node_cost(&g, n) >= 1);
    }

    let tuned = lc_merge(&g, &measured);
    tuned.check_partition(&g).unwrap();
    let r = sim(&g, &tuned, &measured);
    assert!(r.makespan > 0);

    // The prediction report joins the same profile against the same model.
    let rep = ramiel::runtime::predict_report(&g, &measured, &db);
    assert_eq!(rep.clusters.len(), clustering.num_clusters());
    assert!(!rep.kinds.is_empty());
}
