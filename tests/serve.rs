//! Serving-layer integration: concurrent clients through [`Server`] must
//! get answers bit-identical to the reference sequential executor, and
//! shutdown must drain — every admitted request is answered, never dropped.

use ramiel::{prepare, PipelineOptions};
use ramiel_models::{build, synthetic, ModelConfig, ModelKind};
use ramiel_runtime::{run_sequential, synth_inputs};
use ramiel_serve::{OverflowPolicy, PlanSpec, ServeConfig, ServeExecutor, Server, Ticket};
use ramiel_tensor::ExecCtx;
use std::sync::Arc;
use std::time::Duration;

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        max_batch: 4,
        max_delay: Duration::from_millis(5),
        ..ServeConfig::default()
    }
}

#[test]
fn concurrent_clients_get_bit_identical_results() {
    // The acceptance contract: N client threads hammer one Server; every
    // response equals run_sequential on the same inputs, bit for bit, no
    // matter how requests were coalesced into batches.
    let g = build(ModelKind::Squeezenet, &ModelConfig::tiny());
    let prepared = prepare(g, &PipelineOptions::default()).unwrap();
    let server = Arc::new(Server::new(serve_cfg()));
    let spec = PlanSpec {
        clustering: Some(prepared.compiled.clustering.clone()),
        batch_sizes: vec![2, 4],
        init_values: Some(Arc::clone(&prepared.init_values)),
        ..PlanSpec::new(prepared.compiled.graph.clone())
    };
    server.load("sq", spec).unwrap();

    let graph = Arc::new(prepared.compiled.graph.clone());
    let threads = 8;
    let per_thread = 4;
    let mut handles = Vec::new();
    for t in 0..threads as u64 {
        let server = Arc::clone(&server);
        let graph = Arc::clone(&graph);
        handles.push(std::thread::spawn(move || {
            let ctx = ExecCtx::sequential();
            for i in 0..per_thread as u64 {
                let seed = t * 1000 + i;
                let inputs = synth_inputs(&graph, seed);
                let out = server.infer("sq", inputs.clone()).unwrap();
                let seq = run_sequential(&graph, &inputs, &ctx).unwrap();
                assert_eq!(seq, out, "thread {t} request {i} diverged");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let s = server.stats();
    assert_eq!(s.completed, (threads * per_thread) as u64);
    assert_eq!(s.failed, 0);
    assert_eq!(s.shed_queue_full + s.shed_deadline, 0);
    // Batches were really formed (coalescing may vary run to run, but the
    // counters must account for every request exactly once).
    let hist_total: u64 = s
        .batch_histogram
        .iter()
        .map(|b| b.count * b.size as u64)
        .sum();
    assert_eq!(hist_total, s.completed);
    // The per-phase latency histograms saw every answered request and
    // report ordered quantiles.
    assert!(s.latency_max_ms > 0.0);
    assert!(s.latency_p50_ms <= s.latency_p99_ms);
    assert!(s.latency_p99_ms <= s.latency_max_ms * 1.0001);
    assert!(s.peak_queue_depth >= 1);
}

/// The same acceptance contract on the work-stealing lane executor: hot
/// batches of every size the micro-batcher forms run on the shared
/// stealing pool and stay bit-identical to sequential.
#[test]
fn stealing_executor_serves_bit_identical_results() {
    let g = build(ModelKind::Bert, &ModelConfig::tiny());
    let prepared = prepare(g, &PipelineOptions::default()).unwrap();
    let server = Arc::new(Server::new(ServeConfig {
        executor: ServeExecutor::Stealing,
        ..serve_cfg()
    }));
    let spec = PlanSpec {
        clustering: Some(prepared.compiled.clustering.clone()),
        init_values: Some(Arc::clone(&prepared.init_values)),
        ..PlanSpec::new(prepared.compiled.graph.clone())
    };
    server.load("bert", spec).unwrap();

    let graph = Arc::new(prepared.compiled.graph.clone());
    let mut handles = Vec::new();
    for t in 0..6u64 {
        let server = Arc::clone(&server);
        let graph = Arc::clone(&graph);
        handles.push(std::thread::spawn(move || {
            let ctx = ExecCtx::sequential();
            for i in 0..4u64 {
                let inputs = synth_inputs(&graph, t * 1000 + i);
                let out = server.infer("bert", inputs.clone()).unwrap();
                let seq = run_sequential(&graph, &inputs, &ctx).unwrap();
                assert_eq!(seq, out, "thread {t} request {i} diverged");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let s = server.stats();
    assert_eq!(s.completed, 24);
    assert_eq!(s.failed, 0);
}

#[test]
fn shutdown_drains_in_flight_requests() {
    // Admit a burst of requests, then shut down while they are queued or
    // executing: all of them must still be answered (with outputs), and
    // post-shutdown submissions must be rejected.
    let g = synthetic::fork_join(3, 2, 2);
    let server = Arc::new(Server::new(ServeConfig {
        max_batch: 4,
        // Wide batching window: most of the burst is still queued when
        // shutdown lands, which is exactly the case under test.
        max_delay: Duration::from_millis(50),
        ..ServeConfig::default()
    }));
    server.load("fj", PlanSpec::new(g.clone())).unwrap();

    let tickets: Vec<(u64, Ticket)> = (0..16u64)
        .map(|seed| (seed, server.submit("fj", synth_inputs(&g, seed)).unwrap()))
        .collect();
    server.shutdown();

    let ctx = ExecCtx::sequential();
    for (seed, ticket) in tickets {
        let out = ticket
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|e| panic!("admitted request {seed} was dropped: {e}"));
        let seq = run_sequential(&g, &synth_inputs(&g, seed), &ctx).unwrap();
        assert_eq!(seq, out, "drained request {seed} diverged");
    }
    let err = server.infer("fj", synth_inputs(&g, 99)).unwrap_err();
    assert_eq!(err.code(), "SV-SHUTDOWN");
    let s = server.stats();
    assert_eq!(s.completed, 16);
    assert_eq!(s.failed, 0);
}

#[test]
fn deadlines_shed_dead_on_arrival_work() {
    // With an already-expired deadline relative to the queue wait, requests
    // must be rejected (admission or queued stage), not executed.
    let g = synthetic::chain(3);
    let server = Server::new(ServeConfig {
        max_batch: 2,
        max_delay: Duration::from_millis(20),
        policy: OverflowPolicy::Shed,
        ..ServeConfig::default()
    });
    server.load("c", PlanSpec::new(g.clone())).unwrap();
    let mut shed = 0;
    for seed in 0..6u64 {
        let deadline = std::time::Instant::now() - Duration::from_millis(1);
        match server.submit_with_deadline("c", synth_inputs(&g, seed), Some(deadline)) {
            Err(e) => {
                assert_eq!(e.code(), "SV-DEADLINE");
                shed += 1;
            }
            Ok(t) => {
                // Raced past admission; the queued-stage check must get it.
                let e = t.wait_timeout(Duration::from_secs(10)).unwrap_err();
                assert_eq!(e.code(), "SV-DEADLINE");
                shed += 1;
            }
        }
    }
    assert_eq!(shed, 6);
    assert_eq!(server.stats().shed_deadline, 6);
    assert_eq!(server.stats().completed, 0);
}
