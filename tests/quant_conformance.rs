//! Conformance suite for the `QuantI8` kernel backend.
//!
//! The i8 backend deliberately trades accuracy for a smaller integer
//! datapath: Gemm/MatMul/Conv quantize activations at the kernel edge,
//! accumulate exactly in i32, and dequantize the output. That breaks
//! bit-identity with the f32 backends *by design*, so its contract is
//! split in two:
//!
//! 1. **Accuracy vs f32** — on every built-in model generator, the
//!    sequential QuantI8 run must stay within a quantization-scaled
//!    tolerance of the sequential f32 run. The error budget is relative
//!    to each tensor's dynamic range (max |x|), not elementwise — a
//!    near-zero element downstream of a 127-step grid legitimately has
//!    huge *relative* error while being bang on in absolute terms.
//! 2. **Determinism across executors** — i32 accumulation is exact, so
//!    unlike f32 there is no reassociation excuse at all: every executor
//!    running QuantI8 must be *bit-identical* to sequential QuantI8.

use ramiel_cluster::{cluster_graph, hypercluster, switched_hypercluster, StaticCost};
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_runtime::{
    run_hyper, run_hyper_stealing, run_parallel, run_sequential, run_stealing, synth_inputs,
    ClusterPool, Env, KernelBackend,
};
use ramiel_tensor::{ExecCtx, Value};

/// Error budget for i8 quantization, relative to each output tensor's
/// max-abs. Per-tensor symmetric quantization contributes ~1/254 of the
/// range per quantized operand; a few chained Gemm/Conv layers compound
/// that, and softmax/layernorm renormalization can amplify it further.
const QTOL: f32 = 0.08;

/// Worst absolute error in `got` vs `expect`, scaled by `expect`'s
/// dynamic range; `None` when within budget.
fn range_divergence(expect: &Env, got: &Env) -> Option<(String, String)> {
    for (name, va) in expect {
        let Some(vb) = got.get(name) else {
            return Some((name.clone(), "missing from output".into()));
        };
        match (va, vb) {
            (Value::F32(x), Value::F32(y)) => {
                if x.shape() != y.shape() {
                    return Some((
                        name.clone(),
                        format!("shape {:?} vs {:?}", x.shape(), y.shape()),
                    ));
                }
                let range = x.data().iter().fold(0f32, |m, v| m.max(v.abs())).max(1e-3);
                let mut worst = 0f32;
                let mut worst_at = 0usize;
                for (i, (p, q)) in x.data().iter().zip(y.data()).enumerate() {
                    if p.is_nan() && q.is_nan() {
                        continue;
                    }
                    let err = (p - q).abs() / range;
                    if err > worst {
                        worst = err;
                        worst_at = i;
                    }
                }
                if worst > QTOL {
                    return Some((
                        name.clone(),
                        format!(
                            "worst range-relative err {worst:.3e} at flat index {worst_at} \
                             ({} vs {}, range {range})",
                            x.data()[worst_at],
                            y.data()[worst_at]
                        ),
                    ));
                }
            }
            (va, vb) => {
                if va != vb {
                    return Some((name.clone(), "non-f32 outputs differ exactly".into()));
                }
            }
        }
    }
    None
}

/// First `(tensor, index)` where two envs differ in f32 bit patterns.
fn first_bit_divergence(expect: &Env, got: &Env) -> Option<(String, String)> {
    for (name, va) in expect {
        let Some(vb) = got.get(name) else {
            return Some((name.clone(), "missing from output".into()));
        };
        match (va, vb) {
            (Value::F32(x), Value::F32(y)) => {
                if x.shape() != y.shape() {
                    return Some((
                        name.clone(),
                        format!("shape {:?} vs {:?}", x.shape(), y.shape()),
                    ));
                }
                for (i, (p, q)) in x.data().iter().zip(y.data()).enumerate() {
                    if p.to_bits() != q.to_bits() {
                        return Some((
                            name.clone(),
                            format!("bits differ at flat index {i}: {p} vs {q}"),
                        ));
                    }
                }
            }
            (va, vb) => {
                if va != vb {
                    return Some((name.clone(), "non-f32 outputs differ".into()));
                }
            }
        }
    }
    None
}

/// The SimdF32 backend's whole point of discipline: lane-unrolled, never
/// reassociated, so a full model run is *bit-identical* to ScalarF32 —
/// every Gemm/MatMul/Conv through the f32x8 microkernels included. This is
/// the end-to-end statement of the kernel-level proptests, and the reason
/// the 6-executor differential suite needs no SimdF32 variant.
#[test]
fn simd_backend_is_bit_identical_to_scalar_on_all_models() {
    let cfg = ModelConfig::tiny();
    let sctx = ExecCtx::sequential();
    let vctx = sctx.with_backend(KernelBackend::SimdF32);
    for kind in ModelKind::all() {
        let model = kind.name();
        let g = build(kind, &cfg);
        let inputs = synth_inputs(&g, 23);
        let scalar = run_sequential(&g, &inputs, &sctx).unwrap();
        let simd = run_sequential(&g, &inputs, &vctx).unwrap();
        if let Some((tensor, why)) = first_bit_divergence(&scalar, &simd) {
            panic!("{model}: SimdF32 not bit-identical to ScalarF32: `{tensor}`: {why}");
        }
    }
}

/// QuantI8 sequential tracks f32 sequential within the range-relative
/// budget, on every built-in model generator.
#[test]
fn quant_backend_tracks_f32_on_all_models() {
    let cfg = ModelConfig::tiny();
    let fctx = ExecCtx::sequential();
    let qctx = fctx.with_backend(KernelBackend::QuantI8);
    for kind in ModelKind::all() {
        let model = kind.name();
        let g = build(kind, &cfg);
        for seed in [11u64, 92] {
            let inputs = synth_inputs(&g, seed);
            let f32_out = run_sequential(&g, &inputs, &fctx)
                .unwrap_or_else(|e| panic!("{model}: f32 sequential: {e}"));
            let q_out = run_sequential(&g, &inputs, &qctx)
                .unwrap_or_else(|e| panic!("{model}: quant sequential: {e}"));
            if let Some((tensor, why)) = range_divergence(&f32_out, &q_out) {
                panic!(
                    "{model} (seed {seed}): QuantI8 drifted beyond the quantization \
                     budget from f32: first diverging tensor `{tensor}`: {why}"
                );
            }
        }
    }
}

/// Every executor running QuantI8 is bit-identical to QuantI8 sequential:
/// i32 accumulation is exact, so executors have no reassociation latitude.
#[test]
fn quant_backend_is_bit_identical_across_executors() {
    let cfg = ModelConfig::tiny();
    let qctx = ExecCtx::sequential().with_backend(KernelBackend::QuantI8);
    for kind in ModelKind::all() {
        let model = kind.name();
        let g = build(kind, &cfg);
        let clustering = cluster_graph(&g, &StaticCost);
        let inputs: Vec<Env> = (0..3)
            .map(|b| synth_inputs(&g, 53 * b as u64 + 29))
            .collect();
        let baseline: Vec<Env> = inputs
            .iter()
            .map(|inp| {
                run_sequential(&g, inp, &qctx)
                    .unwrap_or_else(|e| panic!("{model}: quant sequential: {e}"))
            })
            .collect();

        let mut pool = ClusterPool::new(&g, &clustering, &qctx).unwrap();
        for (b, inp) in inputs.iter().enumerate() {
            let par = run_parallel(&g, &clustering, inp, &qctx).unwrap();
            let pooled = pool.run(inp).unwrap();
            let stolen = run_stealing(&g, &clustering, inp, &qctx).unwrap();
            for (label, out) in [("parallel", &par), ("pool", &pooled), ("stealing", &stolen)] {
                if let Some((tensor, why)) = first_bit_divergence(&baseline[b], out) {
                    panic!(
                        "{model}: QuantI8 `{label}` not bit-identical on element {b}: \
                         `{tensor}`: {why}"
                    );
                }
            }
        }
        for (label, hc) in [
            ("hyper", hypercluster(&clustering, inputs.len())),
            (
                "hyper-switched",
                switched_hypercluster(&clustering, inputs.len()),
            ),
        ] {
            let outs = run_hyper(&g, &hc, &inputs, &qctx).unwrap();
            for (b, out) in outs.iter().enumerate() {
                if let Some((tensor, why)) = first_bit_divergence(&baseline[b], out) {
                    panic!(
                        "{model}: QuantI8 `{label}` not bit-identical on element {b}: \
                         `{tensor}`: {why}"
                    );
                }
            }
            let outs = run_hyper_stealing(&g, &hc, &inputs, &qctx).unwrap();
            for (b, out) in outs.iter().enumerate() {
                if let Some((tensor, why)) = first_bit_divergence(&baseline[b], out) {
                    panic!(
                        "{model}: QuantI8 `{label}-stealing` not bit-identical on element \
                         {b}: `{tensor}`: {why}"
                    );
                }
            }
        }
    }
}

/// The `--backend` surface on `RunOptions` reaches the same kernels: a
/// plain f32 context plus `RunOptions::default().backend(QuantI8)` must
/// match a QuantI8 context bit-for-bit.
#[test]
fn run_options_backend_override_matches_quant_ctx() {
    use ramiel_runtime::{run_sequential_opts, RunOptions};
    let cfg = ModelConfig::tiny();
    let fctx = ExecCtx::sequential();
    let qctx = fctx.with_backend(KernelBackend::QuantI8);
    let g = build(ModelKind::Bert, &cfg);
    let inputs = synth_inputs(&g, 77);
    let via_ctx = run_sequential(&g, &inputs, &qctx).unwrap();
    let opts = RunOptions::default().backend(KernelBackend::QuantI8);
    let via_opts = run_sequential_opts(&g, &inputs, &fctx, &opts).unwrap();
    if let Some((tensor, why)) = first_bit_divergence(&via_ctx, &via_opts) {
        panic!("RunOptions backend override diverged from quant ctx: `{tensor}`: {why}");
    }
}
