//! Cross-executor differential conformance suite.
//!
//! Every executor the runtime offers — reference sequential, one-thread-
//! per-cluster parallel, the standing [`ClusterPool`], the hyperclustered
//! batch executor (plain and switched), and the work-stealing pool — must
//! compute the same function, on every built-in model generator, at batch 1
//! and batch 4. Divergence messages name the model, the executor, the batch
//! element, and the *first diverging tensor* with its worst elementwise
//! error, so a regression is attributable from the assert text alone.

use ramiel_cluster::{cluster_graph, hypercluster, switched_hypercluster, StaticCost};
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_runtime::{
    run_hyper, run_hyper_stealing, run_parallel, run_sequential, run_stealing, synth_inputs,
    ClusterPool, Env,
};
use ramiel_tensor::{ExecCtx, Value};

/// Relative/absolute tolerance for f32 outputs: parallel execution may
/// reassociate reductions, so exact equality is too strict in general.
const TOL: f32 = 1e-4;

/// First output tensor (in name order — `Env` is a BTreeMap) that diverges
/// beyond tolerance, with a human-readable reason.
fn first_divergence(expect: &Env, got: &Env) -> Option<(String, String)> {
    for (name, va) in expect {
        let Some(vb) = got.get(name) else {
            return Some((name.clone(), "missing from output".into()));
        };
        match (va, vb) {
            (Value::F32(x), Value::F32(y)) => {
                if x.shape() != y.shape() {
                    return Some((
                        name.clone(),
                        format!("shape {:?} vs {:?}", x.shape(), y.shape()),
                    ));
                }
                let mut worst = 0f32;
                let mut worst_at = 0usize;
                for (i, (p, q)) in x.data().iter().zip(y.data()).enumerate() {
                    if p.is_nan() && q.is_nan() {
                        continue;
                    }
                    let err = (p - q).abs() / p.abs().max(1.0);
                    if err > worst {
                        worst = err;
                        worst_at = i;
                    }
                }
                if worst > TOL {
                    return Some((
                        name.clone(),
                        format!(
                            "worst rel err {worst:.3e} at flat index {worst_at} \
                             ({} vs {})",
                            x.data()[worst_at],
                            y.data()[worst_at]
                        ),
                    ));
                }
            }
            (va, vb) => {
                if va != vb {
                    return Some((name.clone(), "non-f32 outputs differ exactly".into()));
                }
            }
        }
    }
    if got.len() != expect.len() {
        return Some(("<extra>".into(), "executor produced extra outputs".into()));
    }
    None
}

fn assert_conforms(expect: &Env, got: &Env, model: &str, executor: &str, batch_elem: usize) {
    if let Some((tensor, why)) = first_divergence(expect, got) {
        panic!(
            "{model}: executor `{executor}` diverged from sequential on batch \
             element {batch_elem}: first diverging tensor `{tensor}`: {why}"
        );
    }
}

/// The full matrix: 8 generators × batch {1, 4} × every executor.
#[test]
fn all_executors_conform_on_all_models() {
    let cfg = ModelConfig::tiny();
    let ctx = ExecCtx::sequential();
    for kind in ModelKind::all() {
        let model = kind.name();
        let g = build(kind, &cfg);
        let clustering = cluster_graph(&g, &StaticCost);
        let mut pool = ClusterPool::new(&g, &clustering, &ctx)
            .unwrap_or_else(|e| panic!("{model}: pool setup: {e}"));
        for batch in [1usize, 4] {
            let inputs: Vec<Env> = (0..batch)
                .map(|b| synth_inputs(&g, 1000 * b as u64 + 17))
                .collect();
            let baseline: Vec<Env> = inputs
                .iter()
                .map(|inp| {
                    run_sequential(&g, inp, &ctx)
                        .unwrap_or_else(|e| panic!("{model}: sequential: {e}"))
                })
                .collect();

            // per-element executors
            for (b, inp) in inputs.iter().enumerate() {
                let par = run_parallel(&g, &clustering, inp, &ctx)
                    .unwrap_or_else(|e| panic!("{model}: parallel b{batch}: {e}"));
                assert_conforms(&baseline[b], &par, model, "parallel", b);
                let pooled = pool
                    .run(inp)
                    .unwrap_or_else(|e| panic!("{model}: pool b{batch}: {e}"));
                assert_conforms(&baseline[b], &pooled, model, "pool", b);
                let stolen = run_stealing(&g, &clustering, inp, &ctx)
                    .unwrap_or_else(|e| panic!("{model}: stealing b{batch}: {e}"));
                assert_conforms(&baseline[b], &stolen, model, "stealing", b);
            }

            // whole-batch executors
            for (label, hc) in [
                ("hyper", hypercluster(&clustering, batch)),
                ("hyper-switched", switched_hypercluster(&clustering, batch)),
            ] {
                let outs = run_hyper(&g, &hc, &inputs, &ctx)
                    .unwrap_or_else(|e| panic!("{model}: {label} b{batch}: {e}"));
                assert_eq!(outs.len(), batch, "{model}: {label} output count");
                for (b, out) in outs.iter().enumerate() {
                    assert_conforms(&baseline[b], out, model, label, b);
                }
                let outs = run_hyper_stealing(&g, &hc, &inputs, &ctx)
                    .unwrap_or_else(|e| panic!("{model}: {label}-stealing b{batch}: {e}"));
                assert_eq!(outs.len(), batch, "{model}: {label}-stealing output count");
                for (b, out) in outs.iter().enumerate() {
                    assert_conforms(&baseline[b], out, model, &format!("{label}-stealing"), b);
                }
            }
        }
    }
}

/// First `(tensor, index)` where two envs differ in their f32 *bit
/// patterns* (or any non-f32 value differs at all).
fn first_bit_divergence(expect: &Env, got: &Env) -> Option<(String, String)> {
    for (name, va) in expect {
        let Some(vb) = got.get(name) else {
            return Some((name.clone(), "missing from output".into()));
        };
        match (va, vb) {
            (Value::F32(x), Value::F32(y)) => {
                if x.shape() != y.shape() {
                    return Some((
                        name.clone(),
                        format!("shape {:?} vs {:?}", x.shape(), y.shape()),
                    ));
                }
                for (i, (p, q)) in x.data().iter().zip(y.data()).enumerate() {
                    if p.to_bits() != q.to_bits() {
                        return Some((
                            name.clone(),
                            format!("bits differ at flat index {i}: {p} vs {q}"),
                        ));
                    }
                }
            }
            (va, vb) => {
                if va != vb {
                    return Some((name.clone(), "non-f32 outputs differ".into()));
                }
            }
        }
    }
    None
}

/// Stronger than tolerance conformance: with a shared kernel context, every
/// executor must produce *bit-identical* outputs. The transports move the
/// same Arc-shared buffers through the same kernels, and every `mm` path
/// (sequential blocked, row-block parallel, column-tile parallel) accumulates
/// each output element in the same ascending-k order — so there is no
/// legitimate source of even a 1-ulp difference between executors. Any bit
/// that flips here means an executor copied, truncated, or reassociated
/// something it shouldn't have.
#[test]
fn executors_are_bit_identical_with_shared_kernels() {
    let cfg = ModelConfig::tiny();
    let ctx = ExecCtx::sequential();
    for kind in ModelKind::all() {
        let model = kind.name();
        let g = build(kind, &cfg);
        let clustering = cluster_graph(&g, &StaticCost);
        let inputs: Vec<Env> = (0..3)
            .map(|b| synth_inputs(&g, 31 * b as u64 + 7))
            .collect();
        let baseline: Vec<Env> = inputs
            .iter()
            .map(|inp| run_sequential(&g, inp, &ctx).unwrap())
            .collect();

        let mut pool = ClusterPool::new(&g, &clustering, &ctx).unwrap();
        for (b, inp) in inputs.iter().enumerate() {
            let par = run_parallel(&g, &clustering, inp, &ctx).unwrap();
            let pooled = pool.run(inp).unwrap();
            let stolen = run_stealing(&g, &clustering, inp, &ctx).unwrap();
            for (label, out) in [("parallel", &par), ("pool", &pooled), ("stealing", &stolen)] {
                if let Some((tensor, why)) = first_bit_divergence(&baseline[b], out) {
                    panic!(
                        "{model}: `{label}` not bit-identical on element {b}: `{tensor}`: {why}"
                    );
                }
            }
        }
        for (label, hc) in [
            ("hyper", hypercluster(&clustering, inputs.len())),
            (
                "hyper-switched",
                switched_hypercluster(&clustering, inputs.len()),
            ),
        ] {
            let outs = run_hyper(&g, &hc, &inputs, &ctx).unwrap();
            for (b, out) in outs.iter().enumerate() {
                if let Some((tensor, why)) = first_bit_divergence(&baseline[b], out) {
                    panic!(
                        "{model}: `{label}` not bit-identical on element {b}: `{tensor}`: {why}"
                    );
                }
            }
            let outs = run_hyper_stealing(&g, &hc, &inputs, &ctx).unwrap();
            for (b, out) in outs.iter().enumerate() {
                if let Some((tensor, why)) = first_bit_divergence(&baseline[b], out) {
                    panic!(
                        "{model}: `{label}-stealing` not bit-identical on element {b}: \
                         `{tensor}`: {why}"
                    );
                }
            }
        }
    }
}

/// Executors must also agree on *failure*: a graph with a runtime data error
/// fails on every executor with the same stable error code.
#[test]
fn executors_agree_on_kernel_failures() {
    use ramiel_ir::{DType, GraphBuilder, OpKind, TensorData};
    let mut b = GraphBuilder::new("bad-gather");
    let x = b.input("x", DType::F32, vec![2, 2]);
    let idx = b.init("idx", TensorData::vec_i64(vec![9])); // out of range
    let y = b.op("g", OpKind::Gather { axis: 0 }, vec![x, idx]);
    b.output(&y);
    let g = b.finish().unwrap();
    let clustering = cluster_graph(&g, &StaticCost);
    let ctx = ExecCtx::sequential();
    let inputs = synth_inputs(&g, 5);

    let seq = run_sequential(&g, &inputs, &ctx).unwrap_err();
    let par = run_parallel(&g, &clustering, &inputs, &ctx).unwrap_err();
    let mut pool = ClusterPool::new(&g, &clustering, &ctx).unwrap();
    let pooled = pool.run(&inputs).unwrap_err();
    let hc = hypercluster(&clustering, 2);
    let hyper = run_hyper(&g, &hc, &[inputs.clone(), inputs.clone()], &ctx).unwrap_err();
    let stolen = run_stealing(&g, &clustering, &inputs, &ctx).unwrap_err();

    for (label, err) in [
        ("sequential", &seq),
        ("parallel", &par),
        ("pool", &pooled),
        ("hyper", &hyper),
        ("stealing", &stolen),
    ] {
        assert_eq!(err.code(), "RT-KERNEL", "{label}: {err}");
        assert!(
            err.to_string().contains("out of range"),
            "{label} should carry the kernel message: {err}"
        );
    }
}
