//! Qualitative reproduction of the paper's headline claims, checked against
//! the deterministic simulator so they hold on any machine.
//!
//! Absolute numbers differ from the paper's Xeon + PyTorch testbed; these
//! tests pin the *shape* of every result: who wins, roughly by how much,
//! and where the crossovers are.

use ramiel::{compile, PipelineOptions};
use ramiel_cluster::{parallelism_report, StaticCost};
use ramiel_ios::{ios_makespan, ios_schedule, IosConfig};
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_passes::CloneConfig;
use ramiel_runtime::{simulate_clustering, simulate_hyper, simulate_sequential, SimConfig};
use std::time::Instant;

/// Simulator knobs used for calibration: comm latency 8 models the paper's
/// expensive Python-process queues relative to small ops.
fn sim_cfg() -> SimConfig {
    SimConfig {
        comm_latency: 8,
        dispatch_overhead: 0,
    }
}

fn sim_speedup(c: &ramiel::CompiledModel) -> f64 {
    let sim =
        simulate_clustering(&c.graph, &c.clustering, &StaticCost, &sim_cfg()).expect("simulation");
    simulate_sequential(&c.graph, &StaticCost, 1) as f64 / sim.makespan as f64
}

/// Speedup against a fixed (unoptimized-graph) sequential baseline, the way
/// Tables VI/VII compare optimization variants.
fn sim_speedup_vs(c: &ramiel::CompiledModel, baseline: u64) -> f64 {
    let sim =
        simulate_clustering(&c.graph, &c.clustering, &StaticCost, &sim_cfg()).expect("simulation");
    baseline as f64 / sim.makespan as f64
}

/// Table I: SqueezeNet's potential parallelism is the lowest (< 1), NASNet's
/// the highest (≫ others).
#[test]
fn table1_parallelism_ordering() {
    let cfg = ModelConfig::full();
    let get = |k: ModelKind| parallelism_report(&build(k, &cfg), &StaticCost).parallelism;
    let squeeze = get(ModelKind::Squeezenet);
    let nasnet = get(ModelKind::NasNet);
    let google = get(ModelKind::Googlenet);
    let inception3 = get(ModelKind::InceptionV3);
    let yolo = get(ModelKind::YoloV5);

    assert!(
        squeeze < 1.0,
        "SqueezeNet must be < 1x (paper: 0.86x), got {squeeze:.2}"
    );
    assert!(
        nasnet > 2.0,
        "NASNet must dominate (paper: 3.7x), got {nasnet:.2}"
    );
    assert!(nasnet > google && nasnet > inception3 && nasnet > yolo);
    assert!(
        google > 1.0 && inception3 > 1.0,
        "GoogleNet/Inception ≈ 1.3–1.4x"
    );
    assert!(squeeze < google && squeeze < inception3 && squeeze < nasnet);
}

/// Table IV: simulated LC speedup correlates with the potential-parallelism
/// factor — SqueezeNet does not benefit, NASNet benefits the most.
#[test]
fn table4_lc_speedup_shape() {
    let cfg = ModelConfig::full();
    let sp =
        |k: ModelKind| sim_speedup(&compile(build(k, &cfg), &PipelineOptions::default()).unwrap());
    let squeeze = sp(ModelKind::Squeezenet);
    let inception4 = sp(ModelKind::InceptionV4);
    let nasnet = sp(ModelKind::NasNet);

    assert!(
        squeeze < 1.0,
        "SqueezeNet must lose, as in the paper (0.83x), got {squeeze:.2}"
    );
    assert!(
        inception4 > 1.1,
        "Inception V4 gains (paper 1.44x), got {inception4:.2}"
    );
    assert!(
        nasnet > inception4,
        "NASNet leads (paper 1.7x): {nasnet:.2} vs {inception4:.2}"
    );
    assert!(nasnet > 1.3);
}

/// Table VI: CP+DCE improves YOLO, BERT and NASNet — the three models whose
/// exports carry constant shape chains.
#[test]
fn table6_pruning_helps_the_three_prunable_models() {
    let cfg = ModelConfig::full();
    for kind in [ModelKind::YoloV5, ModelKind::Bert, ModelKind::NasNet] {
        let plain = compile(build(kind, &cfg), &PipelineOptions::default()).unwrap();
        let pruned = compile(
            build(kind, &cfg),
            &PipelineOptions {
                prune: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            pruned.graph.num_nodes() < plain.graph.num_nodes(),
            "{}: pruning must remove nodes",
            kind.name()
        );
        let baseline = simulate_sequential(&plain.graph, &StaticCost, 1);
        let s_lc = sim_speedup_vs(&plain, baseline);
        let s_dce = sim_speedup_vs(&pruned, baseline);
        assert!(
            s_dce >= s_lc,
            "{}: S_LC+DCE ({s_dce:.3}) must improve on S_LC ({s_lc:.3})",
            kind.name()
        );
    }
    // and it does nothing for constant-free models (Table VI omits them)
    for kind in [ModelKind::Squeezenet, ModelKind::Googlenet] {
        let plain = compile(build(kind, &cfg), &PipelineOptions::default()).unwrap();
        let pruned = compile(
            build(kind, &cfg),
            &PipelineOptions {
                prune: true,
                ..Default::default()
            },
        )
        .unwrap();
        // only pass-throughs (the exported Dropout) may disappear — there
        // are no constant subgraphs to fold
        assert!(
            plain.graph.num_nodes() - pruned.graph.num_nodes() <= 2,
            "{}: no constants to fold ({} -> {})",
            kind.name(),
            plain.graph.num_nodes(),
            pruned.graph.num_nodes()
        );
    }
}

/// Fig. 12 / Table VII: cloning improves (or at worst preserves) the
/// simulated makespan of the vision models — the paper reports single-digit
/// percent uplifts, with SqueezeNet gaining the most.
#[test]
fn fig12_cloning_improves_vision_models() {
    let cfg = ModelConfig::full();
    let mut squeeze_uplift = 0.0;
    for kind in [
        ModelKind::Squeezenet,
        ModelKind::Googlenet,
        ModelKind::InceptionV3,
        ModelKind::InceptionV4,
    ] {
        let plain = compile(build(kind, &cfg), &PipelineOptions::default()).unwrap();
        let baseline = simulate_sequential(&plain.graph, &StaticCost, 1);
        let cloned = compile(
            build(kind, &cfg),
            &PipelineOptions {
                cloning: Some(CloneConfig::default()),
                ..Default::default()
            },
        )
        .unwrap();
        let (p, c) = (
            sim_speedup_vs(&plain, baseline),
            sim_speedup_vs(&cloned, baseline),
        );
        assert!(
            c >= p * 0.999,
            "{}: cloning must not regress ({c:.3} vs {p:.3})",
            kind.name()
        );
        if kind == ModelKind::Squeezenet {
            squeeze_uplift = c / p - 1.0;
        }
    }
    assert!(
        squeeze_uplift > 0.03,
        "SqueezeNet should gain several percent from cloning (paper: ~14%), got {:.1}%",
        100.0 * squeeze_uplift
    );
}

/// Fig. 13: hyperclustering amortizes slack — per-sample simulated makespan
/// improves as the batch grows.
#[test]
fn fig13_hypercluster_speedup_grows_with_batch() {
    let cfg = ModelConfig::full();
    let c = compile(
        build(ModelKind::Googlenet, &cfg),
        &PipelineOptions::default(),
    )
    .unwrap();
    let seq1 = simulate_sequential(&c.graph, &StaticCost, 1) as f64;
    let mut last_per_sample = f64::MAX;
    for batch in [1usize, 2, 4, 8] {
        let hc = ramiel_cluster::hypercluster(&c.clustering, batch);
        let sim = simulate_hyper(&c.graph, &hc, &StaticCost, &SimConfig::default()).unwrap();
        let per_sample = sim.makespan as f64 / batch as f64;
        assert!(
            per_sample <= last_per_sample * 1.02,
            "batch {batch}: per-sample makespan should not grow ({per_sample:.1} vs {last_per_sample:.1})"
        );
        last_per_sample = per_sample;
    }
    // and batching beats running the batch sequentially
    assert!(last_per_sample < seq1);
}

/// Fig. 14: switched hyperclustering balances load at least as well as the
/// plain variant on SqueezeNet.
#[test]
fn fig14_switched_balances_squeezenet() {
    let cfg = ModelConfig::full();
    let c = compile(
        build(ModelKind::Squeezenet, &cfg),
        &PipelineOptions::default(),
    )
    .unwrap();
    let costs: Vec<u64> = c
        .graph
        .nodes
        .iter()
        .map(|n| ramiel_cluster::cost::CostModel::node_cost(&StaticCost, &c.graph, n))
        .collect();
    for batch in [2usize, 3, 4] {
        let plain = ramiel_cluster::hypercluster(&c.clustering, batch);
        let switched = ramiel_cluster::switched_hypercluster(&c.clustering, batch);
        assert!(
            switched.load_imbalance(&costs) <= plain.load_imbalance(&costs) + 1e-9,
            "batch {batch}: switched must balance at least as well"
        );
    }
}

/// Table VIII: Ramiel's compile time is orders of magnitude below the IOS
/// DP, while LC+opts reaches comparable simulated speedups.
#[test]
fn table8_compile_time_gap_vs_ios() {
    let cfg = ModelConfig::full();
    for kind in [
        ModelKind::Squeezenet,
        ModelKind::InceptionV3,
        ModelKind::NasNet,
    ] {
        let g = build(kind, &cfg);

        // Min-of-3 for our side: on a loaded host a single scheduler
        // hiccup can inflate one ~100ms compile past the IOS DP and flake
        // the comparison; the minimum is the noise-robust reading. The IOS
        // side stays a single run — noise only inflates it, which makes
        // the inequality *harder* to pass, never a false pass.
        let mut ramiel_ct = std::time::Duration::MAX;
        let mut compiled = None;
        for _ in 0..3 {
            let t = Instant::now();
            let c = compile(g.clone(), &PipelineOptions::all_optimizations()).unwrap();
            ramiel_ct = ramiel_ct.min(t.elapsed());
            compiled = Some(c);
        }
        let c = compiled.unwrap();

        let (sched, stats) = ios_schedule(&g, &StaticCost, &IosConfig::default());
        // The compile-time gap grows with graph size (ours linear, IOS's DP
        // super-linear). SqueezeNet is too small for wall-clock to separate;
        // the state-count evidence covers it.
        if kind != ModelKind::Squeezenet {
            assert!(
                stats.compile_time > ramiel_ct,
                "{}: IOS ({:?}) must exceed Ramiel ({:?})",
                kind.name(),
                stats.compile_time,
                ramiel_ct
            );
        }
        assert!(
            stats.dp_states > g.num_nodes(),
            "{}: the DP must explore far more states than LC touches nodes",
            kind.name()
        );

        // speedups comparable: Ramiel within 2x of IOS's simulated speedup
        let seq = simulate_sequential(&c.graph, &StaticCost, 1) as f64;
        let ours = sim_speedup(&c);
        let ios_mk = ios_makespan(&g, &sched, &StaticCost, &IosConfig::default()) as f64;
        let ios_sp = simulate_sequential(&g, &StaticCost, 1) as f64 / ios_mk;
        assert!(
            ours > ios_sp * 0.5,
            "{}: ours {ours:.2} vs IOS {ios_sp:.2} (seq {seq:.0})",
            kind.name()
        );
    }
}
