//! Scheduling-conformance harness for the work-stealing executor.
//!
//! Work stealing is the first executor whose schedule is *not statically
//! replayable*: which worker runs which node, and in what order, is decided
//! at runtime by readiness, steal order, and OS scheduling. That means the
//! usual "replay the schedule and compare" verification story does not
//! apply — the conformance argument is instead *adversarial sampling*: a
//! seeded [`StealChaos`] adversary perturbs the schedule (per-task stalls,
//! ready-successor rotation, forced diversions to the global injector) and
//! every sampled interleaving must
//!
//! 1. produce outputs **bit-identical** to the reference sequential
//!    executor (same kernels, same `Arc`-shared buffers → zero legitimate
//!    ulp drift), and
//! 2. **terminate** (the run returning at all is the liveness assertion:
//!    every deque drained, no lost wakeup, caller not parked forever —
//!    runaway cases are cut off by the executor's own recv-timeout
//!    deadline, which would surface as an `Err`, failing the test).
//!
//! The vendored proptest RNG is seeded from the test name, so a CI run
//! samples a fixed, reproducible set of interleaving seeds. The sample
//! *budget* is environment-tunable: `RAMIEL_CONFORMANCE_CASES` (default
//! 250 cases; each case drives every model in the matrix, so the default
//! is ≥1000 seeded interleavings across 4 models) — CI pins a bounded
//! budget, local soak runs can raise it arbitrarily.

use proptest::prelude::*;
use ramiel_cluster::{cluster_graph, switched_hypercluster, Clustering, StaticCost};
use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_runtime::{
    run_sequential, synth_inputs, Env, RunOptions, StealChaos, StealPlan, StealPool,
};
use ramiel_tensor::{ExecCtx, Value};
use std::sync::{Arc, OnceLock};

/// Adversary sample budget. Each case exercises every model in
/// [`matrix`], so total interleavings = cases × models.
fn cases() -> u32 {
    std::env::var("RAMIEL_CONFORMANCE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250)
}

/// The model matrix: four structurally distinct graphs (fire modules,
/// inception branches, transformer blocks, detection head skip paths).
const MATRIX: [ModelKind; 4] = [
    ModelKind::Squeezenet,
    ModelKind::Googlenet,
    ModelKind::Bert,
    ModelKind::YoloV5,
];

struct Fixture {
    name: &'static str,
    graph: ramiel_ir::Graph,
    clustering: Clustering,
    /// Reusable batch-1 plan (also pins plan reuse across thousands of
    /// runs: a stale slot or counter would corrupt run N+1).
    plan: Arc<StealPlan>,
    /// Batch-3 plan from the switched hyperclustering.
    plan3: Arc<StealPlan>,
    inputs: Env,
    batch3: Vec<Env>,
    baseline: Env,
    baseline3: Vec<Env>,
}

/// Compile + baseline each model once; every proptest case reuses them.
fn matrix() -> &'static Vec<Fixture> {
    static FIXTURES: OnceLock<Vec<Fixture>> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let cfg = ModelConfig::tiny();
        let ctx = ExecCtx::sequential();
        MATRIX
            .iter()
            .map(|&kind| {
                let graph = build(kind, &cfg);
                let clustering = cluster_graph(&graph, &StaticCost);
                let plan = Arc::new(StealPlan::new(&graph, &clustering, 1).unwrap());
                let hc = switched_hypercluster(&clustering, 3);
                let plan3 = Arc::new(StealPlan::from_hyper(&graph, &hc).unwrap());
                let inputs = synth_inputs(&graph, 42);
                let batch3: Vec<Env> = (0..3)
                    .map(|b| synth_inputs(&graph, 42 + b as u64))
                    .collect();
                let baseline = run_sequential(&graph, &inputs, &ctx).unwrap();
                let baseline3 = batch3
                    .iter()
                    .map(|inp| run_sequential(&graph, inp, &ctx).unwrap())
                    .collect();
                Fixture {
                    name: kind.name(),
                    graph,
                    clustering,
                    plan,
                    plan3,
                    inputs,
                    batch3,
                    baseline,
                    baseline3,
                }
            })
            .collect()
    })
}

/// First `(tensor, index)` where two envs differ in f32 bit patterns (or
/// any non-f32 value differs at all).
fn first_bit_divergence(expect: &Env, got: &Env) -> Option<(String, String)> {
    for (name, va) in expect {
        let Some(vb) = got.get(name) else {
            return Some((name.clone(), "missing from output".into()));
        };
        match (va, vb) {
            (Value::F32(x), Value::F32(y)) => {
                if x.shape() != y.shape() {
                    return Some((
                        name.clone(),
                        format!("shape {:?} vs {:?}", x.shape(), y.shape()),
                    ));
                }
                for (i, (p, q)) in x.data().iter().zip(y.data()).enumerate() {
                    if p.to_bits() != q.to_bits() {
                        return Some((
                            name.clone(),
                            format!("bits differ at flat index {i}: {p} vs {q}"),
                        ));
                    }
                }
            }
            (va, vb) => {
                if va != vb {
                    return Some((name.clone(), "non-f32 outputs differ".into()));
                }
            }
        }
    }
    if got.len() != expect.len() {
        return Some(("<extra>".into(), "extra outputs".into()));
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// The tentpole property: for ANY chaos seed and stall budget, every
    /// model's work-stealing run terminates and is bit-identical to
    /// sequential — at batch 1 on the reusable plan and at batch 3 on the
    /// hyperclustered plan.
    #[test]
    fn chaotic_interleavings_are_bit_identical_and_live(
        seed in any::<u64>(),
        stall_us in 0u64..200,
    ) {
        let ctx = ExecCtx::sequential();
        let opts = RunOptions::default().steal_chaos(StealChaos {
            seed,
            max_stall_us: stall_us,
        });
        let pool = StealPool::global();
        for fx in matrix() {
            let outs = pool
                .run_plan(&fx.plan, std::slice::from_ref(&fx.inputs), &ctx, &opts)
                .unwrap_or_else(|e| panic!("{}: seed {seed}: stealing failed: {e}", fx.name));
            if let Some((tensor, why)) = first_bit_divergence(&fx.baseline, &outs[0]) {
                panic!(
                    "{}: seed {seed} stall {stall_us}us: batch-1 output `{tensor}` \
                     diverged: {why}",
                    fx.name
                );
            }
        }
        // One model per case at batch 3 keeps the batched path under the
        // same adversary without tripling the budget.
        let fx = &matrix()[(seed % MATRIX.len() as u64) as usize];
        let outs = pool
            .run_plan(&fx.plan3, &fx.batch3, &ctx, &opts)
            .unwrap_or_else(|e| panic!("{}: seed {seed}: batch-3 stealing failed: {e}", fx.name));
        for (b, out) in outs.iter().enumerate() {
            if let Some((tensor, why)) = first_bit_divergence(&fx.baseline3[b], out) {
                panic!(
                    "{}: seed {seed} stall {stall_us}us: batch-3 element {b} output \
                     `{tensor}` diverged: {why}",
                    fx.name
                );
            }
        }
    }

    /// Steal-order permutations alone (zero stall budget — pure divert/
    /// rotate adversary) on freshly planned graphs: planning is itself
    /// deterministic and the executor conforms without any timing skew.
    #[test]
    fn pure_permutation_adversary_conforms(seed in any::<u64>()) {
        let ctx = ExecCtx::sequential();
        let opts = RunOptions::default().steal_chaos(StealChaos { seed, max_stall_us: 0 });
        let pool = StealPool::global();
        let fx = &matrix()[(seed % MATRIX.len() as u64) as usize];
        let plan = Arc::new(StealPlan::new(&fx.graph, &fx.clustering, 1).unwrap());
        let outs = pool
            .run_plan(&plan, std::slice::from_ref(&fx.inputs), &ctx, &opts)
            .unwrap_or_else(|e| panic!("{}: seed {seed}: stealing failed: {e}", fx.name));
        if let Some((tensor, why)) = first_bit_divergence(&fx.baseline, &outs[0]) {
            panic!("{}: seed {seed}: output `{tensor}` diverged: {why}", fx.name);
        }
    }
}

/// The budget arithmetic the acceptance criterion counts on: the default
/// case budget times the model matrix is at least 1000 interleavings.
#[test]
fn default_budget_covers_a_thousand_interleavings() {
    assert!(MATRIX.len() >= 4);
    assert!(
        cases() as usize * MATRIX.len() >= 1000,
        "conformance budget shrank below the acceptance floor: {} cases x {} models",
        cases(),
        MATRIX.len()
    );
}
