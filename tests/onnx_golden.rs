//! Golden `.onnx` fixture tests: checked-in binary files that must keep
//! importing to exactly the graphs the in-repo builders produce, plus
//! truncation/corruption sweeps asserting the importer's `ONNX-*` error
//! contract (structured errors, never panics, never a silently wrong graph).
//!
//! Regenerate the fixtures after an intentional exporter format change with
//! `cargo test --test onnx_golden regen_fixtures -- --ignored` and commit
//! the new bytes.

use ramiel_models::{build, ModelConfig, ModelKind};
use ramiel_onnx::proto::{data_type, GraphProto, ModelProto, NodeProto, ValueInfoProto};
use ramiel_onnx::{import_model, OnnxError};
use std::path::PathBuf;

/// `(fixture file, builder)` pairs covered by the golden checks.
const FIXTURES: &[(&str, ModelKind)] = &[
    ("squeezenet_tiny.onnx", ModelKind::Squeezenet),
    ("bert_tiny.onnx", ModelKind::Bert),
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

fn read_fixture(name: &str) -> Vec<u8> {
    let path = fixture_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run regen_fixtures",
            path.display()
        )
    })
}

/// Writes the golden files. `#[ignore]`d: fixtures are checked in, and this
/// only needs to run when the export format intentionally changes.
#[test]
#[ignore]
fn regen_fixtures() {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for &(file, kind) in FIXTURES {
        let bytes = ramiel_onnx::export_model(&build(kind, &ModelConfig::tiny()));
        std::fs::write(dir.join(file), &bytes).unwrap();
        println!("wrote {file} ({} bytes)", bytes.len());
    }
    // A deliberately clipped copy — half a model, for the wire-error gate.
    let whole = std::fs::read(dir.join(FIXTURES[0].0)).unwrap();
    std::fs::write(dir.join("truncated.onnx"), &whole[..whole.len() / 2]).unwrap();
}

#[test]
fn golden_fixtures_import_to_the_builder_graphs() {
    for &(file, kind) in FIXTURES {
        let imported = import_model(&read_fixture(file)).expect(file);
        let built = build(kind, &ModelConfig::tiny());
        assert_eq!(
            imported, built,
            "{file} no longer imports to build({kind:?}, tiny)"
        );
    }
}

#[test]
fn golden_fixture_executes_bit_identically_to_the_builder() {
    use ramiel_runtime::{run_sequential, synth_inputs};
    use ramiel_tensor::ExecCtx;
    let (file, kind) = FIXTURES[0];
    let imported = import_model(&read_fixture(file)).unwrap();
    let built = build(kind, &ModelConfig::tiny());
    let ctx = ExecCtx::sequential();
    let a = run_sequential(&imported, &synth_inputs(&imported, 7), &ctx).unwrap();
    let b = run_sequential(&built, &synth_inputs(&built, 7), &ctx).unwrap();
    assert_eq!(a, b);
}

#[test]
fn truncated_fixture_fails_with_a_wire_error() {
    let err = import_model(&read_fixture("truncated.onnx")).unwrap_err();
    assert_eq!(err.code(), "ONNX-WIRE", "got {err}");
    // The diagnostic must carry an offset a human can act on.
    assert!(err.to_string().contains("byte"), "no offset in: {err}");
}

/// Every truncation point yields a structured error — never a panic, and
/// never an `Ok` (a clipped model must not import as a smaller valid one).
#[test]
fn every_truncation_is_a_structured_error() {
    let bytes = read_fixture(FIXTURES[0].0);
    for cut in 0..bytes.len() {
        match import_model(&bytes[..cut]) {
            Ok(_) => panic!("truncation at {cut}/{} imported successfully", bytes.len()),
            Err(e) => assert!(
                e.to_string().starts_with("[ONNX-"),
                "uncoded error at cut {cut}: {e}"
            ),
        }
    }
}

/// Bit-flip sweep: corrupting any single byte either still imports (flips
/// inside weight payloads change values, not structure) or fails with a
/// coded error. The importer must never panic on hostile bytes.
#[test]
fn byte_corruption_never_panics_and_errors_are_coded() {
    let bytes = read_fixture(FIXTURES[0].0);
    let mut flipped_ok = 0usize;
    let mut flipped_err = 0usize;
    for i in 0..bytes.len() {
        let mut copy = bytes.clone();
        copy[i] ^= 0xff;
        match import_model(&copy) {
            Ok(_) => flipped_ok += 1,
            Err(e) => {
                assert!(
                    e.to_string().starts_with("[ONNX-"),
                    "uncoded error at byte {i}: {e}"
                );
                flipped_err += 1;
            }
        }
    }
    // Both outcomes must actually occur, or the sweep isn't exercising
    // anything: structure bytes must break, payload bytes must survive.
    assert!(flipped_err > 0, "no corruption was ever detected");
    assert!(
        flipped_ok > 0,
        "every flip errored — sweep covers no payload bytes"
    );
}

#[test]
fn unsupported_operator_is_named_in_the_error() {
    let model = ModelProto {
        ir_version: 8,
        opset_import: vec![(String::new(), 13)],
        graph: Some(GraphProto {
            name: "g".into(),
            input: vec![ValueInfoProto::tensor("x", data_type::FLOAT, &[1, 4])],
            output: vec![ValueInfoProto::tensor("y", data_type::FLOAT, &[1, 4])],
            node: vec![NodeProto {
                name: "weird_0".into(),
                op_type: "FancyCustomOp".into(),
                input: vec!["x".into()],
                output: vec!["y".into()],
                ..Default::default()
            }],
            ..Default::default()
        }),
        ..Default::default()
    };
    match import_model(&model.encode()) {
        Err(OnnxError::UnsupportedOp { op, node }) => {
            assert_eq!(op, "FancyCustomOp");
            assert_eq!(node, "weird_0");
        }
        other => panic!("expected ONNX-UNSUPPORTED-OP, got {other:?}"),
    }
}

#[test]
fn model_without_a_graph_is_an_onnx_model_error() {
    let model = ModelProto {
        ir_version: 8,
        ..Default::default()
    };
    let err = import_model(&model.encode()).unwrap_err();
    assert_eq!(err.code(), "ONNX-MODEL", "got {err}");
}

#[test]
fn symbolic_batch_dimension_is_an_onnx_shape_error() {
    use ramiel_onnx::proto::Dim;
    let mut input = ValueInfoProto::tensor("x", data_type::FLOAT, &[1, 4]);
    input.tensor_type = Some((
        data_type::FLOAT,
        vec![Dim::Param("batch".into()), Dim::Value(4)],
    ));
    let model = ModelProto {
        ir_version: 8,
        opset_import: vec![(String::new(), 13)],
        graph: Some(GraphProto {
            name: "g".into(),
            input: vec![input],
            output: vec![ValueInfoProto::tensor("y", data_type::FLOAT, &[1, 4])],
            node: vec![NodeProto {
                name: "relu_0".into(),
                op_type: "Relu".into(),
                input: vec!["x".into()],
                output: vec!["y".into()],
                ..Default::default()
            }],
            ..Default::default()
        }),
        ..Default::default()
    };
    let err = import_model(&model.encode()).unwrap_err();
    assert_eq!(err.code(), "ONNX-SHAPE", "got {err}");
    assert!(
        err.to_string().contains("batch"),
        "symbol name missing: {err}"
    );
}
