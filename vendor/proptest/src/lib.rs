//! Offline vendored proptest subset.
//!
//! Supports the surface this workspace's property tests use:
//! `proptest! { #![proptest_config(ProptestConfig::with_cases(n))] #[test]
//! fn prop(arg in strategy, ...) { ... } }`, integer range strategies,
//! `any::<T>()` for primitives, tuple strategies, `.prop_map`,
//! `prop::sample::select`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest: sampling is a deterministic
//! xorshift sequence seeded from the test name (fully reproducible runs),
//! and there is no shrinking — on failure the offending inputs are printed
//! verbatim before the panic is re-raised.

use std::ops::Range;

// ---- deterministic rng -----------------------------------------------------

pub struct TestRng(u64);

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name so each test gets its own stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        TestRng(h | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

// ---- strategies ------------------------------------------------------------

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // uniform in [start, end): u64 → [0, 1) keeps the
                // endpoints exact without bias worth caring about here
                let u = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// Types with a full-domain `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Boxing helper used by `prop_oneof!` so every arm coerces to the same
/// trait-object type regardless of its concrete strategy.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Weighted union over same-valued strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("pick below total always lands in an arm")
    }
}

/// Pick one of several strategies per case, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($w:literal => $s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($w as u32, $crate::boxed($s))),+])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::boxed($s))),+])
    };
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.below((self.len.end - self.len.start) as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// drawn independently from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Uniformly pick one of the given values.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select requires at least one value");
        Select(values)
    }
}

// ---- config + runner -------------------------------------------------------

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

// ---- macros ----------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __case_desc = {
                        let mut __s = ::std::string::String::new();
                        $(
                            __s.push_str(&::std::format!(
                                "  {} = {:?}\n", stringify!($arg), &$arg
                            ));
                        )+
                        __s
                    };
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let ::std::result::Result::Err(__panic) = __result {
                        ::std::eprintln!(
                            "proptest {}: case {}/{} failed with inputs:\n{}",
                            stringify!($name), __case + 1, __cfg.cases, __case_desc
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

// ---- tests -----------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("same");
        let mut b = crate::TestRng::deterministic("same");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_generates_cases(x in 1usize..5, y in any::<u64>(), pick in prop::sample::select(vec![10u8, 20])) {
            prop_assert!((1..5).contains(&x));
            prop_assert!(pick == 10 || pick == 20);
            let _ = y;
        }

        #[test]
        fn tuples_and_map_work(v in (1usize..4, 1usize..4).prop_map(|(a, b)| a * 10 + b)) {
            prop_assert!((11..=33).contains(&v));
            prop_assert_eq!(v, v);
        }

        #[test]
        fn float_ranges_stay_in_bounds(x in -2.5f32..7.5f32, y in 0.0f64..1.0f64) {
            prop_assert!((-2.5..7.5).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn oneof_picks_only_listed_arms(
            v in prop_oneof![3 => 0usize..10, 1 => crate::Just(99usize)]
        ) {
            prop_assert!(v < 10 || v == 99);
        }

        #[test]
        fn collection_vec_respects_length(
            xs in prop::collection::vec(0u8..4, 2..6)
        ) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&b| b < 4));
        }
    }
}
