//! Offline vendored crossbeam subset.
//!
//! Provides `crossbeam::channel::{unbounded, bounded, Sender, Receiver}` —
//! an MPMC channel built on `Mutex<VecDeque>` + `Condvar` with the same
//! disconnect semantics the real crate has: `send` fails once every
//! receiver is gone, `recv` fails once the queue is empty and every sender
//! is gone. Bounded channels block `send` while full (backpressure) and
//! offer `try_send`. Throughput is far below the real lock-free
//! implementation but the workspace only pushes a few messages per graph
//! edge through it.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Signaled on every pop; bounded senders wait on it while full.
        space: Condvar,
        /// `usize::MAX` means unbounded.
        cap: usize,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    fn with_cap<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(usize::MAX)
    }

    /// Channel holding at most `cap` in-flight messages; `send` blocks while
    /// full (zero-capacity rendezvous channels are not supported).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(
            cap > 0,
            "vendored shim does not support rendezvous channels"
        );
        with_cap(cap)
    }

    // ---- errors ------------------------------------------------------------

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    // ---- sender ------------------------------------------------------------

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            // Bounded backpressure: wait for a pop while the queue is full.
            while q.len() >= self.inner.cap {
                if self.inner.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(msg));
                }
                q = self.inner.space.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            q.push_back(msg);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Non-blocking send: fails with `Full` instead of waiting for space.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.len() >= self.inner.cap {
                return Err(TrySendError::Full(msg));
            }
            q.push_back(msg);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // last sender: wake blocked receivers so they observe the
                // disconnect
                self.inner.ready.notify_all();
            }
        }
    }

    // ---- receiver ----------------------------------------------------------

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    self.inner.space.notify_one();
                    return Ok(msg);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = q.pop_front() {
                self.inner.space.notify_one();
                return Ok(msg);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    self.inner.space.notify_one();
                    return Ok(msg);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // last receiver: wake senders blocked on a full bounded
                // queue so they observe the disconnect
                self.inner.space.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(42u32).unwrap());
            assert_eq!(rx.recv(), Ok(42));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn try_recv_and_timeout() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_fails_when_receiver_gone() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn bounded_try_send_reports_full_then_space() {
            let (tx, rx) = bounded::<u8>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            drop(rx);
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        }

        #[test]
        fn bounded_send_blocks_until_recv_makes_space() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1)); // unblocks the sender
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap().unwrap();
        }

        #[test]
        fn bounded_blocked_send_fails_when_receiver_drops() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(20));
            drop(rx);
            assert_eq!(t.join().unwrap(), Err(SendError(2)));
        }
    }
}
