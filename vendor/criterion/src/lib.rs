//! Offline vendored criterion subset.
//!
//! Mirrors the API the bench targets use (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_with_input`,
//! `bench_function`, `BenchmarkId`, `Bencher::iter`) but replaces the
//! statistical engine with a single timed pass per benchmark: one warm-up
//! call, then a handful of measured iterations whose mean wall-clock time is
//! printed. Good enough to smoke-test the benches and get rough numbers;
//! not a statistics suite.

use std::time::Instant;

/// Measured iterations per benchmark (after one warm-up call).
const MEASURED_ITERS: u32 = 3;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", name, f);
        self
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always runs a fixed small
    /// number of iterations.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into().0, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into().0, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, mut f: F) {
    let mut b = Bencher { total_ns: 0 };
    f(&mut b); // warm-up (also the measurement pass; see Bencher::iter)
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mean_ns = b.total_ns / u128::from(MEASURED_ITERS);
    println!("bench {label}: {:.3} ms/iter", mean_ns as f64 / 1e6);
}

pub struct Bencher {
    total_ns: u128,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..MEASURED_ITERS {
            std::hint::black_box(f());
        }
        self.total_ns = start.elapsed().as_nanos();
    }
}

pub struct BenchmarkId(pub String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Re-exported for benches that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs harness-less bench binaries with `--test`;
            // a full timing pass there would be slow and pointless, so only
            // smoke-run when asked to actually bench.
            let test_mode = std::env::args().any(|a| a == "--test");
            if test_mode {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_with_input(BenchmarkId::new("id", 1), &2u32, |b, &two| {
                b.iter(|| {
                    calls += two;
                    two
                });
            });
            g.finish();
        }
        assert_eq!(calls, 2 * (1 + MEASURED_ITERS));
    }
}
