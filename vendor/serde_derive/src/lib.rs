//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! mini-serde.
//!
//! Implemented directly on `proc_macro::TokenStream` (the offline build has
//! no syn/quote). Supports the shapes this workspace uses: non-generic
//! structs with named fields, unit/tuple structs, and enums with unit,
//! tuple, and struct variants. `#[serde(...)]` attributes are not supported
//! and rejected loudly so silent divergence from real serde cannot happen.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---- item model ------------------------------------------------------------

enum Body {
    /// Named-field struct; the Vec holds field names.
    Struct(Vec<String>),
    /// Tuple struct with N fields.
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with N fields.
    Tuple(usize),
    /// Struct variant; field names.
    Struct(Vec<String>),
}

struct Item {
    name: String,
    body: Body,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().unwrap()
}

// ---- token helpers ---------------------------------------------------------

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Skip `#[...]` attribute groups starting at `i`; error on `#[serde(...)]`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> Result<usize, String> {
    while i + 1 < tokens.len() && is_punct(&tokens[i], '#') {
        if let TokenTree::Group(g) = &tokens[i + 1] {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    return Err(
                        "vendored serde_derive does not support #[serde(...)] attributes".into(),
                    );
                }
            }
            i += 2;
        } else {
            break;
        }
    }
    Ok(i)
}

/// Skip a `pub` / `pub(...)` visibility prefix.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Advance past a type (or any token run) to the next top-level comma,
/// tracking `<`/`>` nesting so generic arguments don't split early.
fn skip_to_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parse the `{ name: Type, ... }` body of a struct or struct variant into
/// field names.
fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i)?;
        if i >= tokens.len() {
            break;
        }
        i = skip_vis(&tokens, i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        if !matches!(tokens.get(i), Some(tt) if is_punct(tt, ':')) {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i = skip_to_comma(&tokens, i + 1);
        i += 1; // past the comma (or end)
        fields.push(name);
    }
    Ok(fields)
}

/// Count the fields of a tuple struct / tuple variant `( Type, Type )`.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_to_comma(&tokens, i);
        count += 1;
        i += 1;
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i)?;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g)?)
            }
            _ => VariantKind::Unit,
        };
        // skip an optional `= discriminant` and advance past the comma
        i = skip_to_comma(&tokens, i);
        i += 1;
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0)?;
    i = skip_vis(&tokens, i);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other:?}`")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found `{other:?}`")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(tt) if is_punct(tt, '<')) {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }
    let body = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g))
            }
            Some(tt) if is_punct(tt, ';') => Body::Unit,
            other => return Err(format!("unsupported struct body: `{other:?}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g)?)
            }
            other => return Err(format!("unsupported enum body: `{other:?}`")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Item { name, body })
}

// ---- code generation -------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Body::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
        }
        Body::Unit => "::serde::Content::Map(::std::vec![])".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Str(::std::string::String::from({vn:?})),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Content::Map(::std::vec![(::std::string::String::from({vn:?}), ::serde::Serialize::to_content(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Content::Map(::std::vec![(::std::string::String::from({vn:?}), ::serde::Content::Seq(::std::vec![{}]))]),",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binders = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("(::std::string::String::from({f:?}), ::serde::Serialize::to_content({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binders} }} => ::serde::Content::Map(::std::vec![(::std::string::String::from({vn:?}), ::serde::Content::Map(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    fn to_content(&self) -> ::serde::Content {{ {body} }}\n}}"
    )
}

/// Expression deserializing named fields from the Content expr `$src` into a
/// `Name { ... }` / `Name::Variant { ... }` literal.
fn named_fields_expr(ctor: &str, type_label: &str, fields: &[String], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_content({src}.get_key({f:?}).unwrap_or(&::serde::Content::Null)).map_err(|e| ::std::format!(\"{type_label}.{f}: {{}}\", e))?"
            )
        })
        .collect();
    format!("{ctor} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let expr = named_fields_expr(name, name, fields, "c");
            format!(
                "if c.as_map().is_none() {{ return ::std::result::Result::Err(::std::format!(\"{name}: expected object, found {{}}\", c.kind())); }}\n::std::result::Result::Ok({expr})"
            )
        }
        Body::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))")
        }
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = c.as_seq().ok_or_else(|| ::std::format!(\"{name}: expected array, found {{}}\", c.kind()))?;\nif __seq.len() != {n} {{ return ::std::result::Result::Err(::std::format!(\"{name}: expected {n} elements, found {{}}\", __seq.len())); }}\n::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::Unit => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok({name}::{}),",
                        v.name, v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_content(__value).map_err(|e| ::std::format!(\"{name}::{vn}: {{}}\", e))?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_content(&__seq[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let __seq = __value.as_seq().ok_or_else(|| ::std::format!(\"{name}::{vn}: expected array, found {{}}\", __value.kind()))?; if __seq.len() != {n} {{ return ::std::result::Result::Err(::std::format!(\"{name}::{vn}: expected {n} elements, found {{}}\", __seq.len())); }} ::std::result::Result::Ok({name}::{vn}({})) }}",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let expr = named_fields_expr(
                                &format!("{name}::{vn}"),
                                &format!("{name}::{vn}"),
                                fields,
                                "__value",
                            );
                            Some(format!(
                                "{vn:?} => {{ if __value.as_map().is_none() {{ return ::std::result::Result::Err(::std::format!(\"{name}::{vn}: expected object, found {{}}\", __value.kind())); }} ::std::result::Result::Ok({expr}) }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n{unit}\n__other => ::std::result::Result::Err(::std::format!(\"{name}: unknown unit variant `{{}}`\", __other)), }},\n\
                 ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                     let (__tag, __value) = &__entries[0];\n\
                     let _ = __value;\n\
                     match __tag.as_str() {{\n{tagged}\n__other => ::std::result::Result::Err(::std::format!(\"{name}: unknown variant `{{}}`\", __other)), }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(::std::format!(\"{name}: expected variant string or single-key object, found {{}}\", __other.kind())),\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n    fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::std::string::String> {{\n{body}\n    }}\n}}"
    )
}

// ---- entry points ----------------------------------------------------------

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive internal error: {e}"))),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive internal error: {e}"))),
        Err(e) => compile_error(&e),
    }
}
