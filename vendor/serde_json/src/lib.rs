//! Offline vendored mini `serde_json`.
//!
//! Prints and parses JSON text over the vendored serde [`Content`] data
//! model. Covers the subset the workspace uses: `to_string`,
//! `to_string_pretty`, `from_str`, a dynamically-typed [`Value`], and the
//! [`json!`] macro (object/array literals with expression values).

use serde::{Content, Deserialize, Serialize};

// ---- error -----------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

// ---- public API ------------------------------------------------------------

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let content = parse(text)?;
    T::from_content(&content).map_err(Error)
}

// ---- Value -----------------------------------------------------------------

/// Dynamically typed JSON value (mirrors [`Content`], which lives in the
/// vendored `serde` crate and therefore cannot carry `Index` impls here).
#[derive(Debug, Clone, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL_VALUE: Value = Value::Null;

impl Value {
    pub fn from_content(c: &Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::Int(v) => Value::Int(*v),
            Content::UInt(v) => Value::UInt(*v),
            Content::Float(v) => Value::Float(*v),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(items.iter().map(Value::from_content).collect()),
            Content::Map(entries) => Value::Object(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from_content(v)))
                    .collect(),
            ),
        }
    }

    pub fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Int(v) => Content::Int(*v),
            Value::UInt(v) => Content::UInt(*v),
            Value::Float(v) => Content::Float(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Value::to_content).collect()),
            Value::Object(entries) => Content::Map(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_content()))
                    .collect(),
            ),
        }
    }

    /// Lower any serializable value into a [`Value`] (used by [`json!`]).
    pub fn from_serialize<T: Serialize + ?Sized>(value: &T) -> Value {
        Value::from_content(&value.to_content())
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            // integers compare by value across signedness (like serde_json's
            // Number); floats only equal other floats
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::UInt(a), Value::UInt(b)) => a == b,
            (Value::Int(a), Value::UInt(b)) | (Value::UInt(b), Value::Int(a)) => {
                *a >= 0 && *a as u64 == *b
            }
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        Value::to_content(self)
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> Result<Self, String> {
        Ok(Value::from_content(c))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array()
            .and_then(|items| items.get(idx))
            .unwrap_or(&NULL_VALUE)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_content(&self.to_content(), &mut out, None, 0);
        f.write_str(&out)
    }
}

// ---- json! macro -----------------------------------------------------------

/// Support fn for [`json!`]: an empty accumulator, behind a call so the
/// expansion does not literally pair `Vec::new()` with `push` (which would
/// trip `clippy::vec_init_then_push` at every use site).
#[doc(hidden)]
pub fn __empty_vec<T>() -> Vec<T> {
    Vec::new()
}

#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ({ $($body:tt)+ }) => {{
        #[allow(unused_mut)]
        let mut __obj: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            $crate::__empty_vec();
        $crate::json_object_entries!(__obj, $($body)+);
        $crate::Value::Object(__obj)
    }};
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($body:tt)+ ]) => {{
        #[allow(unused_mut)]
        let mut __arr: ::std::vec::Vec<$crate::Value> = $crate::__empty_vec();
        $crate::json_array_elems!(__arr, $($body)+);
        $crate::Value::Array(__arr)
    }};
    ($other:expr) => { $crate::Value::from_serialize(&$other) };
}

/// Internal tt-muncher for [`json!`] array bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_elems {
    ($arr:ident, { $($inner:tt)* } , $($rest:tt)*) => {
        $arr.push($crate::json!({ $($inner)* }));
        $crate::json_array_elems!($arr, $($rest)*);
    };
    ($arr:ident, { $($inner:tt)* } $(,)?) => {
        $arr.push($crate::json!({ $($inner)* }));
    };
    ($arr:ident, [ $($inner:tt)* ] , $($rest:tt)*) => {
        $arr.push($crate::json!([ $($inner)* ]));
        $crate::json_array_elems!($arr, $($rest)*);
    };
    ($arr:ident, [ $($inner:tt)* ] $(,)?) => {
        $arr.push($crate::json!([ $($inner)* ]));
    };
    ($arr:ident, null , $($rest:tt)*) => {
        $arr.push($crate::Value::Null);
        $crate::json_array_elems!($arr, $($rest)*);
    };
    ($arr:ident, null $(,)?) => {
        $arr.push($crate::Value::Null);
    };
    ($arr:ident, $elem:expr , $($rest:tt)*) => {
        $arr.push($crate::json!($elem));
        $crate::json_array_elems!($arr, $($rest)*);
    };
    ($arr:ident, $elem:expr) => {
        $arr.push($crate::json!($elem));
    };
    ($arr:ident,) => {};
    ($arr:ident) => {};
}

/// Internal tt-muncher for [`json!`] object bodies; handles nested
/// `{...}`/`[...]` literals (which are not plain Rust expressions) as well as
/// ordinary expression values.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($obj:ident, $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $obj.push((::std::string::String::from($key), $crate::json!({ $($inner)* })));
        $crate::json_object_entries!($obj, $($rest)*);
    };
    ($obj:ident, $key:literal : { $($inner:tt)* } $(,)?) => {
        $obj.push((::std::string::String::from($key), $crate::json!({ $($inner)* })));
    };
    ($obj:ident, $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $obj.push((::std::string::String::from($key), $crate::json!([ $($inner)* ])));
        $crate::json_object_entries!($obj, $($rest)*);
    };
    ($obj:ident, $key:literal : [ $($inner:tt)* ] $(,)?) => {
        $obj.push((::std::string::String::from($key), $crate::json!([ $($inner)* ])));
    };
    ($obj:ident, $key:literal : null , $($rest:tt)*) => {
        $obj.push((::std::string::String::from($key), $crate::Value::Null));
        $crate::json_object_entries!($obj, $($rest)*);
    };
    ($obj:ident, $key:literal : null $(,)?) => {
        $obj.push((::std::string::String::from($key), $crate::Value::Null));
    };
    ($obj:ident, $key:literal : $value:expr , $($rest:tt)*) => {
        $obj.push((::std::string::String::from($key), $crate::json!($value)));
        $crate::json_object_entries!($obj, $($rest)*);
    };
    ($obj:ident, $key:literal : $value:expr) => {
        $obj.push((::std::string::String::from($key), $crate::json!($value)));
    };
    ($obj:ident,) => {};
    ($obj:ident) => {};
}

// ---- writer ----------------------------------------------------------------

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, level: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::Int(v) => out.push_str(&v.to_string()),
        Content::UInt(v) => out.push_str(&v.to_string()),
        Content::Float(v) => {
            if v.is_finite() {
                // {:?} gives the shortest representation that round-trips,
                // and keeps a `.0` on integral floats like real serde_json.
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_content(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected character `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let ch = if (0xd800..0xdc00).contains(&first) {
                                // high surrogate: expect \uXXXX low surrogate
                                if !(self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u'))
                                {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let second = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(ch);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one full UTF-8 scalar
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Content::Int(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Content::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

// ---- tests -----------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let text = r#"{"a": [1, -2, 3.5, true, null], "b": {"c": "hi\n\"there\""}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"].as_array().unwrap().len(), 5);
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_i64(), Some(-2));
        assert_eq!(v["a"][2].as_f64(), Some(3.5));
        assert_eq!(v["b"]["c"], "hi\n\"there\"");
        let text2 = to_string(&v).unwrap();
        let v2: Value = from_str(&text2).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn json_macro_nested() {
        let name = "op0";
        let v = json!({
            "name": name,
            "ts": 1.5,
            "pid": 0,
            "args": {"batch": 3},
            "tags": [1, 2],
        });
        assert_eq!(v["name"], "op0");
        assert_eq!(v["args"]["batch"].as_u64(), Some(3));
        assert_eq!(v["tags"].as_array().unwrap().len(), 2);
        assert_eq!(v["ts"].as_f64(), Some(1.5));
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"k": [1, {"x": null}]});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_a_dot() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""aé😀b""#).unwrap();
        assert_eq!(v, "aé😀b");
    }
}
