//! Offline vendored rayon subset.
//!
//! Implements the pieces the tensor kernels use: `ThreadPoolBuilder` /
//! `ThreadPool::install`, `current_num_threads`, and
//! `slice.par_chunks_mut(n).enumerate().for_each(f)`. Parallelism is real —
//! chunks are distributed over `std::thread::scope` workers — but there is
//! no work stealing: chunks are split eagerly into one contiguous run per
//! worker, which matches the kernels' uniform-cost outer loops well enough.
//!
//! `install` does not move the closure onto pool threads; it runs it on the
//! caller while setting a thread-local thread count that `par_chunks_mut`
//! and `current_num_threads` observe. That preserves rayon's observable
//! semantics for this workspace (pool-scoped parallelism degree) without a
//! persistent worker pool.

use std::cell::Cell;

thread_local! {
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(1) };
}

/// Number of threads in the active pool scope (1 outside any `install`).
pub fn current_num_threads() -> usize {
    CURRENT_THREADS.with(|c| c.get().max(1))
}

// ---- thread pool -----------------------------------------------------------

#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `f` with this pool's thread count active for nested parallel
    /// iterators (restored on exit, panic-safe).
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = CURRENT_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.threads);
            Restore(prev)
        });
        f()
    }
}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    threads: usize,
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder { threads: 0 }
    }

    pub fn num_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Accepted for API compatibility; the shim spawns unnamed scoped
    /// threads per parallel call instead of persistent named workers.
    pub fn thread_name(self, _name: impl FnMut(usize) -> String) -> Self {
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        };
        Ok(ThreadPool { threads })
    }
}

// ---- parallel slice iterators ----------------------------------------------

pub mod prelude {
    pub use crate::IntoParallelIterator;
    pub use crate::ParallelSliceMut;
}

// ---- owned parallel iteration ----------------------------------------------

/// `vec.into_par_iter().for_each(f)` over owned items — the shape the
/// kernels use to scatter pre-split `&mut` tiles across workers.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParVec<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec(self)
    }
}

pub struct ParVec<T: Send>(Vec<T>);

impl<T: Send> ParVec<T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let threads = current_num_threads();
        let mut items = self.0;
        if threads <= 1 || items.len() <= 1 {
            for it in items {
                f(it);
            }
            return;
        }
        // One contiguous run of items per worker, like par_chunks_mut.
        let workers = threads.min(items.len());
        let per_worker = items.len().div_ceil(workers);
        let f = &f;
        std::thread::scope(|scope| {
            while !items.is_empty() {
                let run = items.split_off(items.len().saturating_sub(per_worker));
                scope.spawn(move || {
                    for it in run {
                        f(it);
                    }
                });
            }
        });
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut {
            data: self,
            chunk_size,
        }
    }
}

pub struct ParChunksMut<'a, T: Send> {
    data: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            data: self.data,
            chunk_size: self.chunk_size,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

pub struct ParChunksMutEnumerate<'a, T: Send> {
    data: &'a mut [T],
    chunk_size: usize,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let threads = current_num_threads();
        let num_chunks = self.data.len().div_ceil(self.chunk_size);
        if threads <= 1 || num_chunks <= 1 {
            for pair in self.data.chunks_mut(self.chunk_size).enumerate() {
                f(pair);
            }
            return;
        }
        // Split the chunk index space into one contiguous run per worker.
        let workers = threads.min(num_chunks);
        let per_worker = num_chunks.div_ceil(workers);
        let f = &f;
        std::thread::scope(|scope| {
            let mut rest = self.data;
            let mut next_index = 0usize;
            for _ in 0..workers {
                if rest.is_empty() {
                    break;
                }
                let take = (per_worker * self.chunk_size).min(rest.len());
                let (run, remainder) = rest.split_at_mut(take);
                rest = remainder;
                let base = next_index;
                next_index += per_worker;
                let chunk_size = self.chunk_size;
                scope.spawn(move || {
                    for (i, chunk) in run.chunks_mut(chunk_size).enumerate() {
                        f((base + i, chunk));
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_scopes_thread_count() {
        assert_eq!(current_num_threads(), 1);
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let n = pool.install(current_num_threads);
        assert_eq!(n, 3);
        assert_eq!(current_num_threads(), 1);
    }

    #[test]
    fn par_chunks_mut_covers_all_chunks() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut data = vec![0usize; 103]; // deliberately not a multiple of 10
        pool.install(|| {
            data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
                for v in chunk {
                    *v = i + 1;
                }
            });
        });
        for (j, &v) in data.iter().enumerate() {
            assert_eq!(v, j / 10 + 1, "element {j}");
        }
    }

    #[test]
    fn into_par_iter_visits_every_item_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut data = [0usize; 11];
        let visits = AtomicUsize::new(0);
        pool.install(|| {
            let tiles: Vec<(usize, &mut usize)> = data.iter_mut().enumerate().collect();
            tiles.into_par_iter().for_each(|(i, v)| {
                *v = i * 2;
                visits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(visits.into_inner(), 11);
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i * 2);
        }
    }

    #[test]
    fn sequential_outside_install() {
        let mut data = vec![0u32; 8];
        data.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i as u32;
            }
        });
        assert_eq!(data, [0, 0, 0, 1, 1, 1, 2, 2]);
    }
}
