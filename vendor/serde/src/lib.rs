//! Offline vendored mini-serde.
//!
//! The build environment has no network access and an empty crates.io
//! registry, so the real `serde` cannot be fetched. This crate provides the
//! subset the workspace actually uses: `#[derive(Serialize, Deserialize)]`
//! on concrete (non-generic) structs and enums, routed through a small
//! JSON-shaped data model ([`Content`]). `serde_json` (also vendored) walks
//! the same model to print and parse JSON text.
//!
//! The derive macros generate implementations of the two traits below. The
//! wire format matches real serde's JSON defaults for the shapes used here:
//! structs as objects, unit enum variants as strings, data-carrying variants
//! as externally tagged single-key objects, tuples as arrays.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// The self-describing data model every `Serialize` impl lowers to and every
/// `Deserialize` impl reads from. Mirrors the JSON value space.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    /// All integers are widened to i64/u64; negative values use `Int`.
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Insertion-ordered map (field order is preserved in output).
    Map(Vec<(String, Content)>),
}

impl Content {
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Widening numeric read: any numeric variant as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::Int(v) => Some(v as f64),
            Content::UInt(v) => Some(v as f64),
            Content::Float(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::UInt(v) => Some(v),
            Content::Int(v) if v >= 0 => Some(v as u64),
            Content::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::Int(v) => Some(v),
            Content::UInt(v) if v <= i64::MAX as u64 => Some(v as i64),
            Content::Float(v)
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
            {
                Some(v as i64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Map lookup by key (linear scan; maps here are tiny).
    pub fn get_key(&self, key: &str) -> Option<&Content> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::Int(_) | Content::UInt(_) => "integer",
            Content::Float(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// Serialization: lower a value into the [`Content`] data model.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Deserialization: rebuild a value from the [`Content`] data model.
pub trait Deserialize: Sized {
    fn from_content(c: &Content) -> Result<Self, String>;
}

fn expected<T>(what: &str, got: &Content) -> Result<T, String> {
    Err(format!("expected {what}, found {}", got.kind()))
}

// ---- primitive impls -------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, String> {
                let v = c.as_i64().ok_or_else(|| format!("expected integer, found {}", c.kind()))?;
                <$t>::try_from(v).map_err(|_| format!("integer {v} out of range for {}", stringify!($t)))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, String> {
                let v = c.as_u64().ok_or_else(|| format!("expected unsigned integer, found {}", c.kind()))?;
                <$t>::try_from(v).map_err(|_| format!("integer {v} out of range for {}", stringify!($t)))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, String> {
        // null round-trips non-finite floats (JSON has no NaN/Inf literals)
        if matches!(c, Content::Null) {
            return Ok(f32::NAN);
        }
        c.as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| format!("expected number, found {}", c.kind()))
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, String> {
        if matches!(c, Content::Null) {
            return Ok(f64::NAN);
        }
        c.as_f64()
            .ok_or_else(|| format!("expected number, found {}", c.kind()))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, String> {
        c.as_bool()
            .ok_or_else(|| format!("expected bool, found {}", c.kind()))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => expected("string", other),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => expected("array", other),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

/// Map keys: types that print/parse as JSON object keys.
pub trait MapKey: Ord {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, String>
    where
        Self: Sized;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, String> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(key: &str) -> Result<Self, String> {
                key.parse().map_err(|_| format!("invalid integer key `{key}`"))
            }
        }
    )*};
}
impl_int_key!(usize, u64, u32, isize, i64, i32);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_content()))
                .collect(),
        )
    }
}
impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
                .collect(),
            other => expected("object", other),
        }
    }
}

impl<K: MapKey + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        // sort for deterministic output
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Content::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.to_content()))
                .collect(),
        )
    }
}
impl<K: MapKey + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
                .collect(),
            other => expected("object", other),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, String> {
                let seq = c.as_seq().ok_or_else(|| format!("expected array, found {}", c.kind()))?;
                let expected_len = [$(stringify!($idx)),+].len();
                if seq.len() != expected_len {
                    return Err(format!("expected array of length {expected_len}, found {}", seq.len()));
                }
                Ok(($($name::from_content(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}
impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, String> {
        Ok(c.clone())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}
impl Deserialize for () {
    fn from_content(_: &Content) -> Result<Self, String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(f32::from_content(&1.5f32.to_content()).unwrap(), 1.5);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<bool>::from_content(&vec![true, false].to_content()).unwrap(),
            vec![true, false]
        );
        assert_eq!(
            <(usize, usize)>::from_content(&(3usize, 4usize).to_content()).unwrap(),
            (3, 4)
        );
    }

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_content(&Content::UInt(3)).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn maps_keep_typed_keys() {
        let mut m = BTreeMap::new();
        m.insert(7usize, "x".to_string());
        let c = m.to_content();
        assert_eq!(c.get_key("7").and_then(Content::as_str), Some("x"));
        let back = BTreeMap::<usize, String>::from_content(&c).unwrap();
        assert_eq!(back, m);
    }
}
